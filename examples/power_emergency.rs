//! The power substrate on its own: a demand ramp drives the UPS past its
//! capacity, the breaker's thermal budget starts draining, the emergency
//! controller declares, the reduction holds, and normal operation resumes.
//!
//! ```text
//! cargo run -p mpr-examples --bin power_emergency
//! ```

use mpr_core::Watts;
use mpr_power::{BreakerState, EmergencyAction, EmergencyConfig, EmergencyController, TripCurve};

fn main() {
    let capacity = Watts::new(100_000.0);
    let mut controller = EmergencyController::new(EmergencyConfig {
        min_overload_secs: 120.0, // spike filter: 2 minutes
        ..EmergencyConfig::paper(capacity)
    });
    let mut breaker = BreakerState::new(TripCurve::new(capacity, 600.0));

    // Demand: ramp from 90 kW up over capacity, hold, then fall away.
    let demand = |t: f64| -> f64 {
        match t {
            t if t < 600.0 => 90_000.0 + 25.0 * t, // ramp to 105 kW
            t if t < 2400.0 => 105_000.0,          // hold overloaded
            _ => 105_000.0 - 10.0 * (t - 2400.0),  // decay
        }
    };

    let mut reduction = 0.0f64;
    for step in 0..60 {
        let t = step as f64 * 60.0;
        let power = Watts::new((demand(t) - reduction).max(0.0));
        let tripped = breaker.step(power, 60.0);
        match controller.step(t, power) {
            EmergencyAction::Declare { target } | EmergencyAction::Escalate { target } => {
                reduction += target.get();
                println!(
                    "t={:>4.0}s  {:>9.1} kW  EMERGENCY: shed {:.1} kW (breaker budget {:>4.1}% used)",
                    t,
                    power.get() / 1000.0,
                    target.get() / 1000.0,
                    100.0 * breaker.headroom_used()
                );
            }
            EmergencyAction::Lift => {
                println!(
                    "t={:>4.0}s  {:>9.1} kW  emergency lifted, {:.1} kW restored",
                    t,
                    power.get() / 1000.0,
                    reduction / 1000.0
                );
                reduction = 0.0;
            }
            EmergencyAction::None => {
                if step % 5 == 0 {
                    println!(
                        "t={:>4.0}s  {:>9.1} kW  {}",
                        t,
                        power.get() / 1000.0,
                        if power > capacity { "OVERLOADED" } else { "ok" }
                    );
                }
            }
        }
        assert!(!tripped, "the breaker must never trip under MPR's watch");
    }
    println!("\nrun complete: reactive handling kept the breaker well inside its long-delay zone");
}
