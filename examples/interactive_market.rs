//! MPR-INT walkthrough: watch the iterative price/bid exchange converge to
//! its Nash equilibrium and compare the allocation against OPT.
//!
//! ```text
//! cargo run -p mpr-examples --bin interactive_market
//! ```

use mpr_core::{
    opt, BiddingAgent, CostModel, InteractiveConfig, InteractiveMarket, NetGainAgent,
    QuadraticCost, Watts,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Five users with quadratic costs of increasing steepness: user 0
    // barely minds slowdowns, user 4 hates them.
    let alphas = [0.5, 1.0, 2.0, 4.0, 8.0];
    let costs: Vec<QuadraticCost> = alphas.iter().map(|&a| QuadraticCost::new(a, 4.0)).collect();
    let agents: Vec<Box<dyn BiddingAgent>> = costs
        .iter()
        .enumerate()
        .map(|(i, c)| Box::new(NetGainAgent::new(i as u64, *c, Watts::new(125.0))) as _)
        .collect();

    let target = Watts::new(1200.0); // watts to shed
    let mut market = InteractiveMarket::new(agents, InteractiveConfig::default());
    let outcome = market.clear(target)?;

    println!("price trajectory (manager → users → manager …):");
    for (round, q) in outcome.price_trace.iter().enumerate() {
        println!("  round {round:>2}: q = {q:.4}");
    }
    println!(
        "converged = {}, final price {:.4}, {} iterations\n",
        outcome.converged,
        outcome.clearing.price().get(),
        outcome.clearing.iterations()
    );

    let opt_jobs: Vec<opt::OptJob<'_>> = costs
        .iter()
        .enumerate()
        .map(|(i, c)| opt::OptJob::new(i as u64, c, Watts::new(125.0)))
        .collect();
    let optimal = opt::solve(&opt_jobs, target, opt::OptMethod::Auto)?;

    println!("allocation (cores shed): market equilibrium vs centralized OPT");
    let mut market_cost = 0.0;
    for (alloc, cost) in outcome.clearing.allocations().iter().zip(&costs) {
        let opt_delta = optimal.reductions[alloc.id as usize].1;
        market_cost += cost.cost(alloc.reduction);
        println!(
            "  user {} (α = {:>3.1}): market {:>5.3}, OPT {:>5.3}",
            alloc.id, alphas[alloc.id as usize], alloc.reduction, opt_delta
        );
    }
    println!(
        "\ntotal cost: market {:.4} vs OPT {:.4} — the equilibrium is socially optimal",
        market_cost, optimal.total_cost
    );
    Ok(())
}
