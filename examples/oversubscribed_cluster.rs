//! A full oversubscribed-cluster scenario: the Gaia-like workload at 15 %
//! oversubscription for a week, managed by each algorithm in turn.
//!
//! This is the workload the paper's intro motivates: an underutilized HPC
//! system whose manager reclaims capacity by oversubscribing, then handles
//! the resulting overloads reactively.
//!
//! ```text
//! cargo run --release -p mpr-examples --bin oversubscribed_cluster
//! ```

use mpr_sim::{Algorithm, SimConfig, Simulation};
use mpr_workload::{ClusterSpec, TraceGenerator};

fn main() {
    let trace = TraceGenerator::new(ClusterSpec::gaia().with_span_days(7.0)).generate();
    println!(
        "Gaia-like week: {} jobs on {} cores, {:.0} total core-hours of work\n",
        trace.len(),
        trace.total_cores(),
        trace.total_core_hours()
    );

    println!(
        "{:>9} | {:>9} | {:>11} | {:>10} | {:>10} | {:>8}",
        "algorithm", "overload%", "cost (c-h)", "reward", "stretch %", "affected"
    );
    for alg in Algorithm::all() {
        let report = Simulation::new(&trace, SimConfig::new(alg, 15.0)).run();
        println!(
            "{:>9} | {:>9.2} | {:>11.1} | {:>10.1} | {:>10.2} | {:>7.1}%",
            report.algorithm,
            report.overload_time_pct(),
            report.cost_core_hours,
            report.reward_core_hours,
            report.avg_runtime_increase_pct,
            report.jobs_affected_pct()
        );
    }
    println!(
        "\nEQL (performance-oblivious) pays the highest cost; MPR-INT matches OPT\n\
         while users keep a net profit — the paper's Fig. 9/11 story."
    );
}
