//! Carbon-aware operation: the same MPR market that handles overloads also
//! sheds load when the grid is dirty (the paper's merit ④).
//!
//! ```text
//! cargo run --release -p mpr-examples --bin carbon_aware_cluster
//! ```

use std::sync::Arc;

use mpr_grid::{CarbonAccountant, CarbonCap, CarbonIntensitySignal};
use mpr_sim::{Algorithm, SimConfig, Simulation};
use mpr_workload::{ClusterSpec, TraceGenerator};

fn main() {
    let trace = TraceGenerator::new(ClusterSpec::gaia().with_span_days(7.0)).generate();
    let signal = CarbonIntensitySignal::typical();
    println!(
        "grid: {:.0} gCO2/kWh daily mean, dirty above {:.0} (evening ramp)",
        signal.daily_mean(),
        signal.dirty_threshold()
    );

    let probe = Simulation::new(&trace, SimConfig::new(Algorithm::MprStat, 10.0));
    let base_capacity = probe.reference_peak_watts() * (100.0 / 110.0);

    let mut last: Option<(f64, f64)> = None;
    for derate in [0.0, 0.15] {
        let mut cfg = SimConfig::new(Algorithm::MprStat, 10.0).with_timeline();
        if derate > 0.0 {
            cfg = cfg.with_capacity_policy(Arc::new(CarbonCap::new(
                base_capacity,
                signal,
                signal.dirty_threshold(),
                derate,
            )));
        }
        let report = Simulation::new(&trace, cfg).run();
        let tl = report.timeline.as_ref().expect("timeline enabled");
        let accountant = CarbonAccountant::new(signal);
        let emitted = accountant.emissions_kg(0.0, tl.slot_secs, &tl.power_w);
        let avoided = accountant.avoided_kg(0.0, tl.slot_secs, &tl.reduction_w);
        println!(
            "\nderate {:>3.0}%: emitted {:.2} tCO2, avoided {:.3} tCO2, \
             {} emergencies, rewards {:.0} core-hours",
            derate * 100.0,
            emitted / 1000.0,
            avoided / 1000.0,
            report.overload_events,
            report.reward_core_hours
        );
        if let Some((e0, a0)) = last {
            println!(
                "  → derating dirty hours avoided {:.3} tCO2 more than baseline \
                 (and {:.2} tCO2 less emitted)",
                (avoided - a0) / 1000.0,
                (e0 - emitted) / 1000.0
            );
        }
        last = Some((emitted, avoided));
    }
    println!("\nusers are compensated for the dirty-hour slowdowns through the market.");
}
