//! Quickstart: clear one MPR-STAT market by hand.
//!
//! Three users run jobs with different application profiles. Each derives
//! a cooperative bid from its (private) cost model; the HPC manager clears
//! the market for a 1 kW power-reduction target and pays rewards.
//!
//! ```text
//! cargo run -p mpr-examples --bin quickstart
//! ```

use mpr_core::bidding::{net_gain, StaticStrategy};
use mpr_core::{CostModel, Participant, ScaledCost, StaticMarket, Watts};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Three jobs: an insensitive RSBench (16 cores), a mid-range XSBench
    // (16 cores) and a very sensitive SimpleMOC (8 cores).
    let apps = ["RSBench", "XSBench", "SimpleMOC"];
    let cores = [16.0, 16.0, 8.0];
    let mut costs = Vec::new();
    let mut participants = Vec::new();
    for (i, (name, c)) in apps.iter().zip(cores).enumerate() {
        let profile = mpr_apps::profile_by_name(name).expect("catalog app");
        // The user's perceived cost: extra execution, α = 1 (Eqn. 6).
        let cost = ScaledCost::new(profile.cost_model(1.0), c);
        // Cooperative bid: largest supply that never loses money (Fig. 4a).
        let supply = StaticStrategy::Cooperative.supply_for(&cost)?;
        println!(
            "{name:>10}: {c:>2.0} cores, Δ = {:>5.2} cores, cooperative bid b = {:.3}",
            cost.delta_max(),
            supply.bid()
        );
        participants.push(Participant::new(
            i as u64,
            supply,
            Watts::new(profile.unit_dynamic_power_w()),
        ));
        costs.push(cost);
    }

    // A power overload: the manager must shed 1 kW.
    let market = StaticMarket::new(participants);
    let clearing = market.clear(Watts::new(1000.0))?;
    println!(
        "\nmarket cleared at price q' = {:.3}, total reduction {:.2} cores ({:.0} W)",
        clearing.price().get(),
        clearing.total_reduction(),
        clearing.total_power_reduction().get()
    );
    for (alloc, cost) in clearing.allocations().iter().zip(&costs) {
        let gain = net_gain(
            cost,
            &market.participants()[alloc.id as usize].supply,
            clearing.price(),
        );
        println!(
            "  {:>10}: sheds {:>5.2} cores, reward {:>6.3}/h, cost {:>6.3}/h, net gain {:>6.3}/h",
            apps[alloc.id as usize],
            alloc.reduction,
            alloc.reward_rate(),
            cost.cost(alloc.reduction),
            gain
        );
    }
    println!("\nthe insensitive app sheds the most; every user gains (cooperative bidding).");
    Ok(())
}
