//! Offline stand-in for the subset of `criterion` the MPR benches use.
//!
//! Provides `Criterion`, benchmark groups, `BenchmarkId`, `black_box` and the
//! `criterion_group!` / `criterion_main!` macros. Measurements are a simple
//! warmup + timed-batch loop printing mean wall-time per iteration — enough
//! for relative comparisons in this container, with the exact same bench
//! source compiling against real criterion elsewhere.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from eliding a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(name);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_owned(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named benchmark group.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` with an input value under a parameterized id.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            ..Bencher::default()
        };
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.0));
        self
    }

    /// Benchmarks `f` under a parameterized id without an input payload.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: BenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            ..Bencher::default()
        };
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.0));
        self
    }

    /// Finishes the group (report-flush no-op here).
    pub fn finish(self) {}
}

/// Identifier for one parameterized benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter` id.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self(format!("{}/{}", name.into(), parameter))
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self(parameter.to_string())
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    mean: Option<Duration>,
}

impl Default for Bencher {
    fn default() -> Self {
        Self {
            samples: 10,
            mean: None,
        }
    }
}

impl Bencher {
    /// Times `f`, recording the mean wall-clock duration per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.mean = Some(start.elapsed() / self.samples as u32);
    }

    fn report(&self, name: &str) {
        match self.mean {
            Some(mean) => println!("bench {name:<48} {mean:>12.2?}/iter"),
            None => println!("bench {name:<48} (no measurement)"),
        }
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_bench(c: &mut Criterion) {
        c.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
    }

    #[test]
    fn group_and_function_paths_run() {
        let mut c = Criterion::default();
        sum_bench(&mut c);
        let mut g = c.benchmark_group("g");
        g.sample_size(3)
            .bench_with_input(BenchmarkId::new("case", 4), &4u64, |b, &n| {
                b.iter(|| n * 2);
            });
        g.finish();
    }
}
