//! Offline stand-in for `rand_chacha`: a genuine ChaCha8 keystream generator
//! with the stream/word-position API the simulator's checkpoint code uses.
//!
//! The generator is fully deterministic and randomly seekable: `get_seed`,
//! `get_stream` and `get_word_pos` capture the exact keystream position, and
//! `from_seed` + `set_stream` + `set_word_pos` restore it bit-identically —
//! the property `mpr-sim`'s crash-safe checkpoint/resume tests depend on.
//! Output is not bit-compatible with upstream `rand_chacha` (the workspace
//! only requires self-consistency; see `vendor/rand`).

use rand::{RngCore, SeedableRng};

/// Number of ChaCha rounds (ChaCha8 = 8 rounds = 4 double rounds).
const ROUNDS: usize = 8;

/// A ChaCha8 random number generator with 64-bit stream selection and a
/// seekable 128-bit word position.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    seed: [u8; 32],
    stream: u64,
    /// Absolute position in 32-bit words from the start of the keystream.
    word_pos: u128,
    /// Cached output block and the block index it corresponds to.
    buf: [u32; 16],
    buf_block: u128,
}

/// Block index that can never be produced (`u64` counter → < 2^64 blocks),
/// used to mark the cache as empty.
const NO_BLOCK: u128 = u128::MAX;

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

fn chacha_block(seed: &[u8; 32], stream: u64, block: u64) -> [u32; 16] {
    let mut state = [0u32; 16];
    // "expand 32-byte k"
    state[0] = 0x6170_7865;
    state[1] = 0x3320_646e;
    state[2] = 0x7962_2d32;
    state[3] = 0x6b20_6574;
    for (i, chunk) in seed.chunks_exact(4).enumerate() {
        state[4 + i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    // 64-bit block counter, then the 64-bit stream id as the nonce.
    state[12] = block as u32;
    state[13] = (block >> 32) as u32;
    state[14] = stream as u32;
    state[15] = (stream >> 32) as u32;

    let input = state;
    for _ in 0..ROUNDS / 2 {
        // Column round.
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }
    for (word, orig) in state.iter_mut().zip(input.iter()) {
        *word = word.wrapping_add(*orig);
    }
    state
}

impl ChaCha8Rng {
    /// Returns the seed this generator was created from.
    #[must_use]
    pub fn get_seed(&self) -> [u8; 32] {
        self.seed
    }

    /// Returns the current stream id.
    #[must_use]
    pub fn get_stream(&self) -> u64 {
        self.stream
    }

    /// Selects the keystream (resets nothing else; position is preserved).
    pub fn set_stream(&mut self, stream: u64) {
        if self.stream != stream {
            self.stream = stream;
            self.buf_block = NO_BLOCK;
        }
    }

    /// Returns the absolute keystream position in 32-bit words.
    #[must_use]
    pub fn get_word_pos(&self) -> u128 {
        self.word_pos
    }

    /// Seeks to an absolute keystream position in 32-bit words.
    pub fn set_word_pos(&mut self, word_pos: u128) {
        self.word_pos = word_pos;
    }

    fn next_word(&mut self) -> u32 {
        let block = self.word_pos / 16;
        if block != self.buf_block {
            self.buf = chacha_block(&self.seed, self.stream, block as u64);
            self.buf_block = block;
        }
        let word = self.buf[(self.word_pos % 16) as usize];
        self.word_pos += 1;
        word
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        Self {
            seed,
            stream: 0,
            word_pos: 0,
            buf: [0; 16],
            buf_block: NO_BLOCK,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_word());
        let hi = u64::from(self.next_word());
        (hi << 32) | lo
    }
}

/// Alias so code written against the 20-round variant still compiles; the
/// workspace only uses the generator for simulation-grade randomness.
pub type ChaCha20Rng = ChaCha8Rng;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn streams_are_independent() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        b.set_stream(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn word_pos_roundtrip_resumes_exactly() {
        let mut reference = ChaCha8Rng::seed_from_u64(7);
        reference.set_stream(3);
        for _ in 0..37 {
            reference.next_u32();
        }
        let (seed, stream, pos) = (
            reference.get_seed(),
            reference.get_stream(),
            reference.get_word_pos(),
        );
        let mut resumed = ChaCha8Rng::from_seed(seed);
        resumed.set_stream(stream);
        resumed.set_word_pos(pos);
        for _ in 0..64 {
            assert_eq!(reference.next_u64(), resumed.next_u64());
        }
    }

    #[test]
    fn word_pos_advances_by_two_per_u64() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(rng.get_word_pos(), 0);
        rng.next_u64();
        assert_eq!(rng.get_word_pos(), 2);
    }

    #[test]
    fn known_chacha_structure() {
        // The first block must differ from the raw input state (rounds ran)
        // and changing one seed byte must change the output.
        let mut a = ChaCha8Rng::from_seed([0; 32]);
        let mut seed = [0u8; 32];
        seed[0] = 1;
        let mut b = ChaCha8Rng::from_seed(seed);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn works_through_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let f: f64 = rng.gen();
        assert!((0.0..1.0).contains(&f));
        let n = rng.gen_range(0..10);
        assert!((0..10).contains(&n));
    }
}
