//! Offline stand-in for the subset of `rayon` the MPR workspace uses.
//!
//! The build container has no network access to crates.io, so the chaos
//! campaign harness fans out over a small `std::thread::scope`-based shim
//! instead of the real work-stealing pool. The API mirrors rayon's
//! idiom — `use rayon::prelude::*; (0..n).into_par_iter().map(f).collect()`
//! — for the operations the workspace actually performs.
//!
//! Guarantees the harness depends on:
//!
//! * **Deterministic ordering** — `collect` returns results in the input's
//!   index order, regardless of which worker finished first.
//! * **`RAYON_NUM_THREADS`** — honored exactly like upstream rayon: a
//!   positive integer pins the worker count; unset or invalid values fall
//!   back to the machine's available parallelism.
//! * **Panic propagation** — a panic inside a worker resurfaces on the
//!   caller's thread (via `std::thread::scope`), matching rayon.

use std::num::NonZeroUsize;

/// The number of worker threads parallel operations will use: the
/// `RAYON_NUM_THREADS` environment variable when set to a positive
/// integer, otherwise the machine's available parallelism.
#[must_use]
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Commonly imported names, mirroring `rayon::prelude`.
pub mod prelude {
    pub use super::iter::{IntoParallelIterator, ParallelIterator};
}

/// Parallel-iterator types and conversion traits.
pub mod iter {
    use super::current_num_threads;

    /// Types convertible into a [`ParallelIterator`].
    pub trait IntoParallelIterator {
        /// The element type produced.
        type Item: Send;
        /// Converts `self` into a parallel iterator over its elements.
        fn into_par_iter(self) -> ParIter<Self::Item>;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        fn into_par_iter(self) -> ParIter<T> {
            ParIter { items: self }
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Item = usize;
        fn into_par_iter(self) -> ParIter<usize> {
            ParIter {
                items: self.collect(),
            }
        }
    }

    impl IntoParallelIterator for std::ops::Range<u64> {
        type Item = u64;
        fn into_par_iter(self) -> ParIter<u64> {
            ParIter {
                items: self.collect(),
            }
        }
    }

    /// The shim's one concrete parallel iterator: a materialized item list.
    pub struct ParIter<T> {
        items: Vec<T>,
    }

    /// Operations on parallel iterators (a subset of rayon's trait of the
    /// same name, implemented only for the shapes the workspace uses).
    pub trait ParallelIterator: Sized {
        /// The element type produced.
        type Item: Send;

        /// Maps each element through `f`, to be evaluated in parallel at
        /// [`collect`](ParMap::collect) time.
        fn map<R, F>(self, f: F) -> ParMap<Self::Item, F>
        where
            R: Send,
            F: Fn(Self::Item) -> R + Sync;
    }

    impl<T: Send> ParallelIterator for ParIter<T> {
        type Item = T;

        fn map<R, F>(self, f: F) -> ParMap<T, F>
        where
            R: Send,
            F: Fn(T) -> R + Sync,
        {
            ParMap {
                items: self.items,
                f,
            }
        }
    }

    /// A mapped parallel iterator, ready to collect.
    pub struct ParMap<T, F> {
        items: Vec<T>,
        f: F,
    }

    impl<T, F> ParMap<T, F> {
        /// Runs the map across worker threads and collects the results in
        /// input order. Results are deterministic for a pure `f` no matter
        /// how many workers run (including one).
        pub fn collect<R, C>(self) -> C
        where
            T: Send,
            R: Send,
            F: Fn(T) -> R + Sync,
            C: FromIterator<R>,
        {
            let f = &self.f;
            let len = self.items.len();
            let workers = current_num_threads().min(len.max(1));
            if workers <= 1 || len <= 1 {
                return self.items.into_iter().map(f).collect();
            }
            // Contiguous chunks, one worker each; chunk results are
            // re-concatenated in chunk order so collection order equals
            // input order.
            let chunk_len = len.div_ceil(workers);
            let mut chunks: Vec<Vec<T>> = Vec::new();
            let mut items = self.items.into_iter();
            loop {
                let chunk: Vec<T> = items.by_ref().take(chunk_len).collect();
                if chunk.is_empty() {
                    break;
                }
                chunks.push(chunk);
            }
            let mut results: Vec<Vec<R>> = Vec::new();
            std::thread::scope(|s| {
                let handles: Vec<_> = chunks
                    .into_iter()
                    .map(|chunk| s.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
                    .collect();
                for h in handles {
                    match h.join() {
                        Ok(r) => results.push(r),
                        Err(p) => std::panic::resume_unwind(p),
                    }
                }
            });
            results.into_iter().flatten().collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_input_order() {
        let out: Vec<usize> = (0..100usize).into_par_iter().map(|i| i * 2).collect();
        let expect: Vec<usize> = (0..100).map(|i| i * 2).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn vec_source_and_empty_input() {
        let out: Vec<String> = vec!["a", "b", "c"]
            .into_par_iter()
            .map(str::to_owned)
            .collect();
        assert_eq!(out, ["a", "b", "c"]);
        let empty: Vec<u64> = (0..0u64).into_par_iter().map(|i| i).collect();
        assert!(empty.is_empty());
    }

    #[test]
    fn thread_count_env_is_honored() {
        // The env var is process-global; this test only checks the parse
        // fallback logic, not concurrent mutation.
        let n = super::current_num_threads();
        assert!(n >= 1);
    }

    #[test]
    #[should_panic(expected = "worker boom")]
    fn worker_panics_propagate() {
        std::env::set_var("RAYON_NUM_THREADS", "2");
        let _: Vec<usize> = (0..8usize)
            .into_par_iter()
            .map(|i| {
                assert!(i != 5, "worker boom");
                i
            })
            .collect();
    }
}
