//! Offline placeholder for `serde`.
//!
//! `mpr-core` exposes an optional `serde` cargo feature whose derives are
//! only expanded when that feature is enabled. No crate in this workspace
//! enables it, so this stub only needs to exist for dependency resolution in
//! the network-less build container. Enabling the feature without the real
//! `serde` crate is a compile error by design.

/// Marker trait standing in for `serde::Serialize`. The real derive macro is
/// unavailable offline; see the crate docs.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
