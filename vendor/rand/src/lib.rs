//! Offline stand-in for the parts of the `rand` crate API that the MPR
//! workspace uses.
//!
//! The build container has no network access to crates.io, so the workspace
//! vendors a minimal, self-contained implementation of the `rand` traits it
//! depends on: [`RngCore`], [`SeedableRng`] and the ergonomic [`Rng`]
//! extension trait (`gen`, `gen_range`, `gen_bool`).
//!
//! The implementation is intentionally small but *correct and deterministic*:
//! given the same seed, every generator produces the same sequence on every
//! platform, which the simulator's checkpoint/resume bit-identity tests rely
//! on. It makes no attempt to be bit-compatible with upstream `rand`; the
//! workspace only requires self-consistency.

use core::ops::{Range, RangeInclusive};

/// Core trait for random number generators: raw 32/64-bit output.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed type, e.g. `[u8; 32]`.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64 the
    /// same way on every call so seeds remain portable across runs.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64::new(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: used for seed expansion and as a cheap standalone generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a SplitMix64 generator from a raw state word.
    #[must_use]
    pub fn new(state: u64) -> Self {
        Self { state }
    }
}

impl RngCore for SplitMix64 {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution in
/// upstream `rand`).
pub trait StandardSample: Sized {
    /// Draws one value from the "standard" distribution for the type:
    /// uniform `[0, 1)` for floats, uniform over all values for integers,
    /// fair coin for `bool`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            #[allow(clippy::cast_lossless)]
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

/// Element types [`Rng::gen_range`] can sample uniformly.
pub trait SampleUniform: Sized + Copy {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                if inclusive {
                    assert!(lo <= hi, "gen_range: empty float range");
                } else {
                    assert!(lo < hi, "gen_range: empty float range");
                }
                let unit = <$t as StandardSample>::standard_sample(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}
sample_uniform_float!(f64, f32);

macro_rules! sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[allow(clippy::cast_lossless, clippy::cast_possible_truncation)]
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = if inclusive {
                    assert!(lo <= hi, "gen_range: empty integer range");
                    (hi as i128 - lo as i128 + 1) as u128
                } else {
                    assert!(lo < hi, "gen_range: empty integer range");
                    (hi as i128 - lo as i128) as u128
                };
                let draw = (u128::from(rng.next_u64()) * span) >> 64;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}
sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws a single uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_uniform(rng, lo, hi, true)
    }
}

/// Ergonomic extension methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution for `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Commonly imported names, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SplitMix64::new(42);
        for _ in 0..1000 {
            let f = rng.gen_range(2.0f64..3.0);
            assert!((2.0..3.0).contains(&f));
            let i = rng.gen_range(1..=32);
            assert!((1..=32).contains(&i));
            let u = rng.gen_range(0usize..6);
            assert!(u < 6);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SplitMix64::new(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = SplitMix64::new(9);
        let mut buf = [0u8; 7];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
