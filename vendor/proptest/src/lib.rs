//! Offline stand-in for the subset of `proptest` the MPR workspace uses.
//!
//! The build container cannot reach crates.io, so this crate reimplements the
//! pieces the test-suite depends on: the [`Strategy`] trait with range /
//! tuple / `Just` / `prop_map` / union strategies, `collection::vec`,
//! `bool::ANY`, the [`proptest!`] test macro with `#![proptest_config(..)]`
//! support, and `prop_assert!` / `prop_assert_eq!` / `prop_oneof!`.
//!
//! Differences from real proptest, deliberately accepted:
//! - no shrinking: a failing case reports its case number and message only;
//! - deterministic cases: the RNG is seeded from the test's module path, so
//!   runs are reproducible across machines (good for CI bit-stability).

use rand::{RngCore, SplitMix64};

pub mod test_runner {
    //! Test-runner configuration and failure plumbing.

    /// Subset of proptest's runner configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each `#[test]` inside `proptest!` runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Configuration running `cases` random cases per test.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// A failed property case, produced by `prop_assert!`.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Creates a failure with the given message.
        #[must_use]
        pub fn fail(msg: String) -> Self {
            Self(msg)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }
}

/// Deterministic RNG handed to strategies by the `proptest!` macro.
#[derive(Debug, Clone)]
pub struct TestRng(SplitMix64);

impl TestRng {
    /// Seeds the RNG from a test-identifying string (stable across runs).
    #[must_use]
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the test path: stable, dependency-free.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self(SplitMix64::new(h))
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// Generates random values of an associated type.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Erases the strategy type (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            let s = self;
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| s.sample(rng)))
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    /// Type-erased strategy.
    pub struct BoxedStrategy<V>(pub(crate) Rc<dyn Fn(&mut TestRng) -> V>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            Self(Rc::clone(&self.0))
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            (self.0)(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` combinator.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice between several strategies of the same value type
    /// (backs `prop_oneof!`).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Builds a union over the given options (must be non-empty).
        #[must_use]
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Self { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].sample(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    range_strategy!(f64, f32, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+)),+ $(,)?) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )+};
    }
    tuple_strategy!(
        (A),
        (A, B),
        (A, B, C),
        (A, B, C, D),
        (A, B, C, D, E),
        (A, B, C, D, E, F)
    );
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            Self {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a random length in `len`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.gen_range(self.len.lo..=self.len.hi_inclusive);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;

    /// Strategy producing `true` or `false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical boolean strategy, mirroring `proptest::bool::ANY`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.gen_bool(0.5)
        }
    }
}

pub mod prelude {
    //! The names tests import with `use proptest::prelude::*`.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Mirror of `proptest::prelude::prop` module shorthand.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Defines deterministic property tests. See crate docs for the supported
/// subset (optional `#![proptest_config(..)]`, then `#[test]` functions whose
/// arguments are `pattern in strategy` pairs).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg); $($rest)*);
    };
    (@run ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..cfg.cases {
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = result {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        cfg.cases,
                        e
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Skips the current case when its inputs don't satisfy a precondition.
/// (Real proptest rejects and redraws; here the case simply passes, which
/// keeps the runner deterministic.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Asserts a condition inside a `proptest!` body, failing the current case
/// with a formatted message instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {} ({:?} vs {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {} != {} (both {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Uniform choice among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn boxed_and_union_work() {
        let s = prop_oneof![Just(1u32), Just(2u32), Just(3u32)];
        let mut rng = crate::TestRng::deterministic("union");
        for _ in 0..32 {
            let v = s.sample(&mut rng);
            assert!((1..=3).contains(&v));
        }
    }

    #[test]
    fn vec_strategy_lengths() {
        let s = crate::collection::vec(0.0f64..1.0, 2..5);
        let mut rng = crate::TestRng::deterministic("vec");
        for _ in 0..64 {
            let v = s.sample(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: patterns, tuples, maps and assertions.
        #[test]
        fn macro_end_to_end(
            (a, b) in (0.0f64..1.0, 1u32..10),
            flip in crate::bool::ANY,
            label in Just("ok").prop_map(str::to_owned),
        ) {
            prop_assert!((0.0..1.0).contains(&a));
            prop_assert!((1..10).contains(&b));
            prop_assert!(u8::from(flip) <= 1);
            prop_assert_eq!(label.as_str(), "ok");
        }
    }
}
