//! # mpr-experiments — the table/figure regeneration harness
//!
//! One binary per table and figure of the paper's evaluation (see
//! `DESIGN.md` for the full index):
//!
//! ```text
//! cargo run --release -p mpr-experiments --bin table1
//! cargo run --release -p mpr-experiments --bin fig8 -- --days 90
//! ...
//! ```
//!
//! Most binaries accept `--days N` to shorten the simulated span (the
//! defaults reproduce the paper's spans where practical) and print
//! aligned-text tables with one row/series per paper data point.
//!
//! This library hosts the shared plumbing: trace construction, simulation
//! dispatch and table formatting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mpr_sim::{Algorithm, SimConfig, SimReport, Simulation};
use mpr_workload::{ClusterSpec, Trace, TraceGenerator};

/// Parses a `--days N` argument from the process args, with a default.
#[must_use]
pub fn arg_days(default: f64) -> f64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--days")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The Gaia trace at the given span, with the canonical seed.
#[must_use]
pub fn gaia_trace(days: f64) -> Trace {
    TraceGenerator::new(ClusterSpec::gaia().with_span_days(days)).generate()
}

/// Runs one simulation of `trace` under `algorithm` at an oversubscription
/// level, with the paper-default configuration.
#[must_use]
pub fn run(trace: &Trace, algorithm: Algorithm, oversub_pct: f64) -> SimReport {
    Simulation::new(trace, SimConfig::new(algorithm, oversub_pct)).run()
}

/// Runs one simulation with a custom configuration.
#[must_use]
pub fn run_with(trace: &Trace, config: SimConfig) -> SimReport {
    Simulation::new(trace, config).run()
}

/// Prints an aligned text table with a title.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line: Vec<String> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{h:>w$}", w = widths[i]))
        .collect();
    println!("{}", line.join("  "));
    println!("{}", "-".repeat(line.join("  ").len()));
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>w$}", w = widths.get(i).copied().unwrap_or(0)))
            .collect();
        println!("{}", line.join("  "));
    }
}

/// Formats a float with the given number of decimals.
#[must_use]
pub fn fmt(x: f64, decimals: usize) -> String {
    format!("{x:.decimals$}")
}

/// Formats a large count with thousands separators (e.g. `144,288`).
#[must_use]
pub fn fmt_thousands(x: f64) -> String {
    let v = x.round() as i64;
    let s = v.abs().to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    if v < 0 {
        format!("-{out}")
    } else {
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thousands_formatting() {
        assert_eq!(fmt_thousands(144_288.4), "144,288");
        assert_eq!(fmt_thousands(1_000_000.0), "1,000,000");
        assert_eq!(fmt_thousands(999.0), "999");
        assert_eq!(fmt_thousands(-1234.0), "-1,234");
        assert_eq!(fmt_thousands(0.0), "0");
    }

    #[test]
    fn fmt_decimals() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(fmt(2.0, 0), "2");
    }

    #[test]
    fn gaia_trace_short_span_is_fast_and_nonempty() {
        let t = gaia_trace(1.0);
        assert!(!t.is_empty());
        assert_eq!(t.name(), "Gaia");
    }

    #[test]
    fn run_helper_produces_report() {
        let t = gaia_trace(1.0);
        let r = run(&t, Algorithm::Opt, 10.0);
        assert_eq!(r.algorithm, "OPT");
        assert_eq!(r.oversubscription_pct, 10.0);
    }

    #[test]
    fn print_table_does_not_panic() {
        print_table(
            "demo",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }
}
