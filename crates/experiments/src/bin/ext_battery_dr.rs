//! Extension: battery-assisted demand response.
//!
//! A facility answering a DR call can either slow jobs through the market
//! (paying rewards, costing performance) or discharge its UPS batteries
//! (free at dispatch time, but bounded by stored energy and wearing the
//! cells). This study serves each weekday-evening DR event battery-first
//! with market fallback, and compares against market-only dispatch —
//! quantifying how much performance cost a 3-minute-bridge battery bank
//! actually absorbs.

use std::sync::Arc;

use mpr_core::bidding::StaticStrategy;
use mpr_core::{
    CostModel, MarketInstance, MclrMechanism, Mechanism, ParticipantSpec, ScaledCost, Watts,
};
use mpr_experiments::{fmt, print_table};
use mpr_power::UpsBattery;

/// One DR event: 2 hours at the given obligation.
const EVENT_SECS: f64 = 2.0 * 3600.0;
const OBLIGATION_W: f64 = 25_000.0;

struct Dispatch {
    market_core_hours: f64,
    reward_core_hours: f64,
    battery_wh: f64,
    battery_depleted_at_secs: Option<f64>,
}

fn serve_event(mut battery: Option<UpsBattery>) -> Dispatch {
    // A fixed fleet of jobs available to the market during the event.
    let profiles = mpr_apps::cpu_profiles();
    let costs: Vec<ScaledCost<_>> = (0..64)
        .map(|i| ScaledCost::new(profiles[i % profiles.len()].cost_model(1.0), 16.0))
        .collect();
    let instance: MarketInstance = costs
        .iter()
        .enumerate()
        .map(|(i, c)| {
            ParticipantSpec::new(i as u64, c.delta_max(), Watts::new(125.0))
                .with_bid(
                    StaticStrategy::Cooperative
                        .supply_for(c)
                        .expect("valid cooperative bid")
                        .bid(),
                )
                .with_cost(Arc::new(c.clone()))
        })
        .collect();
    let mut market = MclrMechanism::best_effort();

    let mut out = Dispatch {
        market_core_hours: 0.0,
        reward_core_hours: 0.0,
        battery_wh: 0.0,
        battery_depleted_at_secs: None,
    };
    let dt = 60.0;
    let mut t = 0.0;
    while t < EVENT_SECS {
        // Battery-first dispatch.
        let mut remaining = OBLIGATION_W;
        if let Some(b) = battery.as_mut() {
            if b.state_of_charge() > 0.0 {
                let from_battery = remaining.min(b.rated().get());
                if b.discharge(Watts::new(from_battery), dt) {
                    out.battery_wh += from_battery * dt / 3600.0;
                    remaining -= from_battery;
                } else if out.battery_depleted_at_secs.is_none() {
                    out.battery_depleted_at_secs = Some(t);
                }
            } else if out.battery_depleted_at_secs.is_none() {
                out.battery_depleted_at_secs = Some(t);
            }
        }
        // Market covers the rest.
        if remaining > 0.0 {
            let clearing = market
                .clear(&instance, Watts::new(remaining))
                .expect("best-effort always clears");
            out.market_core_hours += clearing.total_reduction() * dt / 3600.0;
            out.reward_core_hours += clearing.total_payment_rate().get() * dt / 3600.0;
        }
        t += dt;
    }
    out
}

fn main() {
    println!(
        "One 2-hour DR event, {:.0} kW obligation, 64 jobs available to the market",
        OBLIGATION_W / 1000.0
    );
    let mut rows = Vec::new();
    for (label, battery) in [
        ("market only", None),
        (
            "3-min bridge bank",
            Some(UpsBattery::sized_for_bridge(
                Watts::new(OBLIGATION_W),
                180.0,
            )),
        ),
        (
            "30-min storage bank",
            Some(UpsBattery::sized_for_bridge(
                Watts::new(OBLIGATION_W),
                1800.0,
            )),
        ),
    ] {
        let d = serve_event(battery);
        rows.push(vec![
            label.to_owned(),
            fmt(d.battery_wh / 1000.0, 1),
            d.battery_depleted_at_secs
                .map_or_else(|| "-".into(), |t| fmt(t / 60.0, 0)),
            fmt(d.market_core_hours, 1),
            fmt(d.reward_core_hours, 1),
        ]);
    }
    // Sanity: bigger banks shift more of the obligation off the market.
    let market_col: Vec<f64> = rows
        .iter()
        .map(|r| r[3].parse::<f64>().expect("numeric column"))
        .collect();
    assert!(market_col[0] >= market_col[1] && market_col[1] >= market_col[2]);
    print_table(
        "Battery-assisted demand response (battery-first, market fallback)",
        &[
            "dispatch",
            "battery (kWh)",
            "depleted (min)",
            "market reduction (c-h)",
            "rewards (c-h)",
        ],
        &rows,
    );
    println!(
        "\nBridge-sized UPS banks absorb only minutes of a DR event; meaningful\n\
         battery dispatch needs storage-class sizing — otherwise the market\n\
         (i.e. the users) carries the obligation, and gets paid for it."
    );
}
