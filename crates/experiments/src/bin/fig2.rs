//! Fig. 2: MPR's supply function `δ(q) = [Δ − b/q]⁺` for different bids.

use mpr_core::{Price, SupplyFunction};
use mpr_experiments::{fmt, print_table};

fn main() {
    let delta_max = 0.7;
    let bids = [0.05, 0.1, 0.2, 0.4];
    let supplies: Vec<SupplyFunction> = bids
        .iter()
        .map(|&b| SupplyFunction::new(delta_max, b).expect("valid supply"))
        .collect();

    let rows: Vec<Vec<String>> = (1..=20)
        .map(|i| {
            let q = 0.1 * f64::from(i);
            let mut row = vec![fmt(q, 1)];
            for s in &supplies {
                row.push(fmt(s.supply(Price::new(q)), 3));
            }
            row
        })
        .collect();
    print_table(
        &format!("Fig. 2: supply of resource reduction, Δ = {delta_max}"),
        &["price q", "b=0.05", "b=0.10", "b=0.20", "b=0.40"],
        &rows,
    );
    for s in &supplies {
        println!(
            "bid {:.2}: activation price {:.3} (supply positive above it)",
            s.bid(),
            s.activation_price().unwrap().get()
        );
    }
}
