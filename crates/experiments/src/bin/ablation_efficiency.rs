//! Ablation: market efficiency across random instances.
//!
//! The supply-function equilibrium carries a theoretical efficiency
//! guarantee (Johari & Tsitsiklis 2011). We measure the realized efficiency
//! ratio — OPT cost over market cost — for MPR-STAT and MPR-INT over many
//! random job mixes and target depths, along with the manager's
//! overpayment. Both markets clear the same shared [`MarketInstance`]
//! through the [`Mechanism`] trait.

use std::sync::Arc;

use mpr_apps::cpu_profiles;
use mpr_core::analysis;
use mpr_core::bidding::StaticStrategy;
use mpr_core::{
    CostModel, InteractiveConfig, InteractiveMechanism, MarketInstance, MclrMechanism, Mechanism,
    ParticipantSpec, ScaledCost, Watts,
};
use mpr_experiments::{fmt, print_table};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn main() {
    let profiles = cpu_profiles();
    let mut rng = ChaCha8Rng::seed_from_u64(2024);
    let instances = 40usize;
    let mut rows = Vec::new();

    for depth in [0.2, 0.5, 0.8] {
        let mut stat_eff = Vec::new();
        let mut int_eff = Vec::new();
        let mut stat_over = Vec::new();
        let mut int_over = Vec::new();
        for _ in 0..instances {
            let n = rng.gen_range(8..40);
            let costs: Vec<ScaledCost<_>> = (0..n)
                .map(|_| {
                    let p = &profiles[rng.gen_range(0..profiles.len())];
                    ScaledCost::new(p.cost_model(1.0), f64::from(2u32.pow(rng.gen_range(0..6))))
                })
                .collect();
            let w: Vec<f64> = vec![125.0; costs.len()];
            let attainable: f64 = costs.iter().map(|c| c.delta_max() * 125.0).sum();
            let target = Watts::new(depth * attainable);
            let instance: MarketInstance = costs
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    ParticipantSpec::new(i as u64, c.delta_max(), Watts::new(125.0))
                        .with_bid(
                            StaticStrategy::Cooperative
                                .supply_for(c)
                                .expect("valid cooperative bid")
                                .bid(),
                        )
                        .with_cost(Arc::new(c.clone()))
                })
                .collect();

            let clearing = MclrMechanism::strict()
                .clear(&instance, target)
                .expect("feasible")
                .to_market_clearing();
            let wf = analysis::evaluate(&clearing, &costs, &w).expect("consistent");
            if let Some(e) = wf.efficiency() {
                stat_eff.push(e);
                stat_over.push(wf.overpayment() / wf.realized_cost.max(1e-9));
            }

            let clearing = InteractiveMechanism::strict(InteractiveConfig::default())
                .clear(&instance, target)
                .expect("feasible")
                .to_market_clearing();
            let wf = analysis::evaluate(&clearing, &costs, &w).expect("consistent");
            if let Some(e) = wf.efficiency() {
                int_eff.push(e);
                int_over.push(wf.overpayment() / wf.realized_cost.max(1e-9));
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        let min = |v: &[f64]| v.iter().copied().fold(f64::INFINITY, f64::min);
        rows.push(vec![
            fmt(100.0 * depth, 0),
            fmt(mean(&stat_eff), 3),
            fmt(min(&stat_eff), 3),
            fmt(mean(&int_eff), 3),
            fmt(min(&int_eff), 3),
            fmt(mean(&stat_over), 2),
            fmt(mean(&int_over), 2),
        ]);
    }
    print_table(
        &format!("Market efficiency over {instances} random instances (OPT cost / market cost)"),
        &[
            "target depth %",
            "STAT mean eff",
            "STAT worst",
            "INT mean eff",
            "INT worst",
            "STAT overpay",
            "INT overpay",
        ],
        &rows,
    );
    println!(
        "\nMPR-INT stays within a few percent of the social optimum everywhere;\n\
         MPR-STAT trades efficiency for one-shot agility, worst at mid depths\n\
         where static cooperative bids are least informative."
    );
}
