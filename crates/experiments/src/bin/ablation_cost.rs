//! Ablation: the cost-model *form* users bid from — table-driven truth,
//! convex power-law fit, or the paper's logarithmic fit — and its effect on
//! the realized (true) performance cost of an MPR-INT clearing.
//!
//! The log form is concave, which makes best responses bang-bang; the
//! power-law fit preserves the convexity of measured extra-execution
//! curves. Realized cost is always measured with the table-driven truth.

use mpr_apps::{cpu_profiles, fit};
use mpr_core::{
    BiddingAgent, CostModel, InteractiveConfig, InteractiveMarket, NetGainAgent, ScaledCost, Watts,
};
use mpr_experiments::{fmt, print_table};

fn realized_cost(
    agents: Vec<Box<dyn BiddingAgent>>,
    truth: &[ScaledCost<mpr_apps::ProfileCost>],
    target: Watts,
) -> (f64, usize) {
    let mut market = InteractiveMarket::new(
        agents,
        InteractiveConfig {
            damping: 0.5,
            ..InteractiveConfig::default()
        },
    );
    let out = market.clear(target).expect("feasible target");
    let cost = out
        .clearing
        .allocations()
        .iter()
        .map(|a| truth[a.id as usize].cost(a.reduction))
        .sum();
    (cost, out.clearing.iterations())
}

fn main() {
    let profiles = cpu_profiles();
    let cores = 16.0;
    let w = 125.0;
    let truth: Vec<ScaledCost<_>> = profiles
        .iter()
        .map(|p| ScaledCost::new(p.cost_model(1.0), cores))
        .collect();
    let attainable: f64 = truth.iter().map(|t| t.delta_max() * w).sum();

    let mut rows = Vec::new();
    for frac in [0.2, 0.4, 0.6] {
        let target = Watts::new(frac * attainable);
        let table_agents: Vec<Box<dyn BiddingAgent>> = truth
            .iter()
            .enumerate()
            .map(|(i, t)| Box::new(NetGainAgent::new(i as u64, t.clone(), Watts::new(w))) as _)
            .collect();
        let power_agents: Vec<Box<dyn BiddingAgent>> = profiles
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let fitted = fit::fit_power(&p.cost_model(1.0));
                Box::new(NetGainAgent::new(
                    i as u64,
                    ScaledCost::new(fitted, cores),
                    Watts::new(w),
                )) as _
            })
            .collect();
        let log_agents: Vec<Box<dyn BiddingAgent>> = profiles
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let fitted = fit::fit_log(&p.cost_model(1.0));
                Box::new(NetGainAgent::new(
                    i as u64,
                    ScaledCost::new(fitted, cores),
                    Watts::new(w),
                )) as _
            })
            .collect();

        let (c_table, i_table) = realized_cost(table_agents, &truth, target);
        let (c_power, i_power) = realized_cost(power_agents, &truth, target);
        let (c_log, i_log) = realized_cost(log_agents, &truth, target);
        rows.push(vec![
            fmt(100.0 * frac, 0),
            format!("{} ({} it)", fmt(c_table, 1), i_table),
            format!("{} ({} it)", fmt(c_power, 1), i_power),
            format!("{} ({} it)", fmt(c_log, 1), i_log),
        ]);
    }
    print_table(
        "Ablation: realized true cost of MPR-INT under different bid cost models",
        &[
            "target (% max)",
            "table truth",
            "power-law fit",
            "log fit (paper form)",
        ],
        &rows,
    );
}
