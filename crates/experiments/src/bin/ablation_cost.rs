//! Ablation: the cost-model *form* users bid from — table-driven truth,
//! convex power-law fit, or the paper's logarithmic fit — and its effect on
//! the realized (true) performance cost of an MPR-INT clearing.
//!
//! The log form is concave, which makes best responses bang-bang; the
//! power-law fit preserves the convexity of measured extra-execution
//! curves. Realized cost is always measured with the table-driven truth.
//! Each form is a [`MarketInstance`] whose rows carry that perceived cost
//! model; the game runs through the [`Mechanism`] trait.

use std::sync::Arc;

use mpr_apps::{cpu_profiles, fit};
use mpr_core::{
    CostModel, InteractiveConfig, InteractiveMechanism, MarketInstance, Mechanism, ParticipantSpec,
    ScaledCost, Watts,
};
use mpr_experiments::{fmt, print_table};

fn realized_cost(
    instance: &MarketInstance,
    truth: &[ScaledCost<mpr_apps::ProfileCost>],
    target: Watts,
) -> (f64, usize) {
    let mut mech = InteractiveMechanism::strict(InteractiveConfig {
        damping: 0.5,
        ..InteractiveConfig::default()
    });
    let clearing = mech.clear(instance, target).expect("feasible target");
    let cost = truth
        .iter()
        .zip(clearing.reductions())
        .map(|(t, &r)| t.cost(r))
        .sum();
    (cost, clearing.iterations())
}

/// An instance whose rows bid from `perceived` cost models.
fn instance_of<C: CostModel + 'static>(perceived: Vec<C>, w: f64) -> MarketInstance {
    perceived
        .into_iter()
        .enumerate()
        .map(|(i, c)| {
            ParticipantSpec::new(i as u64, c.delta_max(), Watts::new(w)).with_cost(Arc::new(c))
        })
        .collect()
}

fn main() {
    let profiles = cpu_profiles();
    let cores = 16.0;
    let w = 125.0;
    let truth: Vec<ScaledCost<_>> = profiles
        .iter()
        .map(|p| ScaledCost::new(p.cost_model(1.0), cores))
        .collect();
    let attainable: f64 = truth.iter().map(|t| t.delta_max() * w).sum();

    let table = instance_of(truth.clone(), w);
    let power = instance_of(
        profiles
            .iter()
            .map(|p| ScaledCost::new(fit::fit_power(&p.cost_model(1.0)), cores))
            .collect(),
        w,
    );
    let log = instance_of(
        profiles
            .iter()
            .map(|p| ScaledCost::new(fit::fit_log(&p.cost_model(1.0)), cores))
            .collect(),
        w,
    );

    let mut rows = Vec::new();
    for frac in [0.2, 0.4, 0.6] {
        let target = Watts::new(frac * attainable);
        let (c_table, i_table) = realized_cost(&table, &truth, target);
        let (c_power, i_power) = realized_cost(&power, &truth, target);
        let (c_log, i_log) = realized_cost(&log, &truth, target);
        rows.push(vec![
            fmt(100.0 * frac, 0),
            format!("{} ({} it)", fmt(c_table, 1), i_table),
            format!("{} ({} it)", fmt(c_power, 1), i_power),
            format!("{} ({} it)", fmt(c_log, 1), i_log),
        ]);
    }
    print_table(
        "Ablation: realized true cost of MPR-INT under different bid cost models",
        &[
            "target (% max)",
            "table truth",
            "power-law fit",
            "log fit (paper form)",
        ],
        &rows,
    );
}
