//! Fig. 1(b): utilization CDFs of the four real-world cluster workloads.

use mpr_experiments::{arg_days, fmt, print_table};
use mpr_workload::{utilization_cdf, ClusterSpec, TraceGenerator};

fn main() {
    // PIK's full 3-year span is cut to one year by default; override with
    // --days to reproduce the full trace.
    let override_days = std::env::args().any(|a| a == "--days");
    let days = arg_days(0.0);
    let specs = [
        ClusterSpec::gaia(),
        ClusterSpec::metacentrum(),
        ClusterSpec::ricc(),
        ClusterSpec::pik().with_span_days(365.0),
    ];
    let mut cdfs = Vec::new();
    let mut names = Vec::new();
    for spec in specs {
        let spec = if override_days {
            spec.with_span_days(days)
        } else {
            spec
        };
        let trace = TraceGenerator::new(spec).generate();
        let series = trace.allocation_series(600.0);
        names.push(trace.name().to_owned());
        cdfs.push(utilization_cdf(&series, f64::from(trace.total_cores()), 20));
        let mix = mpr_workload::JobMix::of(trace.jobs(), trace.span_secs());
        println!(
            "{}: {} jobs, {} cores, mean utilization {:.2}, median width {:.0} cores, \
             median runtime {:.1} h, {:.0} arrivals/day",
            trace.name(),
            trace.len(),
            trace.total_cores(),
            series.mean() / f64::from(trace.total_cores()),
            mix.median_cores,
            mix.median_runtime_hours,
            mix.arrivals_per_day
        );
    }
    let rows: Vec<Vec<String>> = (0..20)
        .map(|i| {
            let mut row = vec![fmt(cdfs[0][i].0, 2)];
            for cdf in &cdfs {
                row.push(fmt(cdf[i].1, 3));
            }
            row
        })
        .collect();
    print_table(
        "Fig. 1(b): CDF of cluster utilization (fraction of time at or below u)",
        &[
            "u",
            names[0].as_str(),
            names[1].as_str(),
            names[2].as_str(),
            names[3].as_str(),
        ],
        &rows,
    );
    println!(
        "\nShape check: rarely-used top capacity — Gaia ~5%, Metacentrum ~20%, RICC ~55%, PIK ~65% (paper)."
    );
}
