//! Extension (paper Section I, merit ④): MPR as a demand-response vehicle.
//!
//! A utility DR program calls for 10 % of the cluster's capacity every
//! weekday evening. The same market that handles oversubscription overloads
//! sources the reduction from the users — no scheduler changes, no manual
//! intervention — and we compare how each algorithm prices/spreads the DR
//! burden.

use std::sync::Arc;

use mpr_experiments::{arg_days, fmt, fmt_thousands, gaia_trace, print_table, run_with};
use mpr_grid::{DrCapacity, DrSchedule};
use mpr_sim::{Algorithm, SimConfig, Simulation};

fn main() {
    let days = arg_days(30.0);
    let trace = gaia_trace(days);
    let probe = Simulation::new(&trace, SimConfig::new(Algorithm::MprStat, 10.0));
    let peak = probe.reference_peak_watts();
    let base_capacity = peak * (100.0 / 110.0);
    let schedule = DrSchedule::weekday_evenings(days, 3.0, base_capacity * 0.10);
    println!(
        "Gaia, {days} days at 10% oversubscription; DR program: {} events, {:.1} MWh obligation",
        schedule.events().len(),
        schedule.total_obligation_wh() / 1e6
    );

    let mut rows = Vec::new();
    for alg in Algorithm::all() {
        let baseline = run_with(&trace, SimConfig::new(alg, 10.0));
        let policy = Arc::new(DrCapacity::new(base_capacity, schedule.clone()));
        let dr = run_with(
            &trace,
            SimConfig::new(alg, 10.0).with_capacity_policy(policy),
        );
        rows.push(vec![
            alg.to_string(),
            fmt_thousands(baseline.reduction_core_hours),
            fmt_thousands(dr.reduction_core_hours),
            fmt_thousands(dr.cost_core_hours),
            fmt_thousands(dr.reward_core_hours),
            fmt(dr.avg_runtime_increase_pct, 2),
            dr.overload_events.to_string(),
        ]);
    }
    print_table(
        "Demand response through MPR (weekday-evening 10% capacity calls)",
        &[
            "algorithm",
            "reduction w/o DR",
            "reduction w/ DR",
            "cost (c-h)",
            "reward (c-h)",
            "stretch %",
            "emergencies",
        ],
        &rows,
    );
    println!(
        "\nThe market sources the DR obligation from the least-sensitive jobs\n\
         and compensates them — the same machinery as overload handling."
    );
}
