//! Fig. 6: core allocation of the Gaia cluster over the trace.

use mpr_experiments::{arg_days, fmt, gaia_trace, print_table};

fn main() {
    let days = arg_days(92.0);
    let trace = gaia_trace(days);
    let series = trace.allocation_series(3600.0);
    let per_day = 24usize;
    let rows: Vec<Vec<String>> = series
        .values()
        .chunks(per_day)
        .enumerate()
        .map(|(day, chunk)| {
            let min = chunk.iter().copied().fold(f64::INFINITY, f64::min);
            let max = chunk.iter().copied().fold(0.0, f64::max);
            let mean = chunk.iter().sum::<f64>() / chunk.len() as f64;
            vec![
                format!("{}", day + 1),
                fmt(min, 0),
                fmt(mean, 0),
                fmt(max, 0),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Fig. 6: Gaia core allocation ({} jobs, {} cores, peak {:.0})",
            trace.len(),
            trace.total_cores(),
            series.peak()
        ),
        &["day", "min cores", "mean cores", "max cores"],
        &rows,
    );
}
