//! Runs every experiment binary in sequence (short spans) — a smoke pass
//! over the full table/figure suite:
//!
//! ```text
//! cargo run --release -p mpr-experiments --bin all_experiments -- --days 10
//! ```

use std::process::Command;

fn main() {
    let days = mpr_experiments::arg_days(10.0).to_string();
    let with_days: &[&str] = &[
        "table1",
        "fig1b",
        "fig6",
        "fig8",
        "fig9",
        "fig11",
        "fig12",
        "fig13",
        "fig14",
        "fig15",
        "fig_power_timeline",
        "ablation_hysteresis",
        "ext_demand_response",
        "ext_carbon",
        "ext_partitions",
        "ext_scheduler",
        "ext_phases",
        "ext_alpha",
        "ext_tco",
        "ext_telemetry",
    ];
    let without: &[&str] = &[
        "fig2",
        "fig3",
        "fig4",
        "fig7",
        "fig10",
        "fig16",
        "fig17",
        "ablation_supply",
        "ablation_cost",
        "ablation_damping",
        "ablation_vcg",
        "ablation_efficiency",
        "ext_power_attack",
        "ext_collusion",
        "ext_battery_dr",
    ];
    let exe = std::env::current_exe().expect("current exe path");
    let bin_dir = exe.parent().expect("bin dir");
    let mut failures = Vec::new();
    for name in with_days.iter().chain(without) {
        println!("\n################ {name} ################");
        let mut cmd = Command::new(bin_dir.join(name));
        if with_days.contains(name) {
            cmd.args(["--days", &days]);
        }
        match cmd.status() {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{name} exited with {s}");
                failures.push(*name);
            }
            Err(e) => {
                eprintln!("{name} failed to launch: {e} (build with --release first)");
                failures.push(*name);
            }
        }
    }
    if failures.is_empty() {
        println!("\nall experiments completed");
    } else {
        eprintln!("\nfailed: {failures:?}");
        std::process::exit(1);
    }
}
