//! Fig. 3: XSBench performance, extra execution and cost of resource
//! reduction (α = 1).

use mpr_apps::profile_by_name;
use mpr_core::CostModel;
use mpr_experiments::{fmt, print_table};

fn main() {
    let xs = profile_by_name("XSBench").expect("catalog app");
    let cost = xs.cost_model(1.0);

    let rows: Vec<Vec<String>> = (0..=14)
        .map(|i| {
            let alloc = 0.3 + 0.05 * f64::from(i);
            let reduction = 1.0 - alloc;
            vec![
                fmt(alloc, 2),
                fmt(100.0 * xs.performance(alloc), 1),
                fmt(reduction, 2),
                fmt(xs.extra_execution(reduction), 3),
                fmt(cost.cost(reduction), 3),
            ]
        })
        .collect();
    print_table(
        "Fig. 3: XSBench under resource reduction (per core, alpha = 1)",
        &[
            "allocation",
            "performance %",
            "reduction",
            "extra execution",
            "cost",
        ],
        &rows,
    );
    println!("\nΔ (max reduction) for XSBench = {:.2}", xs.delta_max());
}
