//! Extension (paper Section I, limitations of proactive approaches): job
//! power *phases*.
//!
//! Proactive power-aware scheduling must predict per-phase power; MPR's
//! reactive loop just watches the meter. This sweep turns on per-job power
//! oscillation and shows the reactive machinery absorbing it: more (shorter)
//! emergencies, modest cost growth, no scheduler-side modeling anywhere.

use mpr_experiments::{arg_days, fmt, fmt_thousands, gaia_trace, print_table, run_with};
use mpr_sim::{Algorithm, SimConfig};

fn main() {
    let days = arg_days(30.0);
    let trace = gaia_trace(days);
    println!("Gaia, {days} days, MPR-STAT at 15% oversubscription");

    let mut rows = Vec::new();
    for amplitude in [0.0, 0.1, 0.2, 0.3] {
        let r = run_with(
            &trace,
            SimConfig::new(Algorithm::MprStat, 15.0).with_phases(amplitude),
        );
        rows.push(vec![
            format!("±{}%", fmt(amplitude * 100.0, 0)),
            fmt(r.overload_time_pct(), 2),
            r.overload_events.to_string(),
            fmt_thousands(r.reduction_core_hours),
            fmt_thousands(r.cost_core_hours),
            fmt(r.avg_runtime_increase_pct, 2),
        ]);
    }
    print_table(
        "Per-job power phases vs the reactive loop",
        &[
            "phase amplitude",
            "overload time %",
            "emergencies",
            "reduction (c-h)",
            "cost (c-h)",
            "stretch %",
        ],
        &rows,
    );
    println!(
        "\nPhase noise multiplies emergencies but each stays small — the reactive\n\
         market needs no phase prediction, unlike power-aware scheduling."
    );
}
