//! Fig. 16: impact of CPU speed on dynamic power and execution time for
//! the four prototype applications (1.0–2.4 GHz DVFS range).

use mpr_experiments::{fmt, print_table};
use mpr_proto::{prototype_apps, FREQ_MAX_GHZ, FREQ_MIN_GHZ, FREQ_STEP_GHZ};

fn main() {
    let apps = prototype_apps();
    let headers: Vec<String> = std::iter::once("freq (GHz)".to_owned())
        .chain(apps.iter().map(|a| a.name().to_owned()))
        .collect();
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();

    let mut freqs = Vec::new();
    let mut f = FREQ_MIN_GHZ;
    while f <= FREQ_MAX_GHZ + 1e-9 {
        freqs.push(f);
        f += 2.0 * FREQ_STEP_GHZ;
    }

    let rows: Vec<Vec<String>> = freqs
        .iter()
        .map(|&f| {
            let mut row = vec![fmt(f, 1)];
            row.extend(apps.iter().map(|a| fmt(a.dynamic_power_w(f), 1)));
            row
        })
        .collect();
    print_table(
        "Fig. 16(a): dynamic power vs CPU speed (W, 10-core slice)",
        &headers_ref,
        &rows,
    );

    let rows: Vec<Vec<String>> = freqs
        .iter()
        .map(|&f| {
            let mut row = vec![fmt(f, 1)];
            row.extend(apps.iter().map(|a| fmt(a.normalized_runtime(f), 2)));
            row
        })
        .collect();
    print_table(
        "Fig. 16(b): execution time vs CPU speed (normalized to 2.4 GHz)",
        &headers_ref,
        &rows,
    );
}
