//! Fig. 11: user rewards and the HPC system's gain from MPR.
//!
//! (a) users always receive more reward than their performance-loss cost;
//! (b) the manager gains orders of magnitude more core-hours than she pays.

use mpr_experiments::{arg_days, fmt, fmt_thousands, gaia_trace, print_table, run};
use mpr_sim::Algorithm;

fn main() {
    let days = arg_days(90.0);
    let trace = gaia_trace(days);
    println!("Gaia, {days} days, {} jobs", trace.len());

    let levels = [5.0, 10.0, 15.0, 20.0];
    let mut reward_rows = Vec::new();
    let mut gain_rows = Vec::new();
    let mut ratio_rows = Vec::new();
    for alg in [Algorithm::MprStat, Algorithm::MprInt] {
        let reports: Vec<_> = levels.iter().map(|&pct| run(&trace, alg, pct)).collect();
        reward_rows.push(
            std::iter::once(alg.to_string())
                .chain(reports.iter().map(|r| {
                    r.reward_pct_of_cost()
                        .map_or_else(|| "n/a".into(), |v| fmt(v, 0))
                }))
                .collect::<Vec<_>>(),
        );
        gain_rows.push(
            std::iter::once(alg.to_string())
                .chain(reports.iter().map(|r| {
                    format!(
                        "{} / {}",
                        fmt_thousands(r.extra_capacity_core_hours),
                        fmt_thousands(r.reward_core_hours)
                    )
                }))
                .collect::<Vec<_>>(),
        );
        ratio_rows.push(
            std::iter::once(alg.to_string())
                .chain(reports.iter().map(|r| {
                    r.gain_over_reward()
                        .map_or_else(|| "n/a".into(), |v| format!("{}x", fmt(v, 0)))
                }))
                .collect::<Vec<_>>(),
        );
    }
    let headers = ["algorithm", "5%", "10%", "15%", "20%"];
    print_table(
        "Fig. 11(a): user reward as % of performance-loss cost (>100 means net benefit)",
        &headers,
        &reward_rows,
    );
    print_table(
        "Fig. 11(b): HPC gain / reward payoff (core-hours)",
        &headers,
        &gain_rows,
    );
    print_table(
        "Fig. 11(b) summary: HPC gain over reward payoff",
        &headers,
        &ratio_rows,
    );
}
