//! Fig. 9: benchmark comparison over the Gaia trace — total performance
//! cost, application-level runtime impact and the per-profile breakdown at
//! 15 % oversubscription.

use mpr_experiments::{arg_days, fmt, fmt_thousands, gaia_trace, print_table, run};
use mpr_sim::Algorithm;

fn main() {
    let days = arg_days(90.0);
    let trace = gaia_trace(days);
    println!("Gaia, {days} days, {} jobs", trace.len());

    let levels = [5.0, 10.0, 15.0, 20.0];
    let mut cost_rows = Vec::new();
    let mut stretch_rows = Vec::new();
    let mut at_15 = Vec::new();
    for alg in Algorithm::all() {
        let mut c = vec![alg.to_string()];
        let mut s = vec![alg.to_string()];
        for &pct in &levels {
            let r = run(&trace, alg, pct);
            c.push(fmt_thousands(r.cost_core_hours));
            s.push(fmt(r.avg_runtime_increase_pct, 2));
            if (pct - 15.0).abs() < 1e-9 {
                at_15.push(r);
            }
        }
        cost_rows.push(c);
        stretch_rows.push(s);
    }
    let headers = ["algorithm", "5%", "10%", "15%", "20%"];
    print_table(
        "Fig. 9(a): total cost of performance loss (core-hours)",
        &headers,
        &cost_rows,
    );
    print_table(
        "Fig. 9(b): average runtime increase of affected jobs (%)",
        &headers,
        &stretch_rows,
    );

    // (c) and (d): profile-wise reduction and cost at 15 %.
    let names: Vec<String> = mpr_apps::cpu_profiles()
        .iter()
        .map(|p| p.name().to_owned())
        .collect();
    let mut red_rows = Vec::new();
    let mut pcost_rows = Vec::new();
    for r in &at_15 {
        let mut rr = vec![r.algorithm.clone()];
        let mut cr = vec![r.algorithm.clone()];
        for n in &names {
            let stats = r.per_profile.get(n).cloned().unwrap_or_default();
            rr.push(fmt_thousands(stats.reduction_core_hours));
            cr.push(fmt_thousands(stats.cost_core_hours));
        }
        red_rows.push(rr);
        pcost_rows.push(cr);
    }
    let mut headers: Vec<&str> = vec!["algorithm"];
    headers.extend(names.iter().map(String::as_str));
    print_table(
        "Fig. 9(c): profile-wise resource reduction at 15% (core-hours)",
        &headers,
        &red_rows,
    );
    print_table(
        "Fig. 9(d): profile-wise cost at 15% (core-hours)",
        &headers,
        &pcost_rows,
    );
}
