//! Ablation: the reduction buffer and cool-down hysteresis (Section IV-A).
//!
//! The paper uses a 1 % buffer on the reduction target and a 10-minute
//! cool-down before lifting an emergency, to avoid declare/lift flapping.
//! This sweep shows what they buy: without them, the same trace produces
//! many more emergency declarations (relapses) for the same overload time.

use mpr_experiments::{arg_days, fmt, fmt_thousands, gaia_trace, print_table, run_with};
use mpr_sim::{Algorithm, SimConfig};

fn main() {
    let days = arg_days(30.0);
    let trace = gaia_trace(days);
    println!("Gaia, {days} days, MPR-STAT at 15% oversubscription");

    let mut rows = Vec::new();
    for (buffer, cooldown_min) in [
        (0.0, 0.0),
        (0.0, 10.0),
        (0.01, 0.0),
        (0.01, 10.0),
        (0.02, 10.0),
        (0.01, 30.0),
    ] {
        let mut cfg = SimConfig::new(Algorithm::MprStat, 15.0);
        cfg.buffer_frac = buffer;
        cfg.cooldown_secs = cooldown_min * 60.0;
        let r = run_with(&trace, cfg);
        rows.push(vec![
            format!("{}%", fmt(buffer * 100.0, 0)),
            fmt(cooldown_min, 0),
            r.overload_events.to_string(),
            fmt(r.overload_time_pct(), 2),
            fmt_thousands(r.cost_core_hours),
            fmt_thousands(r.reward_core_hours),
        ]);
    }
    print_table(
        "Ablation: reduction buffer and cool-down",
        &[
            "buffer",
            "cool-down (min)",
            "emergencies",
            "overload time %",
            "cost (core-h)",
            "reward (core-h)",
        ],
        &rows,
    );
    println!("\npaper setting: 1% buffer, 10-minute cool-down");
}
