//! Fig. 15: MPR under a heterogeneous system with GPUs — resource-
//! performance relations of the six GPU applications, the overall cost
//! comparison and the per-application performance loss that breaks EQL.

use mpr_experiments::{arg_days, fmt, fmt_thousands, gaia_trace, print_table, run_with};
use mpr_sim::{Algorithm, SimConfig};

fn main() {
    let days = arg_days(30.0);
    let profiles = mpr_apps::gpu_profiles();

    // (a) Resource-performance relation.
    let allocs = [0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];
    let headers: Vec<&str> = std::iter::once("allocation")
        .chain(profiles.iter().map(|p| p.name()))
        .collect();
    let rows: Vec<Vec<String>> = allocs
        .iter()
        .map(|&a| {
            let mut row = vec![fmt(a, 1)];
            row.extend(profiles.iter().map(|p| fmt(100.0 * p.performance(a), 0)));
            row
        })
        .collect();
    print_table(
        "Fig. 15(a): GPU app performance (% of nominal; fragile apps collapse early)",
        &headers,
        &rows,
    );

    // (b) Overall cost under the Gaia trace with GPU profiles.
    let trace = gaia_trace(days);
    println!("\nGaia trace ({days} days) with GPU application profiles");
    let levels = [5.0, 10.0, 15.0, 20.0];
    let mut rows = Vec::new();
    let mut unmet_rows = Vec::new();
    let mut at_20 = Vec::new();
    for alg in Algorithm::all() {
        let mut row = vec![alg.to_string()];
        let mut urow = vec![alg.to_string()];
        for &pct in &levels {
            let cfg = SimConfig::new(alg, pct).with_profiles(profiles.clone());
            let r = run_with(&trace, cfg);
            row.push(fmt_thousands(r.cost_core_hours));
            urow.push(r.unmet_emergencies.to_string());
            if (pct - 20.0).abs() < 1e-9 {
                at_20.push(r);
            }
        }
        rows.push(row);
        unmet_rows.push(urow);
    }
    let headers = ["algorithm", "5%", "10%", "15%", "20%"];
    print_table(
        "Fig. 15(b): cost of performance loss (core-hours)",
        &headers,
        &rows,
    );
    print_table(
        "Fig. 15(b) aside: infeasible/unmet reductions (EQL pushes fragile apps past their range)",
        &headers,
        &unmet_rows,
    );

    // (c)/(d): per-application reduction and performance loss at 20 %.
    let names: Vec<String> = profiles.iter().map(|p| p.name().to_owned()).collect();
    let mut red_rows = Vec::new();
    let mut loss_rows = Vec::new();
    for r in &at_20 {
        let mut rr = vec![r.algorithm.clone()];
        let mut lr = vec![r.algorithm.clone()];
        for n in &names {
            let s = r.per_profile.get(n).cloned().unwrap_or_default();
            rr.push(fmt_thousands(s.reduction_core_hours));
            lr.push(fmt(s.runtime_stretch_pct, 2));
        }
        red_rows.push(rr);
        loss_rows.push(lr);
    }
    let mut headers: Vec<&str> = vec!["algorithm"];
    headers.extend(names.iter().map(String::as_str));
    print_table(
        "Fig. 15(c): per-app resource reduction at 20% (core-hours)",
        &headers,
        &red_rows,
    );
    print_table(
        "Fig. 15(d): per-app runtime stretch at 20% (%)",
        &headers,
        &loss_rows,
    );
}
