//! Fig. 14: MPR under the PIK, RICC and Metacentrum workload traces —
//! trace overviews and the cost-of-performance-loss comparison.
//!
//! The full archive spans (up to 3 years for PIK) are cut to a common
//! window by default; pass `--days N` to lengthen.

use mpr_experiments::{arg_days, fmt, fmt_thousands, print_table, run};
use mpr_sim::Algorithm;
use mpr_workload::{ClusterSpec, TraceGenerator};

fn main() {
    let days = arg_days(60.0);
    let specs = [
        ClusterSpec::pik(),
        ClusterSpec::ricc(),
        ClusterSpec::metacentrum(),
    ];
    for spec in specs {
        let trace = TraceGenerator::new(spec.with_span_days(days)).generate();
        let series = trace.allocation_series(3600.0);
        println!(
            "\n{}: {} jobs over {days} days, {} cores, peak alloc {:.0}, mean util {:.2}",
            trace.name(),
            trace.len(),
            trace.total_cores(),
            series.peak(),
            series.mean() / f64::from(trace.total_cores())
        );
        let levels = [5.0, 10.0, 15.0, 20.0];
        let mut rows = Vec::new();
        for alg in Algorithm::all() {
            let mut row = vec![alg.to_string()];
            for &pct in &levels {
                let r = run(&trace, alg, pct);
                row.push(fmt_thousands(r.cost_core_hours));
            }
            rows.push(row);
        }
        print_table(
            &format!(
                "Fig. 14: cost of performance loss on {} (core-hours)",
                trace.name()
            ),
            &["algorithm", "5%", "10%", "15%", "20%"],
            &rows,
        );
        // Sanity line mirroring the paper's takeaway.
        let opt = run(&trace, Algorithm::Opt, 15.0).cost_core_hours;
        let int = run(&trace, Algorithm::MprInt, 15.0).cost_core_hours;
        if opt > 0.0 {
            println!("MPR-INT / OPT cost ratio at 15%: {}", fmt(int / opt, 2));
        }
    }
}
