//! Fig. 8: impact of oversubscription on the Gaia system and the HPC jobs —
//! time in overloaded state, overload hours, jobs affected and total
//! resource reduction, for all four algorithms at 5–20 % oversubscription.

use mpr_experiments::{arg_days, fmt, fmt_thousands, gaia_trace, print_table, run};
use mpr_sim::Algorithm;

fn main() {
    let days = arg_days(90.0);
    let trace = gaia_trace(days);
    println!(
        "Gaia, {days} days, {} jobs, capacity {:.0} core-hours over the period",
        trace.len(),
        f64::from(trace.total_cores()) * days * 24.0
    );

    let levels = [5.0, 10.0, 15.0, 20.0];
    let mut overload_pct = Vec::new();
    let mut overload_hours = Vec::new();
    let mut affected = Vec::new();
    let mut reduction = Vec::new();
    for alg in Algorithm::all() {
        let mut r1 = vec![alg.to_string()];
        let mut r2 = vec![alg.to_string()];
        let mut r3 = vec![alg.to_string()];
        let mut r4 = vec![alg.to_string()];
        for &pct in &levels {
            let r = run(&trace, alg, pct);
            r1.push(fmt(r.overload_time_pct(), 2));
            r2.push(fmt(r.overload_slots as f64 * 60.0 / 3600.0, 1));
            r3.push(fmt(r.jobs_affected_pct(), 1));
            r4.push(fmt_thousands(r.reduction_core_hours));
        }
        overload_pct.push(r1);
        overload_hours.push(r2);
        affected.push(r3);
        reduction.push(r4);
    }
    let headers = ["algorithm", "5%", "10%", "15%", "20%"];
    print_table(
        "Fig. 8(a): % of time in overloaded state",
        &headers,
        &overload_pct,
    );
    print_table(
        "Fig. 8(b): overload time (hours over the run)",
        &headers,
        &overload_hours,
    );
    print_table("Fig. 8(c): % of jobs affected", &headers, &affected);
    print_table(
        "Fig. 8(d): total resource reduction (core-hours)",
        &headers,
        &reduction,
    );
}
