//! Extension (paper Section III-F, "Malicious users"): power attacks.
//!
//! A malicious user learns the system is overloaded from seeing the market
//! invoked, and responds by triggering the power-intensive phase of its job
//! to *intensify* the overload. The defense the paper describes: the
//! manager "can quickly thwart unwanted power spikes by directly reducing
//! the power of all users/jobs bypassing MPR".
//!
//! We emulate a prototype-scale cluster with four honest applications and
//! one attacker, with and without the direct-capping defense.

use mpr_core::bidding::StaticStrategy;
use mpr_core::{MarketInstance, MclrMechanism, Mechanism, ParticipantSpec, Watts};
use mpr_experiments::{fmt, print_table};
use mpr_power::{EmergencyAction, EmergencyConfig, EmergencyController};
use mpr_proto::{prototype_apps, DvfsApp, FREQ_MAX_GHZ, FREQ_MIN_GHZ};

/// Attacker: draws 60 W normally, 260 W while attacking (a power-virus
/// phase trigger) — more than the honest apps can shed, so the market
/// alone cannot restore the cap. Attacks whenever it observes an emergency.
const ATTACK_IDLE_W: f64 = 60.0;
const ATTACK_SPIKE_W: f64 = 260.0;
const CAP_W: f64 = 430.0;
const STATIC_W: f64 = 20.0;
const DURATION_S: usize = 1800;

struct Outcome {
    max_power: f64,
    secs_above_cap: usize,
    emergencies: usize,
    direct_caps: usize,
}

fn run(defended: bool) -> Outcome {
    let apps: Vec<DvfsApp> = prototype_apps();
    let supplies: Vec<_> = apps
        .iter()
        .map(|a| {
            StaticStrategy::Cooperative
                .supply_for(&a.cost_model())
                .expect("valid bids")
        })
        .collect();
    let mut controller = EmergencyController::new(EmergencyConfig {
        capacity: Watts::new(CAP_W),
        buffer_frac: 0.01,
        min_overload_secs: 5.0,
        cooldown_secs: 60.0,
    });
    let mut freqs = vec![FREQ_MAX_GHZ; apps.len()];
    let mut attacking = false;
    let mut direct_capped = false;
    let mut escalations_in_emergency = 0usize;
    let mut out = Outcome {
        max_power: 0.0,
        secs_above_cap: 0,
        emergencies: 0,
        direct_caps: 0,
    };

    for step in 0..DURATION_S {
        let t = step as f64;
        let honest: f64 = apps
            .iter()
            .zip(&freqs)
            .map(|(a, &f)| a.dynamic_power_w(f))
            .sum();
        let attacker = if direct_capped {
            // Direct power capping clamps the attacker's node too.
            ATTACK_IDLE_W * 0.5
        } else if attacking {
            ATTACK_SPIKE_W
        } else {
            ATTACK_IDLE_W
        };
        let power = STATIC_W + honest + attacker;
        out.max_power = out.max_power.max(power);
        if power > CAP_W {
            out.secs_above_cap += 1;
        }

        match controller.step(t, Watts::new(power)) {
            EmergencyAction::Declare { .. } | EmergencyAction::Escalate { .. } => {
                out.emergencies += 1;
                escalations_in_emergency += 1;
                // The attacker observes the market invocation and spikes.
                attacking = true;
                if defended && escalations_in_emergency >= 3 {
                    // Repeated escalation: bypass the market, cap directly.
                    direct_capped = true;
                    out.direct_caps += 1;
                    freqs.iter_mut().for_each(|f| *f = FREQ_MIN_GHZ);
                    controller.record_delivered(Watts::new(
                        apps.iter().map(|a| a.power_saving_w(FREQ_MIN_GHZ)).sum(),
                    ));
                    continue;
                }
                // Normal market path (attacker refuses to participate).
                let target = controller.active_target();
                let instance: MarketInstance = apps
                    .iter()
                    .enumerate()
                    .map(|(i, a)| {
                        ParticipantSpec::new(
                            i as u64,
                            supplies[i].delta_max(),
                            Watts::new(a.watts_per_unit()),
                        )
                        .with_bid(supplies[i].bid())
                    })
                    .collect();
                let clearing = MclrMechanism::best_effort()
                    .clear(&instance, target)
                    .expect("best-effort always clears");
                let mut delivered = 0.0;
                for (i, &reduction) in clearing.reductions().iter().enumerate() {
                    let f = apps[i].freq_for_reduction(reduction);
                    freqs[i] = f;
                    delivered += apps[i].power_saving_w(f);
                }
                controller.record_delivered(Watts::new(delivered));
            }
            EmergencyAction::Lift => {
                freqs.iter_mut().for_each(|f| *f = FREQ_MAX_GHZ);
                attacking = false;
                direct_capped = false;
                escalations_in_emergency = 0;
            }
            EmergencyAction::None => {}
        }
    }
    out
}

fn main() {
    let undefended = run(false);
    let defended = run(true);
    let rows = vec![
        vec![
            "market only".to_owned(),
            fmt(undefended.max_power, 1),
            undefended.secs_above_cap.to_string(),
            undefended.emergencies.to_string(),
            undefended.direct_caps.to_string(),
        ],
        vec![
            "with direct capping".to_owned(),
            fmt(defended.max_power, 1),
            defended.secs_above_cap.to_string(),
            defended.emergencies.to_string(),
            defended.direct_caps.to_string(),
        ],
    ];
    print_table(
        &format!("Power-attack study (cap {CAP_W} W, 30-minute run, 1 attacker)"),
        &[
            "defense",
            "max power (W)",
            "secs above cap",
            "market calls",
            "direct caps",
        ],
        &rows,
    );
    println!(
        "\nThe attacker spikes whenever it sees the market invoked; with the paper's\n\
         direct-capping fallback the overload time collapses and the spike is clamped."
    );
    assert!(defended.secs_above_cap < undefended.secs_above_cap);
}
