//! Extension: the scheduling substrate end-to-end.
//!
//! The paper's traces record *start* times produced by a real resource
//! manager. Here we treat the generated Gaia stream as a *submission*
//! stream, schedule it onto a core-constrained machine with FCFS and EASY
//! backfilling, and run MPR on the resulting start-time trace — the full
//! submit → queue → start → power → market pipeline.

use mpr_experiments::{arg_days, fmt, fmt_thousands, gaia_trace, print_table, run};
use mpr_sched::{schedule, Policy, SubmittedJob};
use mpr_sim::Algorithm;

fn main() {
    let days = arg_days(14.0);
    let generated = gaia_trace(days);
    // Interpret generated starts as submissions; estimates are 1.5x actual
    // (users over-request, the usual pattern in archive logs).
    let submissions: Vec<SubmittedJob> = generated
        .jobs()
        .iter()
        .map(|j| {
            SubmittedJob::new(
                j.id,
                j.start_secs,
                j.runtime_secs,
                1.5 * j.runtime_secs,
                j.cores,
            )
        })
        .collect();

    // Schedule onto a constrained machine (75 % of the cores) so the
    // submission stream actually queues — the regime schedulers exist for.
    let machine_cores = (generated.total_cores() * 3) / 4;
    let mut rows = Vec::new();
    for (name, policy) in [
        ("FCFS", Policy::Fcfs),
        ("EASY backfill", Policy::EasyBackfill),
    ] {
        let out = schedule(&submissions, machine_cores, policy);
        let report = run(&out.trace, Algorithm::MprStat, 15.0);
        rows.push(vec![
            name.to_owned(),
            fmt(out.stats.mean_wait_secs / 60.0, 1),
            fmt(out.stats.max_wait_secs / 3600.0, 1),
            out.stats.backfilled_jobs.to_string(),
            fmt(100.0 * out.stats.utilization, 1),
            fmt(report.overload_time_pct(), 2),
            fmt_thousands(report.cost_core_hours),
        ]);
    }
    print_table(
        &format!(
            "Submission-stream pipeline: {} jobs scheduled onto {} cores, then MPR-STAT at 15%",
            generated.len(),
            machine_cores
        ),
        &[
            "policy",
            "mean wait (min)",
            "max wait (h)",
            "backfilled",
            "utilization %",
            "overload %",
            "MPR cost (c-h)",
        ],
        &rows,
    );
    println!(
        "\nBackfilling raises utilization, which in turn feeds the oversubscribed\n\
         power envelope — scheduling and power management compose cleanly."
    );
}
