//! Ablation: the paper's hyperbolic supply function `δ = [Δ − b/q]⁺`
//! against a linear supply `δ = min(q/β, Δ)` (Li et al., "Demand response
//! using linear supply function bidding").
//!
//! Both markets clear the same heterogeneous job set at the same targets;
//! we compare the clearing price, the manager's payoff and how well the
//! allocation tracks the cost-optimal (OPT) spread. The hyperbolic form
//! encodes diminishing returns — its allocation is closer to OPT at the
//! shallow targets typical of real overloads.
//!
//! The hyperbolic market and OPT clear a shared [`MarketInstance`] through
//! the [`Mechanism`] trait; the linear-supply comparison deliberately stays
//! on the raw `mclr::solve_supplies` API — linear bidding is the *ablated*
//! alternative, not a production mechanism.

use std::sync::Arc;

use mpr_apps::cpu_profiles;
use mpr_core::bidding::StaticStrategy;
use mpr_core::{
    mclr, CostModel, LinearSupply, MarketInstance, MclrMechanism, Mechanism, OptMechanism,
    OptMethod, ParticipantSpec, ScaledCost, Supply, Watts,
};
use mpr_experiments::{fmt, print_table};

fn main() {
    let profiles = cpu_profiles();
    // One 16-core job per CPU profile.
    let jobs: Vec<ScaledCost<_>> = profiles
        .iter()
        .map(|p| ScaledCost::new(p.cost_model(1.0), 16.0))
        .collect();
    let w = 125.0;
    let attainable: f64 = jobs.iter().map(|j| j.delta_max() * w).sum();

    // Hyperbolic market with cooperative bids; OPT reads the same rows.
    let instance: MarketInstance = jobs
        .iter()
        .enumerate()
        .map(|(i, j)| {
            ParticipantSpec::new(i as u64, j.delta_max(), Watts::new(w))
                .with_bid(
                    StaticStrategy::Cooperative
                        .supply_for(j)
                        .expect("valid cooperative bid")
                        .bid(),
                )
                .with_cost(Arc::new(j.clone()))
        })
        .collect();

    // Linear supplies with break-even slope at Δ: β = unit_cost(Δ)/Δ, so
    // supplying the full Δ at price unit_cost(Δ) is exactly fair.
    let linear: Vec<(LinearSupply, f64)> = jobs
        .iter()
        .map(|j| {
            let beta = j.unit_cost(j.delta_max()) / j.delta_max();
            (
                LinearSupply::new(j.delta_max(), beta).expect("valid linear supply"),
                w,
            )
        })
        .collect();

    let mut rows = Vec::new();
    for frac in [0.1, 0.3, 0.5, 0.7] {
        let target = Watts::new(frac * attainable);
        let hyp = MclrMechanism::best_effort()
            .clear(&instance, target)
            .expect("best-effort always clears");
        let hyp_cost: f64 = hyp
            .reductions()
            .iter()
            .zip(&jobs)
            .map(|(&r, j)| j.cost(r))
            .sum();
        let lin = mclr::solve_supplies(&linear, target).expect("feasible");
        let lin_cost: f64 = linear
            .iter()
            .zip(&jobs)
            .map(|((s, _), j)| j.cost(s.supply(lin.price.get())))
            .sum();
        let best = OptMechanism::strict(OptMethod::Auto)
            .clear(&instance, target)
            .expect("feasible");
        let best_cost: f64 = best
            .reductions()
            .iter()
            .zip(&jobs)
            .map(|(&r, j)| j.cost(r))
            .sum();
        rows.push(vec![
            fmt(100.0 * frac, 0),
            fmt(hyp.price().get(), 3),
            fmt(lin.price.get(), 3),
            fmt(hyp_cost, 1),
            fmt(lin_cost, 1),
            fmt(best_cost, 1),
        ]);
    }
    print_table(
        "Ablation: hyperbolic vs linear supply function (8 jobs, cooperative bids)",
        &[
            "target (% max)",
            "price (hyp)",
            "price (lin)",
            "cost (hyp)",
            "cost (lin)",
            "cost (OPT)",
        ],
        &rows,
    );
}
