//! Ablation: supply-function bidding (MPR) against a VCG procurement
//! auction (the related-work alternative, Section VI).
//!
//! VCG is truthful and cost-optimal but (i) forces users to reveal their
//! private cost functions, (ii) needs `M+1` OPT solves, and (iii) pays an
//! information rent above the social cost. MPR trades a sliver of
//! optimality for privacy and a single bisection solve. All three schemes
//! clear one shared [`MarketInstance`] through the [`Mechanism`] trait.

use std::sync::Arc;
use std::time::Instant;

use mpr_apps::cpu_profiles;
use mpr_core::bidding::StaticStrategy;
use mpr_core::{
    CostModel, InteractiveConfig, InteractiveMechanism, MarketInstance, MclrMechanism, Mechanism,
    OptMethod, ParticipantSpec, ScaledCost, VcgMechanism, Watts,
};
use mpr_experiments::{fmt, print_table};

fn main() {
    let profiles = cpu_profiles();
    let w = 125.0;
    let n = 64usize;
    let costs: Vec<ScaledCost<_>> = (0..n)
        .map(|i| {
            let p = &profiles[i % profiles.len()];
            ScaledCost::new(p.cost_model(1.0), f64::from(1u32 << (i % 5)))
        })
        .collect();
    let attainable: f64 = costs.iter().map(|c| c.delta_max() * w).sum();
    let instance: MarketInstance = costs
        .iter()
        .enumerate()
        .map(|(i, c)| {
            ParticipantSpec::new(i as u64, c.delta_max(), Watts::new(w))
                .with_bid(
                    StaticStrategy::Cooperative
                        .supply_for(c)
                        .expect("valid cooperative bid")
                        .bid(),
                )
                .with_cost(Arc::new(c.clone()))
        })
        .collect();

    let true_cost_of = |clearing: &mpr_core::mechanism::Clearing| -> f64 {
        costs
            .iter()
            .zip(clearing.reductions())
            .map(|(c, &r)| c.cost(r))
            .sum()
    };

    let mut rows = Vec::new();
    for frac in [0.2, 0.4, 0.6] {
        let target = Watts::new(frac * attainable);

        // VCG.
        let t0 = Instant::now();
        let v = VcgMechanism::strict(OptMethod::Auto)
            .clear(&instance, target)
            .expect("feasible");
        let vcg_ms = t0.elapsed().as_secs_f64() * 1000.0;

        // MPR-STAT.
        let t0 = Instant::now();
        let stat = MclrMechanism::strict()
            .clear(&instance, target)
            .expect("feasible");
        let stat_ms = t0.elapsed().as_secs_f64() * 1000.0;

        // MPR-INT.
        let int = InteractiveMechanism::strict(InteractiveConfig::default())
            .clear(&instance, target)
            .expect("feasible");

        rows.push(vec![
            fmt(100.0 * frac, 0),
            fmt(true_cost_of(&v), 1),
            fmt(v.total_payment_rate().get(), 1),
            fmt(vcg_ms, 1),
            fmt(true_cost_of(&stat), 1),
            fmt(stat.total_payment_rate().get(), 1),
            fmt(stat_ms, 2),
            fmt(true_cost_of(&int), 1),
            fmt(int.total_payment_rate().get(), 1),
            int.iterations().to_string(),
        ]);
    }
    print_table(
        &format!("Ablation: VCG auction vs MPR markets ({n} jobs)"),
        &[
            "target (%)",
            "VCG cost",
            "VCG pay",
            "VCG ms",
            "STAT cost",
            "STAT pay",
            "STAT ms",
            "INT cost",
            "INT pay",
            "INT iters",
        ],
        &rows,
    );
    println!(
        "\nVCG is cost-optimal and truthful but requires revealed cost functions and M+1 OPT solves;\n\
         MPR-STAT clears in one bisection without revealing anything (Section VI)."
    );
}
