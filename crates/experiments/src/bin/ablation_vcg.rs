//! Ablation: supply-function bidding (MPR) against a VCG procurement
//! auction (the related-work alternative, Section VI).
//!
//! VCG is truthful and cost-optimal but (i) forces users to reveal their
//! private cost functions, (ii) needs `M+1` OPT solves, and (iii) pays an
//! information rent above the social cost. MPR trades a sliver of
//! optimality for privacy and a single bisection solve.

use std::time::Instant;

use mpr_apps::cpu_profiles;
use mpr_core::bidding::StaticStrategy;
use mpr_core::{
    opt, vcg, BiddingAgent, CostModel, InteractiveConfig, InteractiveMarket, NetGainAgent,
    Participant, ScaledCost, StaticMarket, Watts,
};
use mpr_experiments::{fmt, print_table};

fn main() {
    let profiles = cpu_profiles();
    let w = 125.0;
    let n = 64usize;
    let costs: Vec<ScaledCost<_>> = (0..n)
        .map(|i| {
            let p = &profiles[i % profiles.len()];
            ScaledCost::new(p.cost_model(1.0), f64::from(1u32 << (i % 5)))
        })
        .collect();
    let attainable: f64 = costs.iter().map(|c| c.delta_max() * w).sum();

    let mut rows = Vec::new();
    for frac in [0.2, 0.4, 0.6] {
        let target = Watts::new(frac * attainable);

        // VCG.
        let jobs: Vec<opt::OptJob<'_>> = costs
            .iter()
            .enumerate()
            .map(|(i, c)| opt::OptJob::new(i as u64, c, Watts::new(w)))
            .collect();
        let t0 = Instant::now();
        let v = vcg::auction(&jobs, target, opt::OptMethod::Auto).expect("feasible");
        let vcg_ms = t0.elapsed().as_secs_f64() * 1000.0;

        // MPR-STAT.
        let market: StaticMarket = costs
            .iter()
            .enumerate()
            .map(|(i, c)| {
                Participant::new(
                    i as u64,
                    StaticStrategy::Cooperative.supply_for(c).unwrap(),
                    Watts::new(w),
                )
            })
            .collect();
        let t0 = Instant::now();
        let stat = market.clear(target).expect("feasible");
        let stat_ms = t0.elapsed().as_secs_f64() * 1000.0;
        let stat_cost: f64 = stat
            .allocations()
            .iter()
            .map(|a| costs[a.id as usize].cost(a.reduction))
            .sum();

        // MPR-INT.
        let agents: Vec<Box<dyn BiddingAgent>> = costs
            .iter()
            .enumerate()
            .map(|(i, c)| Box::new(NetGainAgent::new(i as u64, c.clone(), Watts::new(w))) as _)
            .collect();
        let mut imarket = InteractiveMarket::new(agents, InteractiveConfig::default());
        let int = imarket.clear(target).expect("feasible");
        let int_cost: f64 = int
            .clearing
            .allocations()
            .iter()
            .map(|a| costs[a.id as usize].cost(a.reduction))
            .sum();

        rows.push(vec![
            fmt(100.0 * frac, 0),
            fmt(v.total_cost, 1),
            fmt(v.total_payment, 1),
            fmt(vcg_ms, 1),
            fmt(stat_cost, 1),
            fmt(stat.total_reward_rate(), 1),
            fmt(stat_ms, 2),
            fmt(int_cost, 1),
            fmt(int.clearing.total_reward_rate(), 1),
            int.clearing.iterations().to_string(),
        ]);
    }
    print_table(
        &format!("Ablation: VCG auction vs MPR markets ({n} jobs)"),
        &[
            "target (%)",
            "VCG cost",
            "VCG pay",
            "VCG ms",
            "STAT cost",
            "STAT pay",
            "STAT ms",
            "INT cost",
            "INT pay",
            "INT iters",
        ],
        &rows,
    );
    println!(
        "\nVCG is cost-optimal and truthful but requires revealed cost functions and M+1 OPT solves;\n\
         MPR-STAT clears in one bisection without revealing anything (Section VI)."
    );
}
