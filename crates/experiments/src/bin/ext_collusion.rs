//! Extension (paper Section III-F, "Market collusion"): how many users must
//! coordinate to move the clearing price?
//!
//! A coalition of `k` of 40 users inflates its bids 3× above cooperative.
//! The paper argues collusion is unattractive because meaningful price
//! impact needs a large coalition; this sweep quantifies that: the price and
//! the colluders' per-member gain stay almost flat until the coalition
//! controls most of the supply.

use mpr_apps::cpu_profiles;
use mpr_core::bidding::{net_gain, StaticStrategy};
use mpr_core::{
    CostModel, MarketInstance, MclrMechanism, Mechanism, ParticipantSpec, ScaledCost, Watts,
};
use mpr_experiments::{fmt, print_table};

fn main() {
    let profiles = cpu_profiles();
    let n = 40usize;
    let w = 125.0;
    let costs: Vec<ScaledCost<_>> = (0..n)
        .map(|i| ScaledCost::new(profiles[i % profiles.len()].cost_model(1.0), 8.0))
        .collect();
    let honest: Vec<_> = costs
        .iter()
        .map(|c| StaticStrategy::Cooperative.supply_for(c).unwrap())
        .collect();
    let inflated: Vec<_> = costs
        .iter()
        .map(|c| {
            StaticStrategy::Conservative { factor: 3.0 }
                .supply_for(c)
                .unwrap()
        })
        .collect();
    let attainable: f64 = costs.iter().map(|c| c.delta_max() * w).sum();
    let target = Watts::new(0.35 * attainable);

    let mut rows = Vec::new();
    for k in [0usize, 5, 10, 20, 30, 40] {
        let supplies: Vec<_> = (0..n)
            .map(|i| if i < k { inflated[i] } else { honest[i] })
            .collect();
        let instance: MarketInstance = supplies
            .iter()
            .enumerate()
            .map(|(i, s)| {
                ParticipantSpec::new(i as u64, s.delta_max(), Watts::new(w)).with_bid(s.bid())
            })
            .collect();
        let clearing = MclrMechanism::best_effort()
            .clear(&instance, target)
            .expect("best-effort always clears");
        let price = clearing.price();
        let colluder_gain: f64 = supplies
            .iter()
            .take(k)
            .enumerate()
            .map(|(i, s)| net_gain(&costs[i], s, price))
            .sum();
        let per_member = if k > 0 { colluder_gain / k as f64 } else { 0.0 };
        // What the same k users would earn bidding honestly at this price
        // cannot be computed from one clearing; compare against the honest
        // equilibrium below instead.
        rows.push(vec![
            k.to_string(),
            fmt(price.get(), 3),
            fmt(clearing.total_payment_rate().get(), 1),
            fmt(per_member, 3),
            if clearing.met_target() { "yes" } else { "NO" }.to_owned(),
        ]);
    }
    print_table(
        "Collusion sweep: k of 40 users inflate bids 3x (target 35% of max supply)",
        &[
            "coalition size",
            "clearing price",
            "manager payoff",
            "gain per colluder",
            "target met",
        ],
        &rows,
    );
    println!(
        "\nSmall coalitions barely move the price (honest users absorb the supply);\n\
         only near-total coordination pays — the paper's argument that efforts\n\
         outweigh incentives for collusion in an HPC system."
    );
}
