//! Fig. 7: performance models, extra execution, log-fit cost models and
//! bidding references for the eight CPU benchmark applications.

use mpr_apps::{cpu_profiles, fit};
use mpr_core::CostModel;
use mpr_experiments::{fmt, print_table};

fn main() {
    let profiles = cpu_profiles();

    // (a) Performance at different allocations.
    let allocs = [0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];
    let headers: Vec<&str> = std::iter::once("allocation")
        .chain(profiles.iter().map(|p| p.name()))
        .collect();
    let rows: Vec<Vec<String>> = allocs
        .iter()
        .map(|&a| {
            let mut row = vec![fmt(a, 1)];
            row.extend(profiles.iter().map(|p| fmt(100.0 * p.performance(a), 0)));
            row
        })
        .collect();
    print_table("Fig. 7(a): performance (% of nominal)", &headers, &rows);

    // (b) Extra execution at different reductions.
    let reductions = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7];
    let rows: Vec<Vec<String>> = reductions
        .iter()
        .map(|&r| {
            let mut row = vec![fmt(r, 1)];
            row.extend(profiles.iter().map(|p| fmt(p.extra_execution(r), 3)));
            row
        })
        .collect();
    let headers: Vec<&str> = std::iter::once("reduction")
        .chain(profiles.iter().map(|p| p.name()))
        .collect();
    print_table("Fig. 7(b): extra execution", &headers, &rows);

    // (c) Logarithmic cost fits: cost = a·log(b·x) − a.
    let rows: Vec<Vec<String>> = profiles
        .iter()
        .map(|p| {
            let truth = p.cost_model(1.0);
            let log_fit = fit::fit_log(&truth);
            let (a, b) = log_fit.params();
            vec![
                p.name().to_owned(),
                fmt(a, 3),
                fmt(b, 2),
                fmt(fit::fit_rmse(&truth, &log_fit), 3),
                fmt(truth.cost(0.35), 3),
                fmt(log_fit.cost(0.35), 3),
            ]
        })
        .collect();
    print_table(
        "Fig. 7(c): logarithmic cost fits (cost = a*log(b*x) - a)",
        &["app", "a", "b", "rmse", "true C(0.35)", "fit C(0.35)"],
        &rows,
    );

    // (d) Bidding references: price of unit reduction at each reduction.
    let rows: Vec<Vec<String>> = reductions
        .iter()
        .map(|&r| {
            let mut row = vec![fmt(r, 1)];
            row.extend(
                profiles
                    .iter()
                    .map(|p| fmt(p.cost_model(1.0).unit_cost(r), 3)),
            );
            row
        })
        .collect();
    let headers: Vec<&str> = std::iter::once("reduction")
        .chain(profiles.iter().map(|p| p.name()))
        .collect();
    print_table(
        "Fig. 7(d): bidding references (break-even price per unit reduction)",
        &headers,
        &rows,
    );
}
