//! Extension (paper Section III-F, "Impact on the total cost of
//! ownership"): a first-order TCO comparison of oversubscription + MPR
//! against buying more power infrastructure.
//!
//! Cost model: UPS-dominated power-infrastructure capex amortized per
//! month, a market electricity price, and MPR rewards valued at the
//! facility's effective core-hour rate.

use mpr_experiments::{arg_days, fmt, fmt_thousands, gaia_trace, print_table, run};
use mpr_sim::Algorithm;

/// Power-infrastructure capital cost, $ per watt (UPS-dominated; industry
/// figures run $10–25/W for Tier-III facilities).
const CAPEX_PER_W: f64 = 12.0;
/// Amortization period, months.
const AMORT_MONTHS: f64 = 120.0;
/// Electricity, $ per kWh.
const KWH_PRICE: f64 = 0.08;
/// Facility charge rate per core-hour, $ (typical academic HPC rate).
const CORE_HOUR_PRICE: f64 = 0.05;

fn main() {
    let days = arg_days(30.0);
    let trace = gaia_trace(days);
    let months = days / 30.0;
    println!(
        "Gaia, {days} days; capex ${CAPEX_PER_W}/W over {AMORT_MONTHS} months, \
         ${KWH_PRICE}/kWh, ${CORE_HOUR_PRICE}/core-hour"
    );

    let mut rows = Vec::new();
    for pct in [5.0, 10.0, 15.0, 20.0] {
        let r = run(&trace, Algorithm::MprStat, pct);
        // Capacity the manager did NOT have to build: the oversubscribed
        // watts beyond the infrastructure rating.
        let avoided_w = r.peak_watts - r.capacity_watts;
        let avoided_capex_month = avoided_w * CAPEX_PER_W / AMORT_MONTHS;
        // Extra energy from the reclaimed capacity actually being used.
        let extra_kwh = r.extra_capacity_core_hours * 150.0 / 1000.0; // 150 W/core-h
        let electricity_month = extra_kwh * KWH_PRICE / months;
        // Reward payout in dollars.
        let reward_month = r.reward_core_hours * CORE_HOUR_PRICE / months;
        // Value of the reclaimed compute.
        let gained_month = r.extra_capacity_core_hours * CORE_HOUR_PRICE / months;
        let net = gained_month + avoided_capex_month - electricity_month - reward_month;
        rows.push(vec![
            format!("{pct}%"),
            fmt_thousands(avoided_capex_month),
            fmt_thousands(gained_month),
            fmt_thousands(electricity_month),
            fmt_thousands(reward_month),
            fmt_thousands(net),
        ]);
    }
    print_table(
        "TCO impact of oversubscription + MPR ($/month)",
        &[
            "oversub",
            "avoided capex",
            "compute gained",
            "extra electricity",
            "MPR rewards",
            "net benefit",
        ],
        &rows,
    );
    println!(
        "\nRewards (valued at ${} per core-hour) are a rounding error next to the\n\
         avoided infrastructure and the reclaimed compute — the TCO story behind\n\
         Table I's payoff ratios.",
        fmt(CORE_HOUR_PRICE, 2)
    );
}
