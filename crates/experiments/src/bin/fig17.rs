//! Fig. 17: demonstration of MPR on the (emulated) prototype cluster —
//! 30-minute power timelines with and without MPR at a 400 W cap, and the
//! per-application resource reductions.

use mpr_experiments::{fmt, print_table};
use mpr_proto::{Experiment, ExperimentConfig};

fn main() {
    let without = Experiment::new(ExperimentConfig {
        with_mpr: false,
        ..ExperimentConfig::default()
    })
    .run();
    let with = Experiment::new(ExperimentConfig::default()).run();

    // (a) Power timeline, one row per minute.
    let rows: Vec<Vec<String>> = (0..30)
        .map(|min| {
            let idx = min * 60;
            let w0 = without.samples[idx].power_watts;
            let w1 = with.samples[idx].power_watts;
            vec![min.to_string(), fmt(w0, 1), fmt(w1, 1)]
        })
        .collect();
    print_table(
        "Fig. 17(a): prototype power (W), cap = 400 W",
        &["minute", "without MPR", "with MPR"],
        &rows,
    );
    println!(
        "mean power: without MPR {:.1} W, with MPR {:.1} W (reduction {:.1} W)",
        without.mean_power_watts(),
        with.mean_power_watts(),
        without.mean_power_watts() - with.mean_power_watts()
    );
    println!(
        "overload fraction: without {:.1}%, with {:.1}%; emergencies declared: {}",
        100.0 * without.overload_fraction,
        100.0 * with.overload_fraction,
        with.emergencies
    );

    // (b) Per-application reductions.
    let rows: Vec<Vec<String>> = with
        .apps
        .iter()
        .map(|a| {
            vec![
                a.name.clone(),
                fmt(a.avg_reduction_cores, 2),
                fmt(a.avg_freq_ghz, 2),
                fmt(a.reward, 3),
            ]
        })
        .collect();
    print_table(
        "Fig. 17(b): per-application outcomes with MPR",
        &["app", "avg reduction (cores)", "avg freq (GHz)", "reward"],
        &rows,
    );
}
