//! Extension (robustness): sensor-fault-tolerant telemetry and crash-safe
//! checkpointing.
//!
//! Real facility power meters drop samples, lag, drift and spike; the
//! paper's reactive loop implicitly assumes a perfect meter. This
//! experiment (1) sweeps sensor-fault severity and shows the robust
//! estimator keeping the emergency loop sound, (2) ablates the estimator
//! (raw pass-through vs median + EWMA + outlier gate) on a spiky sensor,
//! and (3) demonstrates the crash-safe checkpoint: a run killed
//! mid-simulation resumes to a bit-identical report.
//!
//! ```text
//! cargo run --release -p mpr-experiments --bin ext_telemetry -- --days 10
//! ```

use mpr_experiments::{arg_days, fmt, fmt_thousands, gaia_trace, print_table, run_with};
use mpr_power::telemetry::{EstimatorConfig, SensorFaultConfig};
use mpr_sim::{Algorithm, CheckpointPlan, RunOutcome, SimConfig, Simulation, TelemetryConfig};

fn main() {
    let days = arg_days(10.0);
    let trace = gaia_trace(days);
    println!("Gaia, {days} days, MPR-STAT at 15% oversubscription");

    // 1. Fault-severity sweep: the loop keeps working as the meter degrades.
    let severities: [(&str, SensorFaultConfig); 5] = [
        ("ideal", SensorFaultConfig::default()),
        (
            "mild",
            SensorFaultConfig {
                noise_sigma_frac: 0.01,
                dropout_prob: 0.05,
                ..SensorFaultConfig::default()
            },
        ),
        (
            "moderate",
            SensorFaultConfig {
                noise_sigma_frac: 0.02,
                dropout_prob: 0.2,
                spike_prob: 0.01,
                ..SensorFaultConfig::default()
            },
        ),
        (
            "severe",
            SensorFaultConfig {
                noise_sigma_frac: 0.05,
                dropout_prob: 0.4,
                spike_prob: 0.03,
                delay_polls: 1,
                ..SensorFaultConfig::default()
            },
        ),
        (
            "hostile",
            SensorFaultConfig {
                noise_sigma_frac: 0.08,
                dropout_prob: 0.6,
                spike_prob: 0.05,
                stuck_prob: 0.01,
                delay_polls: 2,
                ..SensorFaultConfig::default()
            },
        ),
    ];
    let mut rows = Vec::new();
    for (label, sensor) in severities {
        let mut cfg = SimConfig::new(Algorithm::MprStat, 15.0);
        if sensor.is_active() {
            cfg = cfg.with_telemetry(TelemetryConfig::with_faults(sensor));
        }
        let r = run_with(&trace, cfg);
        let h = r.telemetry.unwrap_or_default();
        rows.push(vec![
            label.to_owned(),
            fmt(r.overload_time_pct(), 2),
            r.overload_events.to_string(),
            r.unmet_emergencies.to_string(),
            fmt_thousands(r.cost_core_hours),
            h.samples_missed.to_string(),
            h.outliers_rejected.to_string(),
            h.stale_polls.to_string(),
        ]);
    }
    print_table(
        "Sensor-fault severity sweep (robust estimator in the loop)",
        &[
            "sensor",
            "overload time %",
            "emergencies",
            "unmet",
            "cost (c-h)",
            "missed",
            "outliers",
            "stale",
        ],
        &rows,
    );

    // 2. Ablation: raw feed vs robust estimator on a spiky meter.
    let spiky = SensorFaultConfig {
        spike_prob: 0.05,
        ..SensorFaultConfig::default()
    };
    let mut rows = Vec::new();
    for (label, estimator) in [
        ("raw pass-through", EstimatorConfig::passthrough()),
        ("robust (median+EWMA)", EstimatorConfig::default()),
    ] {
        let r = run_with(
            &trace,
            SimConfig::new(Algorithm::MprStat, 5.0).with_telemetry(TelemetryConfig {
                sensor: spiky,
                estimator,
            }),
        );
        let h = r.telemetry.unwrap_or_default();
        rows.push(vec![
            label.to_owned(),
            r.overload_events.to_string(),
            fmt(r.overload_time_pct(), 2),
            fmt_thousands(r.cost_core_hours),
            h.outliers_rejected.to_string(),
        ]);
    }
    print_table(
        "Estimator ablation on a spiky sensor (5% spikes, 5% oversubscription)",
        &[
            "estimator",
            "emergencies",
            "overload time %",
            "cost (c-h)",
            "outliers rejected",
        ],
        &rows,
    );

    // 3. Crash-safety demo: kill mid-run, resume, compare bit-for-bit.
    let cfg = SimConfig::new(Algorithm::MprStat, 15.0).with_telemetry(
        TelemetryConfig::with_faults(SensorFaultConfig {
            noise_sigma_frac: 0.02,
            dropout_prob: 0.2,
            ..SensorFaultConfig::default()
        }),
    );
    let full = Simulation::new(&trace, cfg.clone()).run();
    let path = std::env::temp_dir().join(format!("mpr_ext_telemetry_{}.ckpt", std::process::id()));
    let sim = Simulation::new(&trace, cfg);
    let kill_at = full.total_slots / 2;
    let plan = CheckpointPlan::every(&path, 500).with_kill_at(kill_at);
    let outcome = sim.run_with_checkpoints(&plan).expect("checkpointed run");
    let killed_at = match outcome {
        RunOutcome::Killed { at_slot, .. } => at_slot,
        RunOutcome::Completed(_) => unreachable!("kill point inside the horizon"),
    };
    let resumed = sim.resume(&path).expect("resume");
    println!(
        "\nCrash-safety: killed at slot {killed_at}/{}, resumed from `{}` — \
         report identical to the uninterrupted run: {}",
        full.total_slots,
        path.display(),
        resumed == full
    );
    assert_eq!(resumed, full, "resume must be bit-identical");
    let _ = std::fs::remove_file(&path);

    println!(
        "\nThe reactive loop needs no perfect meter: median + EWMA + outlier\n\
         rejection keeps emergencies real under noise, dropout and spikes, and\n\
         the checkpointed engine makes month-long runs crash-safe."
    );
}
