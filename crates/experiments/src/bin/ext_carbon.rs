//! Extension (paper Section I, merit ④): carbon-aware capacity derating —
//! "cutting carbon emissions by doing less work with dirty power".
//!
//! When the grid's carbon intensity exceeds its dirty threshold (evening
//! ramp), the usable capacity is derated by 10 %; the MPR market sources
//! the reduction. We account emissions with and without the policy.

use std::sync::Arc;

use mpr_experiments::{arg_days, fmt, print_table, run_with};
use mpr_grid::{CarbonAccountant, CarbonCap, CarbonIntensitySignal};
use mpr_sim::{Algorithm, SimConfig, Simulation};

fn main() {
    let days = arg_days(30.0);
    let trace = mpr_experiments::gaia_trace(days);
    let probe = Simulation::new(&trace, SimConfig::new(Algorithm::MprStat, 10.0));
    let peak = probe.reference_peak_watts();
    let base_capacity = peak * (100.0 / 110.0);
    let signal = CarbonIntensitySignal::typical();
    let accountant = CarbonAccountant::new(signal);
    println!(
        "Gaia, {days} days; grid signal: {:.0} gCO2/kWh daily mean, dirty above {:.0}",
        signal.daily_mean(),
        signal.dirty_threshold()
    );

    let mut rows = Vec::new();
    for derate in [0.0, 0.05, 0.10, 0.20] {
        let cfg = if derate == 0.0 {
            SimConfig::new(Algorithm::MprStat, 10.0).with_timeline()
        } else {
            let policy = Arc::new(CarbonCap::new(
                base_capacity,
                signal,
                signal.dirty_threshold(),
                derate,
            ));
            SimConfig::new(Algorithm::MprStat, 10.0)
                .with_capacity_policy(policy)
                .with_timeline()
        };
        let r = run_with(&trace, cfg);
        let tl = r.timeline.as_ref().expect("timeline enabled");
        let emitted = accountant.emissions_kg(0.0, tl.slot_secs, &tl.power_w);
        let avoided = accountant.avoided_kg(0.0, tl.slot_secs, &tl.reduction_w);
        rows.push(vec![
            format!("{}%", fmt(derate * 100.0, 0)),
            fmt(emitted / 1000.0, 2),
            fmt(avoided / 1000.0, 3),
            fmt(r.cost_core_hours, 0),
            fmt(r.reward_core_hours, 0),
            r.overload_events.to_string(),
        ]);
    }
    print_table(
        "Carbon-aware derating through MPR (MPR-STAT, 10% oversubscription)",
        &[
            "dirty-hour derate",
            "emitted (tCO2)",
            "avoided (tCO2)",
            "cost (c-h)",
            "reward (c-h)",
            "emergencies",
        ],
        &rows,
    );
    println!(
        "\nDeeper dirty-hour derates avoid more carbon; the users who slow down\n\
         are paid through the same market, in proportion to their bids."
    );
}
