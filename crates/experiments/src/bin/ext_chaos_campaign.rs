//! Extension (robustness): the chaos campaign as an experiment.
//!
//! Randomized fault-plan fuzzing over the whole scenario space —
//! algorithm × oversubscription × agent faults × lossy transport ×
//! faulty sensors × misreported costs — with every run checked against
//! the safety-invariant oracle registry. Two tables:
//!
//! 1. A bounded healthy campaign: per-algorithm run counts, overload
//!    exposure and oracle verdicts (all must pass).
//! 2. An ablation with the emergency FSM disabled: the power-cap oracle
//!    must catch it, and delta-debugging shrinks each counterexample to
//!    a minimal scenario, printed with its exact repro command.
//!
//! ```text
//! cargo run --release -p mpr-experiments --bin ext_chaos_campaign -- --days 0.5
//! ```

use std::collections::BTreeMap;

use mpr_chaos::{registry, run, CampaignConfig};
use mpr_experiments::{arg_days, fmt, print_table};

fn main() {
    let days = arg_days(0.5);
    let seed = 42;

    println!("Chaos campaign: gaia, {days} day(s) per run, seed {seed}");
    println!("Oracles:");
    for o in registry() {
        println!("  {:<12} {}", o.name, o.description);
    }

    // 1. Healthy system: the full generator space, no planted defect.
    let cc = CampaignConfig {
        runs: 40,
        seed,
        days,
        ..CampaignConfig::default()
    };
    let report = run(&cc).expect("campaign artifacts are disabled");
    let mut by_algo: BTreeMap<String, (usize, usize, usize, usize)> = BTreeMap::new();
    for r in &report.records {
        let e = by_algo.entry(r.scenario.algorithm.to_string()).or_default();
        e.0 += 1;
        e.1 += r.overload_events;
        e.2 += r.overload_slots;
        e.3 += r.violations.len();
    }
    let rows: Vec<Vec<String>> = by_algo
        .iter()
        .map(|(algo, &(runs, events, slots, viol))| {
            vec![
                algo.clone(),
                runs.to_string(),
                events.to_string(),
                slots.to_string(),
                viol.to_string(),
            ]
        })
        .collect();
    print_table(
        "Healthy campaign (all oracles must pass)",
        &[
            "algorithm",
            "runs",
            "overload events",
            "overload slots",
            "violations",
        ],
        &rows,
    );
    println!("verdict: {}", if report.passed() { "PASS" } else { "FAIL" });

    // 2. Planted defect: disable the emergency FSM and let the oracle
    //    registry find it, then shrink to minimal counterexamples.
    let ablated = CampaignConfig {
        runs: 6,
        emergency_disabled: true,
        ..cc
    };
    let broken = run(&ablated).expect("campaign artifacts are disabled");
    let rows: Vec<Vec<String>> = broken
        .failures
        .iter()
        .map(|f| {
            vec![
                f.index.to_string(),
                f.oracle.clone(),
                f.original.complexity().to_string(),
                f.shrunk.complexity().to_string(),
                f.shrink_steps.len().to_string(),
                f.probes.to_string(),
            ]
        })
        .collect();
    print_table(
        "Disabled-FSM ablation (power-cap oracle must fire)",
        &["run", "oracle", "complexity", "shrunk", "steps", "probes"],
        &rows,
    );
    for f in &broken.failures {
        println!("  run {:>3}: {}", f.index, f.shrunk.describe());
    }
    let caught = !broken.passed();
    println!(
        "ablation caught: {} ({} violation(s) in {} of {} runs, {} shrink probe(s))",
        if caught { "yes" } else { "NO (BUG)" },
        broken.violation_count(),
        broken.failures.len(),
        ablated.runs,
        fmt(broken.failures.iter().map(|f| f.probes as f64).sum(), 0),
    );
}
