//! Table I: capacity-oversubscription analysis of the Gaia cluster.
//!
//! For each oversubscription level: the extra core-hours gained per month,
//! the probability of overload, the overload hours per month, the
//! overloaded capacity (core-hours that must be cut back) and the maximum
//! payoff the manager could afford per core-hour of user cutback.

use mpr_experiments::{arg_days, fmt, fmt_thousands, gaia_trace, print_table};
use mpr_power::{Oversubscription, PowerModel};

fn main() {
    let days = arg_days(92.0);
    let trace = gaia_trace(days);
    let model = PowerModel::paper();
    let slot_secs = 60.0;
    let series = trace.allocation_series(slot_secs);
    let per_core_w = model.static_w_per_core() + model.dynamic_w_per_core();
    let peak_w = series.peak() * per_core_w;
    let months = days / 30.0;
    let hours_per_month = 730.0;

    let mut rows = Vec::new();
    for os in Oversubscription::table1_levels() {
        let x = os.as_percent();
        let capacity_w = os.capacity(mpr_core::Watts::new(peak_w)).get();
        let extra_ch = os
            .extra_core_hours(f64::from(trace.total_cores()), hours_per_month)
            .get();

        let mut overload_slots = 0usize;
        let mut overloaded_core_hours = 0.0f64;
        for &alloc in series.values() {
            let p = alloc * per_core_w;
            if p > capacity_w {
                overload_slots += 1;
                overloaded_core_hours += (p - capacity_w) / per_core_w * slot_secs / 3600.0;
            }
        }
        let prob = 100.0 * overload_slots as f64 / series.values().len() as f64;
        let overload_hours = overload_slots as f64 * slot_secs / 3600.0 / months;
        let overloaded_ch_month = overloaded_core_hours / months;
        let payoff = if overloaded_ch_month > 0.0 {
            extra_ch / overloaded_ch_month
        } else {
            f64::INFINITY
        };
        rows.push(vec![
            format!("{x}%"),
            fmt_thousands(extra_ch),
            fmt(prob, 2),
            fmt(overload_hours, 1),
            fmt_thousands(overloaded_ch_month),
            format!("{}x", fmt(payoff, 0)),
        ]);
    }
    println!(
        "Gaia, {days} days, peak power {:.1} kW, {} jobs",
        peak_w / 1000.0,
        trace.len()
    );
    print_table(
        "Table I: capacity oversubscription in Gaia",
        &[
            "Oversubscription",
            "Extra capacity (core-h/month)",
            "P(overload) %",
            "Overload time (h/month)",
            "Overloaded capacity (core-h/month)",
            "Max payoff",
        ],
        &rows,
    );
}
