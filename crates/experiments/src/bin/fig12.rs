//! Fig. 12: impact of user participation on MPR at 15 % oversubscription —
//! performance cost and reward payoff at 100/75/50 % participation.

use mpr_experiments::{arg_days, fmt, fmt_thousands, gaia_trace, print_table, run_with};
use mpr_sim::{Algorithm, SimConfig};

fn main() {
    let days = arg_days(90.0);
    let trace = gaia_trace(days);
    println!("Gaia, {days} days, 15% oversubscription");

    let participations = [1.0, 0.75, 0.5];
    let mut cost_rows = Vec::new();
    let mut reward_rows = Vec::new();
    for alg in [Algorithm::MprStat, Algorithm::MprInt] {
        let mut cr = vec![alg.to_string()];
        let mut rr = vec![alg.to_string()];
        for &p in &participations {
            let r = run_with(&trace, SimConfig::new(alg, 15.0).with_participation(p));
            cr.push(fmt_thousands(r.cost_core_hours));
            rr.push(format!(
                "{} ({}x gain)",
                fmt_thousands(r.reward_core_hours),
                r.gain_over_reward()
                    .map_or_else(|| "-".into(), |v| fmt(v, 0))
            ));
        }
        cost_rows.push(cr);
        reward_rows.push(rr);
    }
    let headers = ["algorithm", "100%", "75%", "50%"];
    print_table(
        "Fig. 12(a): performance cost vs participation (core-hours)",
        &headers,
        &cost_rows,
    );
    print_table(
        "Fig. 12(b): reward payoff vs participation (core-hours, with gain ratio)",
        &headers,
        &reward_rows,
    );
}
