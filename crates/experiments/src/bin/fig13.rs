//! Fig. 13: impact of errors in the users' performance-cost models.
//!
//! (a) zero-mean random estimation errors up to ±30 % barely change the
//! realized performance cost; (b) even with systematic underestimation,
//! users retain a net gain (reward above cost).

use mpr_experiments::{arg_days, fmt, fmt_thousands, gaia_trace, print_table, run_with};
use mpr_sim::{Algorithm, CostNoise, SimConfig};

fn main() {
    let days = arg_days(90.0);
    let trace = gaia_trace(days);
    println!("Gaia, {days} days, 15% oversubscription");

    let magnitudes = [0.0, 0.1, 0.2, 0.3];
    let mut rows = Vec::new();
    for alg in [Algorithm::MprStat, Algorithm::MprInt] {
        let mut row = vec![alg.to_string()];
        for &m in &magnitudes {
            let noise = if m == 0.0 {
                CostNoise::None
            } else {
                CostNoise::Random { magnitude: m }
            };
            let r = run_with(&trace, SimConfig::new(alg, 15.0).with_cost_noise(noise));
            row.push(fmt_thousands(r.cost_core_hours));
        }
        rows.push(row);
    }
    print_table(
        "Fig. 13(a): realized performance cost under random estimation error (core-hours)",
        &["algorithm", "0%", "10%", "20%", "30%"],
        &rows,
    );

    let mut rows = Vec::new();
    for alg in [Algorithm::MprStat, Algorithm::MprInt] {
        let mut row = vec![alg.to_string()];
        for &u in &magnitudes {
            let noise = if u == 0.0 {
                CostNoise::None
            } else {
                CostNoise::Underestimate { fraction: u }
            };
            let r = run_with(&trace, SimConfig::new(alg, 15.0).with_cost_noise(noise));
            row.push(
                r.reward_pct_of_cost()
                    .map_or_else(|| "n/a".into(), |v| format!("{}%", fmt(v, 0))),
            );
        }
        rows.push(row);
    }
    print_table(
        "Fig. 13(b): reward as % of cost under systematic underestimation",
        &["algorithm", "0%", "10%", "20%", "30%"],
        &rows,
    );
}
