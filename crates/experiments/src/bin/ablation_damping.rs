//! Ablation: MPR-INT price-update damping.
//!
//! `q_{k+1} = (1−γ)q_k + γ·q_solved`. The undamped exchange (γ = 1) is the
//! paper's protocol; smaller γ trades rounds for stability under
//! ill-conditioned (e.g. near-concave) cost models. The game clears a
//! shared [`MarketInstance`] through the [`Mechanism`] trait.

use std::sync::Arc;

use mpr_apps::cpu_profiles;
use mpr_core::{
    CostModel, InteractiveConfig, InteractiveMechanism, MarketInstance, Mechanism, ParticipantSpec,
    ScaledCost, Watts,
};
use mpr_experiments::{fmt, print_table};

fn main() {
    let profiles = cpu_profiles();
    let w = 125.0;
    let make_instance = |n: usize| -> MarketInstance {
        (0..n)
            .map(|i| {
                let p = &profiles[i % profiles.len()];
                let cores = f64::from(1u32 << (i % 6));
                let cost = ScaledCost::new(p.cost_model(1.0), cores);
                ParticipantSpec::new(i as u64, cost.delta_max(), Watts::new(w))
                    .with_cost(Arc::new(cost))
            })
            .collect()
    };

    let mut rows = Vec::new();
    for gamma in [1.0, 0.75, 0.5, 0.25, 0.1] {
        let mut row = vec![fmt(gamma, 2)];
        for n in [10usize, 100, 1000] {
            let instance = make_instance(n);
            let attainable = instance.attainable_watts().get();
            let mut mech = InteractiveMechanism::strict(InteractiveConfig {
                damping: gamma,
                max_iterations: 500,
                ..InteractiveConfig::default()
            });
            row.push(match mech.clear(&instance, Watts::new(0.3 * attainable)) {
                Ok(out) => format!(
                    "{}{}",
                    out.iterations(),
                    if out.diagnostics().converged { "" } else { "*" }
                ),
                // The undamped exchange may end in a price limit cycle,
                // surfaced as a typed error rather than a bogus cap-time
                // clearing.
                Err(mpr_core::MechanismError::NonConvergent { rounds, .. }) => {
                    format!("{rounds}~")
                }
                Err(e) => panic!("feasible target failed: {e}"),
            });
        }
        rows.push(row);
    }
    print_table(
        "Ablation: MPR-INT damping γ vs iterations to converge (* = hit cap, ~ = oscillating)",
        &["damping", "10 jobs", "100 jobs", "1000 jobs"],
        &rows,
    );
}
