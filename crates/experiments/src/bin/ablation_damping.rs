//! Ablation: MPR-INT price-update damping.
//!
//! `q_{k+1} = (1−γ)q_k + γ·q_solved`. The undamped exchange (γ = 1) is the
//! paper's protocol; smaller γ trades rounds for stability under
//! ill-conditioned (e.g. near-concave) cost models.

use mpr_apps::cpu_profiles;
use mpr_core::{
    BiddingAgent, InteractiveConfig, InteractiveMarket, NetGainAgent, ScaledCost, Watts,
};
use mpr_experiments::{fmt, print_table};

fn main() {
    let profiles = cpu_profiles();
    let w = 125.0;
    let make_agents = |n: usize| -> Vec<Box<dyn BiddingAgent>> {
        (0..n)
            .map(|i| {
                let p = &profiles[i % profiles.len()];
                let cores = f64::from(1u32 << (i % 6));
                Box::new(NetGainAgent::new(
                    i as u64,
                    ScaledCost::new(p.cost_model(1.0), cores),
                    Watts::new(w),
                )) as _
            })
            .collect()
    };

    let mut rows = Vec::new();
    for gamma in [1.0, 0.75, 0.5, 0.25, 0.1] {
        let mut row = vec![fmt(gamma, 2)];
        for n in [10usize, 100, 1000] {
            let agents = make_agents(n);
            let attainable: f64 = agents.iter().map(|a| a.delta_max() * w).sum();
            let mut market = InteractiveMarket::new(
                agents,
                InteractiveConfig {
                    damping: gamma,
                    max_iterations: 500,
                    ..InteractiveConfig::default()
                },
            );
            let out = market
                .clear(Watts::new(0.3 * attainable))
                .expect("feasible");
            row.push(format!(
                "{}{}",
                out.clearing.iterations(),
                if out.converged { "" } else { "*" }
            ));
        }
        rows.push(row);
    }
    print_table(
        "Ablation: MPR-INT damping γ vs iterations to converge (* = hit cap)",
        &["damping", "10 jobs", "100 jobs", "1000 jobs"],
        &rows,
    );
}
