//! Extension (paper Section III-C): heterogeneous perceived cost.
//!
//! "The notion of cost enables HPC users to integrate their own relative
//! importance of different jobs" — `α` lets a user surcharge its true
//! performance impact. This sweep draws per-job `α` from widening ranges
//! and shows the market respecting it: high-α users shed less and the
//! clearing price (hence total payout) rises.

use mpr_experiments::{arg_days, fmt, fmt_thousands, gaia_trace, print_table, run_with};
use mpr_sim::{Algorithm, SimConfig};

fn main() {
    let days = arg_days(30.0);
    let trace = gaia_trace(days);
    println!("Gaia, {days} days, MPR-STAT at 15% oversubscription, base α = 1");

    let mut rows = Vec::new();
    for spread in [0.0, 1.0, 3.0] {
        let r = run_with(
            &trace,
            SimConfig::new(Algorithm::MprStat, 15.0).with_alpha_spread(spread),
        );
        rows.push(vec![
            format!("α ∈ [1, {}]", 1.0 + spread),
            fmt_thousands(r.reduction_core_hours),
            fmt_thousands(r.cost_core_hours),
            fmt_thousands(r.reward_core_hours),
            r.reward_pct_of_cost()
                .map_or_else(|| "n/a".into(), |v| format!("{}%", fmt(v, 0))),
        ]);
    }
    print_table(
        "Heterogeneous perceived cost (per-job α drawn uniformly)",
        &[
            "alpha range",
            "reduction (c-h)",
            "perceived cost (c-h)",
            "reward (c-h)",
            "reward/cost",
        ],
        &rows,
    );
    println!(
        "\nUsers who value performance more bid higher and shed less; the manager\n\
         pays a higher clearing price to respect those preferences — exactly the\n\
         user-in-the-loop property no scheduler-side policy can express."
    );
}
