//! Extension (paper Section III-A): multiple parallel power
//! infrastructures, each with its own UPS, capacity `C_i` and market.
//!
//! Splitting one facility into `k` power domains of `C/k` each loses
//! statistical multiplexing: the same workload overloads smaller domains
//! more often, so overload time, cost and payout all rise with `k` at a
//! fixed oversubscription level.

use mpr_experiments::{arg_days, fmt, fmt_thousands, gaia_trace, print_table};
use mpr_sim::{Algorithm, PartitionPolicy, PartitionedSimulation, SimConfig};

fn main() {
    let days = arg_days(30.0);
    let trace = gaia_trace(days);
    println!("Gaia, {days} days, MPR-STAT at 15% oversubscription, width-balanced partitioning");

    let mut rows = Vec::new();
    for k in [1usize, 2, 4, 8] {
        let sim = PartitionedSimulation::new(
            &trace,
            SimConfig::new(Algorithm::MprStat, 15.0),
            k,
            PartitionPolicy::WidthBalanced,
        );
        let r = sim.run();
        rows.push(vec![
            k.to_string(),
            fmt(r.overload_time_pct(), 2),
            r.overload_events().to_string(),
            fmt_thousands(r.reduction_core_hours().get()),
            fmt_thousands(r.cost_core_hours().get()),
            fmt_thousands(r.reward_core_hours().get()),
        ]);
    }
    print_table(
        "Multi-UPS partitioning: k parallel domains of C/k each",
        &[
            "partitions",
            "overload time %",
            "emergencies",
            "reduction (c-h)",
            "cost (c-h)",
            "reward (c-h)",
        ],
        &rows,
    );
    println!(
        "\nFiner power domains lose statistical multiplexing — a facility planning\n\
         per-UPS oversubscription should budget for more frequent (local) markets."
    );
}
