//! Companion figure: the Gaia cluster's power, capacity and clearing price
//! over two days around an overload episode — the at-scale analogue of the
//! prototype's Fig. 17(a) timeline.

use mpr_experiments::{arg_days, fmt, gaia_trace, print_table, run_with};
use mpr_sim::{Algorithm, SimConfig};

fn main() {
    let days = arg_days(7.0);
    let trace = gaia_trace(days);
    let r = run_with(
        &trace,
        SimConfig::new(Algorithm::MprStat, 15.0).with_timeline(),
    );
    let tl = r.timeline.as_ref().expect("timeline enabled");

    // Find the first overload episode and print a window around it.
    let first_over = tl
        .demand_w
        .iter()
        .zip(&tl.capacity_w)
        .position(|(d, c)| d > c)
        .unwrap_or(0);
    let start = first_over.saturating_sub(30);
    let end = (first_over + 120).min(tl.power_w.len());
    let rows: Vec<Vec<String>> = (start..end)
        .step_by(5)
        .map(|i| {
            vec![
                fmt(i as f64 * tl.slot_secs / 60.0, 0),
                fmt(tl.demand_w[i] / 1000.0, 1),
                fmt(tl.power_w[i] / 1000.0, 1),
                fmt(tl.capacity_w[i] / 1000.0, 1),
                fmt(tl.reduction_w[i] / 1000.0, 1),
                fmt(tl.price[i], 3),
            ]
        })
        .collect();
    print_table(
        "Power timeline around the first overload (Gaia, MPR-STAT, 15%)",
        &[
            "minute",
            "demand kW",
            "power kW",
            "capacity kW",
            "reduction kW",
            "price q'",
        ],
        &rows,
    );
    println!(
        "\n{} overload events over {days} days; power never sits above capacity for more than a slot",
        r.overload_events
    );
}
