//! Fig. 4: user bidding strategies for market participation (XSBench).
//!
//! (a) MPR-STAT static strategies: cooperative, conservative, deficient —
//! supply curves against the reference-cost curve, plus the net gain each
//! realizes across the price range.
//! (b) MPR-INT: the net-gain-maximizing best response at three prices.

use mpr_apps::{profile_by_name, reference};
use mpr_core::bidding::{best_response, net_gain, StaticStrategy};
use mpr_core::Price;
use mpr_experiments::{fmt, print_table};

fn main() {
    let xs = profile_by_name("XSBench").expect("catalog app");
    let cost = xs.cost_model(1.0);

    let coop = StaticStrategy::Cooperative.supply_for(&cost).unwrap();
    let cons = StaticStrategy::Conservative { factor: 1.5 }
        .supply_for(&cost)
        .unwrap();
    let defi = StaticStrategy::Deficient { factor: 0.4 }
        .supply_for(&cost)
        .unwrap();
    println!(
        "bids: cooperative b = {:.4}, conservative b = {:.4}, deficient b = {:.4}",
        coop.bid(),
        cons.bid(),
        defi.bid()
    );

    let refs = reference::bidding_reference(&cost, 64);
    let ref_at = |q: f64| -> f64 {
        refs.iter()
            .rev()
            .find(|p| p.price <= q)
            .map_or(0.0, |p| p.reduction)
    };

    let rows: Vec<Vec<String>> = (1..=16)
        .map(|i| {
            let q = 0.125 * f64::from(i);
            vec![
                fmt(q, 3),
                fmt(ref_at(q), 3),
                fmt(coop.supply(Price::new(q)), 3),
                fmt(cons.supply(Price::new(q)), 3),
                fmt(defi.supply(Price::new(q)), 3),
                fmt(net_gain(&cost, &coop, Price::new(q)), 3),
                fmt(net_gain(&cost, &defi, Price::new(q)), 3),
            ]
        })
        .collect();
    print_table(
        "Fig. 4(a): static bidding strategies (XSBench, reduction supplied at price q)",
        &[
            "price q",
            "reference",
            "cooperative",
            "conservative",
            "deficient",
            "coop gain",
            "defic gain",
        ],
        &rows,
    );

    let rows: Vec<Vec<String>> = [0.8, 1.2, 1.8]
        .iter()
        .map(|&q| {
            let r = best_response(&cost, Price::new(q)).unwrap();
            vec![
                fmt(q, 2),
                fmt(r.delta, 3),
                fmt(r.bid, 4),
                fmt(r.net_gain, 4),
            ]
        })
        .collect();
    print_table(
        "Fig. 4(b): MPR-INT best response at announced prices",
        &["price q'", "delta*", "bid b", "net gain"],
        &rows,
    );
}
