//! Fig. 10: solution-time scalability of OPT, EQL, MPR-STAT and MPR-INT
//! with a growing number of active jobs, plus MPR-INT's iteration count.
//!
//! MPR-INT's reported time includes the paper's 500 ms communication delay
//! per bidding round (the computation itself is microseconds per round).

use std::sync::Arc;
use std::time::Instant;

use mpr_apps::{cpu_profiles, AppProfile, ProfileCost};
use mpr_core::bidding::StaticStrategy;
use mpr_core::{
    eql, opt, BiddingAgent, CostModel, InteractiveConfig, InteractiveMarket, NetGainAgent,
    Participant, ScaledCost, StaticMarket, Watts,
};
use mpr_experiments::{fmt, print_table};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

struct BenchJob {
    cores: f64,
    profile: Arc<AppProfile>,
    cost: ScaledCost<ProfileCost>,
    supply: mpr_core::SupplyFunction,
}

fn make_jobs(n: usize) -> Vec<BenchJob> {
    let profiles = cpu_profiles();
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    (0..n)
        .map(|_| {
            let p = Arc::clone(&profiles[rng.gen_range(0..profiles.len())]);
            let cores = f64::from(2u32.pow(rng.gen_range(0..6)));
            let cost = ScaledCost::new(p.cost_model(1.0), cores);
            let supply = StaticStrategy::Cooperative
                .supply_for(&cost)
                .expect("valid cooperative bid");
            BenchJob {
                cores,
                profile: p,
                cost,
                supply,
            }
        })
        .collect()
}

fn main() {
    let sizes = [10usize, 100, 1000, 10_000, 30_000];
    let comm_delay_secs = 0.5;
    let mut rows = Vec::new();
    let mut iter_rows = Vec::new();
    for &n in &sizes {
        let jobs = make_jobs(n);
        let attainable: f64 = jobs
            .iter()
            .map(|j| j.cost.delta_max() * j.profile.unit_dynamic_power_w())
            .sum();
        let target = Watts::new(0.3 * attainable);

        // MPR-STAT: one market clearing.
        let participants: Vec<Participant> = jobs
            .iter()
            .enumerate()
            .map(|(i, j)| {
                Participant::new(
                    i as u64,
                    j.supply,
                    Watts::new(j.profile.unit_dynamic_power_w()),
                )
            })
            .collect();
        let market = StaticMarket::new(participants);
        let t0 = Instant::now();
        let clearing = market.clear(target).expect("feasible");
        let stat_secs = t0.elapsed().as_secs_f64();
        assert!(clearing.met_target());

        // EQL: uniform fraction + bookkeeping.
        let eql_jobs: Vec<eql::EqlJob> = jobs
            .iter()
            .enumerate()
            .map(|(i, j)| eql::EqlJob {
                id: i as u64,
                cores: j.cores,
                delta_max: j.cost.delta_max(),
                watts_per_unit: j.profile.unit_dynamic_power_w(),
            })
            .collect();
        let t0 = Instant::now();
        let _ = eql::reduce(&eql_jobs, target).expect("feasible");
        let eql_secs = t0.elapsed().as_secs_f64();

        // OPT: centralized separable NLP.
        let opt_jobs: Vec<opt::OptJob<'_>> = jobs
            .iter()
            .enumerate()
            .map(|(i, j)| {
                opt::OptJob::new(
                    i as u64,
                    &j.cost,
                    Watts::new(j.profile.unit_dynamic_power_w()),
                )
            })
            .collect();
        let t0 = Instant::now();
        let _ = opt::solve(&opt_jobs, target, opt::OptMethod::Auto).expect("feasible");
        let opt_secs = t0.elapsed().as_secs_f64();

        // MPR-INT: iterative exchange (+500 ms per round).
        let agents: Vec<Box<dyn BiddingAgent>> = jobs
            .iter()
            .enumerate()
            .map(|(i, j)| {
                Box::new(NetGainAgent::new(
                    i as u64,
                    j.cost.clone(),
                    Watts::new(j.profile.unit_dynamic_power_w()),
                )) as Box<dyn BiddingAgent>
            })
            .collect();
        let mut imarket = InteractiveMarket::new(agents, InteractiveConfig::default());
        let t0 = Instant::now();
        let outcome = imarket.clear(target).expect("feasible");
        let int_compute = t0.elapsed().as_secs_f64();
        let iters = outcome.clearing.iterations();
        let int_secs = int_compute + comm_delay_secs * iters as f64;

        rows.push(vec![
            n.to_string(),
            fmt(opt_secs * 1000.0, 2),
            fmt(eql_secs * 1000.0, 3),
            fmt(stat_secs * 1000.0, 3),
            fmt(int_secs, 2),
        ]);
        iter_rows.push(vec![n.to_string(), iters.to_string()]);
    }
    print_table(
        "Fig. 10(a): solution time (OPT/EQL/MPR-STAT in ms; MPR-INT in s incl. 500 ms/round comms)",
        &[
            "active jobs",
            "OPT (ms)",
            "EQL (ms)",
            "MPR-STAT (ms)",
            "MPR-INT (s)",
        ],
        &rows,
    );
    print_table(
        "Fig. 10(b): MPR-INT iterations to clear",
        &["active jobs", "iterations"],
        &iter_rows,
    );
}
