//! Fig. 10: solution-time scalability of OPT, EQL, MPR-STAT and MPR-INT
//! with a growing number of active jobs, plus MPR-INT's iteration count.
//!
//! All four schemes clear the *same* structure-of-arrays
//! [`MarketInstance`] through the unified [`Mechanism`] trait, so the
//! timings compare solvers, not data-marshalling styles.
//!
//! MPR-INT's reported time includes the paper's 500 ms communication delay
//! per bidding round (the computation itself is microseconds per round).

use std::sync::Arc;
use std::time::Instant;

use mpr_apps::{cpu_profiles, AppProfile, ProfileCost};
use mpr_core::bidding::StaticStrategy;
use mpr_core::{
    CostModel, EqlMechanism, InteractiveConfig, InteractiveMechanism, MarketInstance,
    MclrMechanism, Mechanism, OptMechanism, OptMethod, ParticipantSpec, ScaledCost, Watts,
};
use mpr_experiments::{fmt, print_table};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

struct BenchJob {
    cores: f64,
    profile: Arc<AppProfile>,
    cost: ScaledCost<ProfileCost>,
    supply: mpr_core::SupplyFunction,
}

fn make_jobs(n: usize) -> Vec<BenchJob> {
    let profiles = cpu_profiles();
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    (0..n)
        .map(|_| {
            let p = Arc::clone(&profiles[rng.gen_range(0..profiles.len())]);
            let cores = f64::from(2u32.pow(rng.gen_range(0..6)));
            let cost = ScaledCost::new(p.cost_model(1.0), cores);
            let supply = StaticStrategy::Cooperative
                .supply_for(&cost)
                .expect("valid cooperative bid");
            BenchJob {
                cores,
                profile: p,
                cost,
                supply,
            }
        })
        .collect()
}

fn make_instance(jobs: &[BenchJob]) -> MarketInstance {
    jobs.iter()
        .enumerate()
        .map(|(i, j)| {
            ParticipantSpec::new(
                i as u64,
                j.cost.delta_max(),
                Watts::new(j.profile.unit_dynamic_power_w()),
            )
            .with_bid(j.supply.bid())
            .with_cores(j.cores)
            .with_cost(Arc::new(j.cost.clone()))
        })
        .collect()
}

/// Clears `instance` once through the trait and returns (seconds, clearing).
fn timed(
    mut mech: impl Mechanism,
    instance: &MarketInstance,
    target: Watts,
) -> (f64, mpr_core::mechanism::Clearing) {
    let t0 = Instant::now();
    let clearing = mech.clear(instance, target).expect("feasible");
    (t0.elapsed().as_secs_f64(), clearing)
}

fn main() {
    let sizes = [10usize, 100, 1000, 10_000, 30_000];
    let comm_delay_secs = 0.5;
    let mut rows = Vec::new();
    let mut iter_rows = Vec::new();
    for &n in &sizes {
        let jobs = make_jobs(n);
        let instance = make_instance(&jobs);
        let attainable: f64 = jobs
            .iter()
            .map(|j| j.cost.delta_max() * j.profile.unit_dynamic_power_w())
            .sum();
        let target = Watts::new(0.3 * attainable);

        // MPR-STAT: one market clearing.
        let (stat_secs, clearing) = timed(MclrMechanism::strict(), &instance, target);
        assert!(clearing.met_target());

        // EQL: uniform fraction + bookkeeping.
        let (eql_secs, _) = timed(EqlMechanism, &instance, target);

        // OPT: centralized separable NLP.
        let (opt_secs, _) = timed(OptMechanism::strict(OptMethod::Auto), &instance, target);

        // MPR-INT: iterative exchange (+500 ms per round).
        let (int_compute, outcome) = timed(
            InteractiveMechanism::strict(InteractiveConfig::default()),
            &instance,
            target,
        );
        let iters = outcome.iterations();
        let int_secs = int_compute + comm_delay_secs * iters as f64;

        rows.push(vec![
            n.to_string(),
            fmt(opt_secs * 1000.0, 2),
            fmt(eql_secs * 1000.0, 3),
            fmt(stat_secs * 1000.0, 3),
            fmt(int_secs, 2),
        ]);
        iter_rows.push(vec![n.to_string(), iters.to_string()]);
    }
    print_table(
        "Fig. 10(a): solution time (OPT/EQL/MPR-STAT in ms; MPR-INT in s incl. 500 ms/round comms)",
        &[
            "active jobs",
            "OPT (ms)",
            "EQL (ms)",
            "MPR-STAT (ms)",
            "MPR-INT (s)",
        ],
        &rows,
    );
    print_table(
        "Fig. 10(b): MPR-INT iterations to clear",
        &["active jobs", "iterations"],
        &iter_rows,
    );
}
