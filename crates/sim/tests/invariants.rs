//! Property-based invariants of the simulation engine over randomized
//! small workloads.

use proptest::prelude::*;

use mpr_sim::{Algorithm, SimConfig, Simulation};
use mpr_workload::{Job, Trace};

/// A random compact trace: up to 40 jobs over two simulated hours.
fn arb_trace() -> impl Strategy<Value = Trace> {
    proptest::collection::vec(
        (
            0.0f64..7200.0,   // start
            300.0f64..7200.0, // runtime
            1u32..64,         // cores
        ),
        1..40,
    )
    .prop_map(|specs| {
        let jobs: Vec<Job> = specs
            .into_iter()
            .enumerate()
            .map(|(i, (start, runtime, cores))| Job::new(i as u64 + 1, start, runtime, cores))
            .collect();
        Trace::new("prop", 512, jobs)
    })
}

fn arb_algorithm() -> impl Strategy<Value = Algorithm> {
    prop_oneof![
        Just(Algorithm::Opt),
        Just(Algorithm::Eql),
        Just(Algorithm::MprStat),
        Just(Algorithm::MprInt),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every job completes, accounting is non-negative and internally
    /// consistent, for every algorithm and oversubscription level.
    #[test]
    fn engine_invariants(
        trace in arb_trace(),
        alg in arb_algorithm(),
        pct in 0.0f64..25.0,
        phases in 0.0f64..0.3,
    ) {
        let cfg = SimConfig::new(alg, pct).with_phases(phases);
        let r = Simulation::new(&trace, cfg).run();
        prop_assert_eq!(r.jobs_total, trace.len());
        prop_assert_eq!(r.jobs_completed, r.jobs_total, "every job must finish");
        prop_assert!(r.jobs_affected <= r.jobs_total);
        prop_assert!(r.overload_slots <= r.total_slots);
        prop_assert!(r.reduction_core_hours >= 0.0);
        prop_assert!(r.cost_core_hours >= 0.0);
        prop_assert!(r.reward_core_hours >= 0.0);
        prop_assert!(r.avg_runtime_increase_pct >= 0.0);
        // Per-profile sums reconcile with the totals.
        let red: f64 = r.per_profile.values().map(|s| s.reduction_core_hours).sum();
        prop_assert!((red - r.reduction_core_hours).abs() < 1e-6);
        // Non-market algorithms never pay.
        if !alg.is_market() {
            prop_assert_eq!(r.reward_core_hours, 0.0);
        }
        // Without oversubscription there are no overloads at all.
        if pct == 0.0 {
            prop_assert_eq!(r.overload_events, 0);
        }
    }

    /// The timeline, when recorded, reconciles with the scalar report.
    #[test]
    fn timeline_invariants(trace in arb_trace(), pct in 5.0f64..25.0) {
        let cfg = SimConfig::new(Algorithm::MprStat, pct).with_timeline();
        let r = Simulation::new(&trace, cfg).run();
        let tl = r.timeline.as_ref().expect("timeline recorded");
        prop_assert_eq!(tl.power_w.len(), r.total_slots);
        let over = tl
            .demand_w
            .iter()
            .zip(&tl.capacity_w)
            .filter(|(d, c)| d > c)
            .count();
        prop_assert_eq!(over, r.overload_slots);
        for ((p, d), red) in tl.power_w.iter().zip(&tl.demand_w).zip(&tl.reduction_w) {
            prop_assert!((p + red - d).abs() < 1e-6);
            prop_assert!(*red >= 0.0);
        }
    }
}
