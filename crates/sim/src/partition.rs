//! Partitioned (multi-UPS) simulation — the Section III-A extension.
//!
//! Large HPC data centers split their power infrastructure into multiple
//! parallel pieces, each with a dedicated UPS. The paper notes its model
//! "can be seamlessly extended to these data centers by considering
//! individual infrastructure capacity `C_i` and aggregate power consumption
//! `P_i(t)` for the i-th parallel power infrastructure". This module does
//! exactly that: jobs are assigned to partitions, each partition runs its
//! own emergency controller and market over its own capacity, and the
//! reports aggregate.
//!
//! Partitioning trades away statistical multiplexing: the same workload on
//! more, smaller UPSes overloads more often at the same oversubscription
//! level — the `ext_partitions` experiment quantifies it.

use mpr_core::CoreHours;
use mpr_workload::Trace;

use crate::config::SimConfig;
use crate::engine::Simulation;
use crate::report::SimReport;

/// How jobs are mapped to power partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionPolicy {
    /// Deterministic round-robin by job order — spreads load evenly.
    RoundRobin,
    /// Jobs sorted by width, dealt round-robin — balances core demand when
    /// widths are heavy-tailed.
    WidthBalanced,
}

/// A multi-UPS simulation: `partitions` independent power domains.
pub struct PartitionedSimulation<'a> {
    trace: &'a Trace,
    config: SimConfig,
    partitions: usize,
    policy: PartitionPolicy,
}

/// Aggregated results of a partitioned run.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionedReport {
    /// Per-partition reports, in partition order.
    pub partitions: Vec<SimReport>,
}

impl PartitionedReport {
    /// Total performance-loss cost across partitions.
    #[must_use]
    pub fn cost_core_hours(&self) -> CoreHours {
        CoreHours::new(self.partitions.iter().map(|r| r.cost_core_hours).sum())
    }

    /// Total reward paid across partitions.
    #[must_use]
    pub fn reward_core_hours(&self) -> CoreHours {
        CoreHours::new(self.partitions.iter().map(|r| r.reward_core_hours).sum())
    }

    /// Total resource reduction across partitions.
    #[must_use]
    pub fn reduction_core_hours(&self) -> CoreHours {
        CoreHours::new(self.partitions.iter().map(|r| r.reduction_core_hours).sum())
    }

    /// Total emergencies across partitions.
    #[must_use]
    pub fn overload_events(&self) -> usize {
        self.partitions.iter().map(|r| r.overload_events).sum()
    }

    /// Slot-weighted mean overload-time percentage.
    #[must_use]
    pub fn overload_time_pct(&self) -> f64 {
        let slots: usize = self.partitions.iter().map(|r| r.total_slots).sum();
        if slots == 0 {
            return 0.0;
        }
        let over: usize = self.partitions.iter().map(|r| r.overload_slots).sum();
        100.0 * over as f64 / slots as f64
    }

    /// Federated-market totals merged across partitions (each partition
    /// clears its own power tree). `None` when no partition ran federated.
    #[must_use]
    pub fn federated(&self) -> Option<crate::report::FederatedStats> {
        let mut merged: Option<crate::report::FederatedStats> = None;
        for fed in self.partitions.iter().filter_map(|r| r.federated.as_ref()) {
            let acc = merged.get_or_insert_with(Default::default);
            acc.events += fed.events;
            acc.markets += fed.markets;
            acc.rounds += fed.rounds;
            acc.residual_watts += fed.residual_watts;
            acc.infeasible_events += fed.infeasible_events;
            acc.grid_fault_slots += fed.grid_fault_slots;
            acc.fenced_nodes += fed.fenced_nodes;
            acc.derated_nodes += fed.derated_nodes;
            acc.reassigned_jobs += fed.reassigned_jobs;
            acc.quarantined_jobs += fed.quarantined_jobs;
            acc.dead_cleared_watts += fed.dead_cleared_watts;
            acc.derate_excess_watts = acc.derate_excess_watts.max(fed.derate_excess_watts);
            acc.post_repair_events += fed.post_repair_events;
            for (name, lv) in &fed.levels {
                let entry = acc.levels.entry(name.clone()).or_default();
                entry.depth = lv.depth;
                entry.markets += lv.markets;
                entry.target_watts += lv.target_watts;
                entry.cleared_watts += lv.cleared_watts;
                entry.residual_watts += lv.residual_watts;
                entry.escalations += lv.escalations;
            }
        }
        merged
    }
}

impl<'a> PartitionedSimulation<'a> {
    /// Creates a partitioned simulation.
    ///
    /// # Panics
    ///
    /// Panics if `partitions` is zero.
    #[must_use]
    pub fn new(
        trace: &'a Trace,
        config: SimConfig,
        partitions: usize,
        policy: PartitionPolicy,
    ) -> Self {
        assert!(partitions > 0, "need at least one partition");
        Self {
            trace,
            config,
            partitions,
            policy,
        }
    }

    /// Splits the trace into per-partition traces.
    #[must_use]
    pub fn split(&self) -> Vec<Trace> {
        let jobs = self.trace.jobs();
        let mut order: Vec<usize> = (0..jobs.len()).collect();
        if self.policy == PartitionPolicy::WidthBalanced {
            order.sort_by_key(|&i| std::cmp::Reverse(jobs.get(i).map_or(0, |j| j.cores)));
        }
        let mut buckets: Vec<Vec<mpr_workload::Job>> = vec![Vec::new(); self.partitions];
        for (i, &idx) in order.iter().enumerate() {
            if let (Some(bucket), Some(job)) = (buckets.get_mut(i % self.partitions), jobs.get(idx))
            {
                bucket.push(*job);
            }
        }
        let base = (self.trace.total_cores() / self.partitions as u32).max(1);
        buckets
            .into_iter()
            .enumerate()
            .map(|(k, jobs)| {
                // A partition must be able to start its widest job, or that
                // job would sit in the queue forever and never complete.
                let widest = jobs.iter().map(|j| j.cores).max().unwrap_or(1);
                Trace::new(
                    format!("{}-p{k}", self.trace.name()),
                    base.max(widest),
                    jobs,
                )
            })
            .collect()
    }

    /// Runs every partition and aggregates.
    ///
    /// The facility's total capacity — the whole trace's oversubscribed
    /// capacity — is divided equally among the partitions: `k` parallel
    /// UPSes of `C/k` each, rather than `k` independently-sized domains.
    #[must_use]
    pub fn run(&self) -> PartitionedReport {
        let total_capacity = self.config.capacity_watts_override.unwrap_or_else(|| {
            let probe = Simulation::new(self.trace, self.config.clone());
            mpr_power::Oversubscription::percent(self.config.oversubscription_pct)
                .capacity(probe.reference_peak_watts())
                .get()
        });
        let per_partition = total_capacity / self.partitions as f64;
        let partitions = self
            .split()
            .iter()
            .enumerate()
            .map(|(k, t)| {
                let mut cfg = self.config.clone();
                // Decorrelate per-partition profile assignment.
                cfg.seed = cfg.seed.wrapping_add(k as u64);
                cfg.capacity_watts_override = Some(per_partition);
                Simulation::new(t, cfg).run()
            })
            .collect();
        PartitionedReport { partitions }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Algorithm;
    use mpr_workload::{ClusterSpec, TraceGenerator};

    fn trace() -> Trace {
        TraceGenerator::new(ClusterSpec::gaia().with_span_days(5.0))
            .with_seed(3)
            .generate()
    }

    #[test]
    fn split_preserves_all_jobs() {
        let t = trace();
        for policy in [PartitionPolicy::RoundRobin, PartitionPolicy::WidthBalanced] {
            let sim =
                PartitionedSimulation::new(&t, SimConfig::new(Algorithm::MprStat, 15.0), 4, policy);
            let parts = sim.split();
            assert_eq!(parts.len(), 4);
            let total: usize = parts.iter().map(Trace::len).sum();
            assert_eq!(total, t.len());
            // Partitions are balanced to within a job.
            let min = parts.iter().map(Trace::len).min().unwrap();
            let max = parts.iter().map(Trace::len).max().unwrap();
            assert!(max - min <= 1);
        }
    }

    #[test]
    fn width_balancing_evens_core_hours() {
        // Averaged over several seeds: any single trace can favor either
        // policy by luck, but width balancing must not lose on average.
        let core_hours_spread = |t: &Trace, policy| {
            let sim =
                PartitionedSimulation::new(t, SimConfig::new(Algorithm::MprStat, 15.0), 4, policy);
            let parts = sim.split();
            let chs: Vec<f64> = parts.iter().map(Trace::total_core_hours).collect();
            let max = chs.iter().cloned().fold(0.0, f64::max);
            let min = chs.iter().cloned().fold(f64::INFINITY, f64::min);
            (max - min) / max
        };
        let seeds = [3u64, 4, 5, 6, 7];
        let (mut balanced, mut rr) = (0.0, 0.0);
        for seed in seeds {
            let t = TraceGenerator::new(ClusterSpec::gaia().with_span_days(5.0))
                .with_seed(seed)
                .generate();
            balanced += core_hours_spread(&t, PartitionPolicy::WidthBalanced);
            rr += core_hours_spread(&t, PartitionPolicy::RoundRobin);
        }
        let n = seeds.len() as f64;
        assert!(
            balanced / n <= rr / n + 0.05,
            "width-balanced mean spread {:.3} vs round-robin {:.3}",
            balanced / n,
            rr / n
        );
    }

    #[test]
    fn single_partition_matches_plain_simulation() {
        let t = trace();
        let cfg = SimConfig::new(Algorithm::MprStat, 15.0);
        let plain = Simulation::new(&t, cfg.clone()).run();
        let part = PartitionedSimulation::new(&t, cfg, 1, PartitionPolicy::RoundRobin).run();
        assert_eq!(part.partitions.len(), 1);
        // Same jobs, same capacity model → identical accounting.
        assert_eq!(part.partitions[0].jobs_total, plain.jobs_total);
        assert!((part.cost_core_hours().get() - plain.cost_core_hours).abs() < 1e-9);
    }

    #[test]
    fn more_partitions_less_multiplexing() {
        let t = trace();
        let cfg = SimConfig::new(Algorithm::MprStat, 15.0);
        let one = PartitionedSimulation::new(&t, cfg.clone(), 1, PartitionPolicy::RoundRobin).run();
        let eight = PartitionedSimulation::new(&t, cfg, 8, PartitionPolicy::RoundRobin).run();
        // Smaller domains see burstier aggregate demand: overloads should
        // not decrease (they typically grow noticeably).
        assert!(
            eight.overload_time_pct() >= 0.8 * one.overload_time_pct(),
            "8 partitions {:.2}% vs 1 partition {:.2}%",
            eight.overload_time_pct(),
            one.overload_time_pct()
        );
        assert!(eight.overload_events() >= one.overload_events());
    }

    #[test]
    fn federated_partitions_aggregate_per_level_accounting() {
        let t = trace();
        let spec = mpr_power::TopologySpec::parse(include_str!("../../../examples/tree.json"))
            .expect("sample topology");
        let cfg = SimConfig::new(Algorithm::MprStat, 15.0).with_topology(spec);
        let flat_cfg = SimConfig::new(Algorithm::MprStat, 15.0);
        let fed = PartitionedSimulation::new(&t, cfg, 2, PartitionPolicy::RoundRobin).run();
        let plain = PartitionedSimulation::new(&t, flat_cfg, 2, PartitionPolicy::RoundRobin).run();
        assert!(plain.federated().is_none());
        let stats = fed.federated().expect("federated totals");
        assert!(stats.events > 0, "overloads must clear federated");
        assert!(stats.markets >= stats.events);
        assert!(!stats.levels.is_empty());
        let merged_events: usize = fed
            .partitions
            .iter()
            .filter_map(|r| r.federated.as_ref())
            .map(|f| f.events)
            .sum();
        assert_eq!(stats.events, merged_events);
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn zero_partitions_panics() {
        let t = trace();
        let _ = PartitionedSimulation::new(
            &t,
            SimConfig::new(Algorithm::MprStat, 15.0),
            0,
            PartitionPolicy::RoundRobin,
        );
    }
}
