//! Simulation configuration.

use std::sync::Arc;

use mpr_apps::AppProfile;
use mpr_power::{CapacityPolicy, PowerModel};

/// The overload-handling algorithm under evaluation (Section IV-A,
/// "Benchmark algorithms").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Centralized optimum: the manager knows every job's true cost model.
    Opt,
    /// Performance-oblivious uniform slowdown.
    Eql,
    /// MPR with static (submission-time, cooperative) bids.
    MprStat,
    /// MPR with iterative price/bid exchange.
    MprInt,
}

impl Algorithm {
    /// All four benchmark algorithms in the paper's plotting order.
    #[must_use]
    pub fn all() -> [Algorithm; 4] {
        [
            Algorithm::Opt,
            Algorithm::Eql,
            Algorithm::MprStat,
            Algorithm::MprInt,
        ]
    }

    /// Whether this algorithm runs a market (and hence pays rewards).
    #[must_use]
    pub fn is_market(&self) -> bool {
        matches!(self, Algorithm::MprStat | Algorithm::MprInt)
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Algorithm::Opt => write!(f, "OPT"),
            Algorithm::Eql => write!(f, "EQL"),
            Algorithm::MprStat => write!(f, "MPR-STAT"),
            Algorithm::MprInt => write!(f, "MPR-INT"),
        }
    }
}

/// Error injected into the cost models users bid from (Fig. 13). The
/// *true* cost accounting is always noise-free; noise only distorts bids.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CostNoise {
    /// Users know their costs exactly.
    None,
    /// Zero-mean multiplicative error, factor uniform in `[1−m, 1+m]`.
    Random {
        /// Error magnitude `m` (paper studies up to 0.3).
        magnitude: f64,
    },
    /// Systematic underestimation by the given fraction.
    Underestimate {
        /// Fraction by which users under-believe their costs.
        fraction: f64,
    },
}

/// Full simulation configuration.
#[derive(Clone)]
pub struct SimConfig {
    /// Overload-handling algorithm.
    pub algorithm: Algorithm,
    /// Oversubscription level in percent (5/10/15/20 in Figs. 8–15).
    pub oversubscription_pct: f64,
    /// Slot length in seconds (paper: one-minute slots).
    pub slot_secs: f64,
    /// Per-core power model.
    pub power_model: PowerModel,
    /// Reduction-target buffer (paper: 0.01).
    pub buffer_frac: f64,
    /// Emergency cool-down in seconds (paper: 600).
    pub cooldown_secs: f64,
    /// Fraction of users participating in the market (Fig. 12). Non-market
    /// algorithms ignore this.
    pub participation: f64,
    /// Users' perceived-cost coefficient `α` (Eqn. 6).
    pub alpha: f64,
    /// Heterogeneity of `α` across users: each job's coefficient is drawn
    /// uniformly from `[alpha, alpha·(1+alpha_spread)]`. Zero (the paper's
    /// setting) gives every user the same α; positive values model users
    /// who value their performance differently (Section III-C).
    pub alpha_spread: f64,
    /// Error in the users' cost estimates (Fig. 13).
    pub cost_noise: CostNoise,
    /// Application profiles assigned uniformly at random to jobs.
    pub profiles: Vec<Arc<AppProfile>>,
    /// RNG seed for profile assignment, participation and noise.
    pub seed: u64,
    /// Maximum MPR-INT rounds before the manager's timeout fires.
    pub int_max_iterations: usize,
    /// Optional time-varying capacity (demand response, carbon caps — see
    /// `mpr-grid`). `None` uses the fixed oversubscribed capacity.
    pub capacity_policy: Option<Arc<dyn CapacityPolicy>>,
    /// Record the per-slot power/capacity/price timeline in the report
    /// (needed for timeline figures and carbon accounting).
    pub record_timeline: bool,
    /// Fixed capacity in watts, overriding the peak-derived
    /// `peak·100/(100+x)` (used by partitioned simulations that share one
    /// infrastructure budget across power domains).
    pub capacity_watts_override: Option<f64>,
    /// Amplitude of per-job power phases in `[0, 1)`: each job's dynamic
    /// power oscillates by ±this fraction around nominal ("HPC jobs also go
    /// through different phases that consume different amounts of power",
    /// Section I). Zero disables phases (the paper's simulation setting).
    pub phase_amplitude: f64,
    /// Period of the per-job power phases, seconds.
    pub phase_period_secs: f64,
}

impl std::fmt::Debug for SimConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimConfig")
            .field("algorithm", &self.algorithm)
            .field("oversubscription_pct", &self.oversubscription_pct)
            .field("slot_secs", &self.slot_secs)
            .field("participation", &self.participation)
            .field("alpha", &self.alpha)
            .field("cost_noise", &self.cost_noise)
            .field("profiles", &self.profiles.len())
            .field("seed", &self.seed)
            .field("capacity_policy", &self.capacity_policy.is_some())
            .field("record_timeline", &self.record_timeline)
            .finish()
    }
}

impl SimConfig {
    /// Canonical configuration for an algorithm at an oversubscription
    /// level: 1-minute slots, paper power model, 1 % buffer, 10-minute
    /// cool-down, full participation, `α = 1`, no cost noise, the 8 CPU
    /// profiles.
    #[must_use]
    pub fn new(algorithm: Algorithm, oversubscription_pct: f64) -> Self {
        Self {
            algorithm,
            oversubscription_pct,
            slot_secs: 60.0,
            power_model: PowerModel::paper(),
            buffer_frac: 0.01,
            cooldown_secs: 600.0,
            participation: 1.0,
            alpha: 1.0,
            alpha_spread: 0.0,
            cost_noise: CostNoise::None,
            profiles: mpr_apps::cpu_profiles(),
            seed: 0x6d70_7221,
            int_max_iterations: 60,
            capacity_policy: None,
            record_timeline: false,
            capacity_watts_override: None,
            phase_amplitude: 0.0,
            phase_period_secs: 1800.0,
        }
    }

    /// Sets the α heterogeneity spread.
    #[must_use]
    pub fn with_alpha_spread(mut self, spread: f64) -> Self {
        self.alpha_spread = spread.max(0.0);
        self
    }

    /// Enables per-job power phases with the given amplitude.
    #[must_use]
    pub fn with_phases(mut self, amplitude: f64) -> Self {
        self.phase_amplitude = amplitude.clamp(0.0, 0.99);
        self
    }

    /// Installs a time-varying capacity policy (see `mpr-grid`).
    #[must_use]
    pub fn with_capacity_policy(mut self, policy: Arc<dyn CapacityPolicy>) -> Self {
        self.capacity_policy = Some(policy);
        self
    }

    /// Enables per-slot timeline recording in the report.
    #[must_use]
    pub fn with_timeline(mut self) -> Self {
        self.record_timeline = true;
        self
    }

    /// Replaces the profile pool (e.g. the GPU profiles for Fig. 15).
    #[must_use]
    pub fn with_profiles(mut self, profiles: Vec<Arc<AppProfile>>) -> Self {
        self.profiles = profiles;
        self
    }

    /// Sets market participation (Fig. 12).
    #[must_use]
    pub fn with_participation(mut self, participation: f64) -> Self {
        self.participation = participation.clamp(0.0, 1.0);
        self
    }

    /// Sets the cost-estimate noise (Fig. 13).
    #[must_use]
    pub fn with_cost_noise(mut self, noise: CostNoise) -> Self {
        self.cost_noise = noise;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_match_paper() {
        assert_eq!(Algorithm::Opt.to_string(), "OPT");
        assert_eq!(Algorithm::Eql.to_string(), "EQL");
        assert_eq!(Algorithm::MprStat.to_string(), "MPR-STAT");
        assert_eq!(Algorithm::MprInt.to_string(), "MPR-INT");
    }

    #[test]
    fn market_flag() {
        assert!(Algorithm::MprStat.is_market());
        assert!(Algorithm::MprInt.is_market());
        assert!(!Algorithm::Opt.is_market());
        assert!(!Algorithm::Eql.is_market());
        assert_eq!(Algorithm::all().len(), 4);
    }

    #[test]
    fn builder_methods() {
        let c = SimConfig::new(Algorithm::MprStat, 15.0)
            .with_participation(1.5)
            .with_seed(9)
            .with_cost_noise(CostNoise::Random { magnitude: 0.3 })
            .with_profiles(mpr_apps::gpu_profiles());
        assert_eq!(c.participation, 1.0, "participation is clamped");
        assert_eq!(c.seed, 9);
        assert!(matches!(c.cost_noise, CostNoise::Random { .. }));
        assert_eq!(c.profiles.len(), 6);
        assert_eq!(c.oversubscription_pct, 15.0);
    }

    #[test]
    fn defaults_match_paper() {
        let c = SimConfig::new(Algorithm::Opt, 10.0);
        assert_eq!(c.slot_secs, 60.0);
        assert_eq!(c.buffer_frac, 0.01);
        assert_eq!(c.cooldown_secs, 600.0);
        assert_eq!(c.alpha, 1.0);
        assert_eq!(c.profiles.len(), 8);
    }
}
