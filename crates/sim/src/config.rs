//! Simulation configuration.

use std::sync::Arc;

use mpr_apps::AppProfile;
use mpr_power::telemetry::{EstimatorConfig, SensorFaultConfig};
use mpr_power::{CapacityPolicy, GridFaultPlan, PowerModel, TopologySpec};

/// The overload-handling algorithm under evaluation (Section IV-A,
/// "Benchmark algorithms").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Centralized optimum: the manager knows every job's true cost model.
    Opt,
    /// Performance-oblivious uniform slowdown.
    Eql,
    /// MPR with static (submission-time, cooperative) bids.
    MprStat,
    /// MPR with iterative price/bid exchange.
    MprInt,
    /// Truthful pivot auction (Section III-D): allocates like OPT and pays
    /// each contributor its VCG payment. O(M²) in the number of
    /// participants — an extension beyond the paper's four benchmarks, not
    /// part of [`Algorithm::all`].
    Vcg,
}

impl Algorithm {
    /// The paper's four benchmark algorithms in plotting order. [`Vcg`] is
    /// an extension and deliberately excluded.
    ///
    /// [`Vcg`]: Algorithm::Vcg
    #[must_use]
    pub fn all() -> [Algorithm; 4] {
        [
            Algorithm::Opt,
            Algorithm::Eql,
            Algorithm::MprStat,
            Algorithm::MprInt,
        ]
    }

    /// Whether this algorithm runs a market (and hence pays rewards).
    #[must_use]
    pub fn is_market(&self) -> bool {
        matches!(
            self,
            Algorithm::MprStat | Algorithm::MprInt | Algorithm::Vcg
        )
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Algorithm::Opt => write!(f, "OPT"),
            Algorithm::Eql => write!(f, "EQL"),
            Algorithm::MprStat => write!(f, "MPR-STAT"),
            Algorithm::MprInt => write!(f, "MPR-INT"),
            Algorithm::Vcg => write!(f, "VCG"),
        }
    }
}

/// Error injected into the cost models users bid from (Fig. 13). The
/// *true* cost accounting is always noise-free; noise only distorts bids.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CostNoise {
    /// Users know their costs exactly.
    None,
    /// Zero-mean multiplicative error, factor uniform in `[1−m, 1+m]`.
    Random {
        /// Error magnitude `m` (paper studies up to 0.3).
        magnitude: f64,
    },
    /// Systematic underestimation by the given fraction.
    Underestimate {
        /// Fraction by which users under-believe their costs.
        fraction: f64,
    },
}

/// Fault mix injected into the market agents of each overload event.
///
/// Fractions select how many participating agents are wrapped in the
/// corresponding faulty adapter (`mpr_core::market::faults`), drawn
/// deterministically per overload event from the simulation seed. Only
/// MPR-INT consults the plan — the other algorithms have no per-event agent
/// interaction to disrupt — and a plan with all-zero rates is equivalent to
/// no plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Fraction of participating agents that stop answering price
    /// announcements (quarantined after the retry budget).
    pub unresponsive_frac: f64,
    /// Fraction of agents that crash permanently after their first answer.
    pub crash_frac: f64,
    /// Fraction of agents that freeze and replay their first bid.
    pub stale_frac: f64,
    /// Fraction of agents that over/under-bid byzantinely.
    pub byzantine_frac: f64,
    /// Over/under-bidding factor for byzantine agents (oscillating).
    pub byzantine_factor: f64,
    /// Per-agent per-round retry budget before quarantine.
    pub max_retries: usize,
    /// Convergence-watchdog window, rounds.
    pub watchdog_window: usize,
    /// Relative price change under which a round counts as converging.
    pub divergence_min_change: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            unresponsive_frac: 0.0,
            crash_frac: 0.0,
            stale_frac: 0.0,
            byzantine_frac: 0.0,
            byzantine_factor: 4.0,
            max_retries: 2,
            watchdog_window: 8,
            divergence_min_change: 0.05,
        }
    }
}

impl FaultPlan {
    /// A plan injecting the given fractions of unresponsive and crashing
    /// agents (the robustness experiment's canonical mix).
    #[must_use]
    pub fn unresponsive_and_crash(unresponsive_frac: f64, crash_frac: f64) -> Self {
        Self {
            unresponsive_frac: unresponsive_frac.clamp(0.0, 1.0),
            crash_frac: crash_frac.clamp(0.0, 1.0),
            ..Self::default()
        }
    }

    /// `true` when at least one fault rate is positive.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.unresponsive_frac > 0.0
            || self.crash_frac > 0.0
            || self.stale_frac > 0.0
            || self.byzantine_frac > 0.0
    }
}

/// Message-layer fault plan for the MPR-INT bid transport.
///
/// When active, every interactive clearing runs over a seeded
/// [`SimNet`](mpr_core::SimNet) virtual-time network instead of the
/// in-process perfect channel: price announcements and bid replies are
/// dropped, delayed, duplicated and partitioned deterministically from the
/// simulation seed, and the manager applies its deadline/retry/straggler
/// policy. Only MPR-INT consults the plan — the other algorithms exchange
/// no per-event messages — and a plan with all-zero fault rates and zero
/// delay is equivalent to no plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetPlan {
    /// Probability a message (either direction) is silently dropped.
    pub drop_prob: f64,
    /// Probability a delivered message is delivered twice.
    pub duplicate_prob: f64,
    /// Minimum in-flight latency, virtual ticks.
    pub min_delay_ticks: u64,
    /// Maximum in-flight latency, virtual ticks.
    pub max_delay_ticks: u64,
    /// Per-announcement probability the destination agent becomes
    /// unreachable (black-holed) for [`NetPlan::partition_ticks`].
    pub partition_prob: f64,
    /// Duration of a network partition, virtual ticks.
    pub partition_ticks: u64,
    /// Manager-side round deadline, virtual ticks.
    pub deadline_ticks: u64,
    /// Announcement attempts per agent per round (1 = no retransmits).
    pub max_attempts: usize,
    /// Consecutive missed rounds before an agent is quarantined.
    pub quarantine_after_misses: usize,
}

impl Default for NetPlan {
    fn default() -> Self {
        let t = mpr_core::TransportConfig::default();
        let f = mpr_core::NetFaultConfig::default();
        Self {
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            min_delay_ticks: f.min_delay_ticks,
            max_delay_ticks: f.max_delay_ticks,
            partition_prob: 0.0,
            partition_ticks: f.partition_ticks,
            deadline_ticks: t.deadline_ticks,
            max_attempts: t.retry.max_attempts,
            quarantine_after_misses: t.quarantine_after_misses,
        }
    }
}

impl NetPlan {
    /// A plan dropping the given fraction of messages (the chaos matrix's
    /// canonical lossy network).
    #[must_use]
    pub fn lossy(drop_prob: f64) -> Self {
        Self {
            drop_prob: drop_prob.clamp(0.0, 1.0),
            ..Self::default()
        }
    }

    /// `true` when the plan perturbs the channel at all (any fault rate
    /// positive or any latency above the default single tick).
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.drop_prob > 0.0
            || self.duplicate_prob > 0.0
            || self.partition_prob > 0.0
            || self.max_delay_ticks > mpr_core::NetFaultConfig::default().max_delay_ticks
    }

    /// The channel-side fault configuration this plan describes.
    #[must_use]
    pub fn fault_config(&self) -> mpr_core::NetFaultConfig {
        mpr_core::NetFaultConfig {
            drop_prob: self.drop_prob.clamp(0.0, 1.0),
            duplicate_prob: self.duplicate_prob.clamp(0.0, 1.0),
            min_delay_ticks: self.min_delay_ticks.min(self.max_delay_ticks),
            max_delay_ticks: self.max_delay_ticks.max(self.min_delay_ticks),
            partition_prob: self.partition_prob.clamp(0.0, 1.0),
            partition_ticks: self.partition_ticks,
        }
    }

    /// The manager-side deadline/retry/quarantine policy this plan
    /// describes, jittered from `jitter_seed`.
    #[must_use]
    pub fn transport_config(&self, jitter_seed: u64) -> mpr_core::TransportConfig {
        mpr_core::TransportConfig {
            deadline_ticks: self.deadline_ticks.max(1),
            retry: mpr_core::RetryPolicy {
                max_attempts: self.max_attempts.max(1),
                ..mpr_core::RetryPolicy::default()
            },
            quarantine_after_misses: self.quarantine_after_misses.max(1),
            jitter_seed,
        }
    }
}

/// Telemetry pipeline configuration: a sensor fault mix layered over the
/// true power, and the robust estimator that digests the faulty feed.
///
/// When installed, the emergency controller is driven by the estimator's
/// conservative **upper bound** instead of true power — the simulation
/// then studies the reactive loop under realistic measurement error. The
/// sensor's fault processes are seeded from the simulation seed, so runs
/// reproduce bit-for-bit. `None` (the default) keeps the paper's ideal
/// measurement assumption and the engine's historical behavior exactly.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TelemetryConfig {
    /// The sensor fault mix (noise, dropout, stuck, delay, spikes).
    pub sensor: SensorFaultConfig,
    /// Robust-estimator tuning (window, EWMA, outlier gate, margins).
    pub estimator: EstimatorConfig,
}

impl TelemetryConfig {
    /// A pipeline with the given fault mix and default estimator tuning.
    #[must_use]
    pub fn with_faults(sensor: SensorFaultConfig) -> Self {
        Self {
            sensor,
            ..Self::default()
        }
    }
}

/// Storage-fault plan for the write-ahead market ledger: the disk sibling
/// of [`FaultPlan`] (agents), [`NetPlan`] (messages) and the sensor fault
/// mix (telemetry). Probabilities are per storage operation; all faults are
/// drawn from a ChaCha8 stream seeded with
/// `seed ^ mpr_durable::DISK_SEED_XOR`, so runs reproduce bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskPlan {
    /// Probability an append is torn mid-frame.
    pub torn_write_prob: f64,
    /// Probability an append suffers a silent single-bit flip.
    pub bit_flip_prob: f64,
    /// Probability an fsync fails, leaving recent appends volatile.
    pub fsync_fail_prob: f64,
    /// Optional device capacity in bytes (ENOSPC beyond it).
    pub capacity_bytes: Option<u64>,
}

impl Default for DiskPlan {
    fn default() -> Self {
        Self {
            torn_write_prob: 0.0,
            bit_flip_prob: 0.0,
            fsync_fail_prob: 0.0,
            capacity_bytes: None,
        }
    }
}

impl DiskPlan {
    /// `true` when at least one fault class can fire.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.torn_write_prob > 0.0
            || self.bit_flip_prob > 0.0
            || self.fsync_fail_prob > 0.0
            || self.capacity_bytes.is_some()
    }

    /// The storage-side fault configuration this plan describes.
    #[must_use]
    pub fn fault_config(&self) -> mpr_durable::DiskFaultConfig {
        mpr_durable::DiskFaultConfig {
            torn_write_prob: self.torn_write_prob.clamp(0.0, 1.0),
            bit_flip_prob: self.bit_flip_prob.clamp(0.0, 1.0),
            fsync_fail_prob: self.fsync_fail_prob.clamp(0.0, 1.0),
            capacity_bytes: self.capacity_bytes,
        }
    }
}

/// Crash-durability plan: journal every market event to a write-ahead
/// ledger, optionally over a faulty disk, optionally killing the manager at
/// a scripted slot and recovering it from checkpoint + ledger replay.
///
/// `None` (the default) keeps the engine's historical in-memory behavior
/// exactly. The plan is folded into the checkpoint fingerprint: resuming a
/// journaled run under a different durability configuration is rejected.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DurabilityPlan {
    /// When the ledger fsyncs relative to appends.
    /// [`FsyncPolicy::Never`](mpr_durable::FsyncPolicy::Never) is the
    /// intentionally unsound policy used by the chaos planted-bug
    /// self-test.
    pub fsync: mpr_durable::FsyncPolicy,
    /// Storage faults injected under the ledger (`None` = perfect disk).
    pub disk: Option<DiskPlan>,
    /// Kill the manager at the start of this slot and recover it from the
    /// latest checkpoint plus ledger replay (`None` = run uninterrupted).
    pub kill_at_slot: Option<u64>,
    /// Checkpoint cadence in slots for the crash/recover harness.
    pub checkpoint_every: u64,
    /// Supervisor restart budget before escalating to safe mode.
    pub max_restarts: u32,
}

impl Default for DurabilityPlan {
    fn default() -> Self {
        Self {
            fsync: mpr_durable::FsyncPolicy::Always,
            disk: None,
            kill_at_slot: None,
            checkpoint_every: 16,
            max_restarts: 3,
        }
    }
}

impl DurabilityPlan {
    /// A plan that kills the manager at `slot` and expects bit-identical
    /// recovery (the kill/recover matrix's canonical shape).
    #[must_use]
    pub fn kill_at(slot: u64) -> Self {
        Self {
            kill_at_slot: Some(slot),
            ..Self::default()
        }
    }

    /// `true` when the plan perturbs the run at all (scripted kill or an
    /// active disk-fault plan); a pure always-fsync journal is passive.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.kill_at_slot.is_some() || self.disk.map(|d| d.is_active()).unwrap_or(false)
    }
}

/// Full simulation configuration.
#[derive(Clone)]
pub struct SimConfig {
    /// Overload-handling algorithm.
    pub algorithm: Algorithm,
    /// Oversubscription level in percent (5/10/15/20 in Figs. 8–15).
    pub oversubscription_pct: f64,
    /// Slot length in seconds (paper: one-minute slots).
    pub slot_secs: f64,
    /// Per-core power model.
    pub power_model: PowerModel,
    /// Reduction-target buffer (paper: 0.01).
    pub buffer_frac: f64,
    /// Emergency cool-down in seconds (paper: 600).
    pub cooldown_secs: f64,
    /// Fraction of users participating in the market (Fig. 12). Non-market
    /// algorithms ignore this.
    pub participation: f64,
    /// Users' perceived-cost coefficient `α` (Eqn. 6).
    pub alpha: f64,
    /// Heterogeneity of `α` across users: each job's coefficient is drawn
    /// uniformly from `[alpha, alpha·(1+alpha_spread)]`. Zero (the paper's
    /// setting) gives every user the same α; positive values model users
    /// who value their performance differently (Section III-C).
    pub alpha_spread: f64,
    /// Error in the users' cost estimates (Fig. 13).
    pub cost_noise: CostNoise,
    /// Application profiles assigned uniformly at random to jobs.
    pub profiles: Vec<Arc<AppProfile>>,
    /// RNG seed for profile assignment, participation and noise.
    pub seed: u64,
    /// Maximum MPR-INT rounds before the manager's timeout fires.
    pub int_max_iterations: usize,
    /// Optional time-varying capacity (demand response, carbon caps — see
    /// `mpr-grid`). `None` uses the fixed oversubscribed capacity.
    pub capacity_policy: Option<Arc<dyn CapacityPolicy>>,
    /// Record the per-slot power/capacity/price timeline in the report
    /// (needed for timeline figures and carbon accounting).
    pub record_timeline: bool,
    /// Fixed capacity in watts, overriding the peak-derived
    /// `peak·100/(100+x)` (used by partitioned simulations that share one
    /// infrastructure budget across power domains).
    pub capacity_watts_override: Option<f64>,
    /// Amplitude of per-job power phases in `[0, 1)`: each job's dynamic
    /// power oscillates by ±this fraction around nominal ("HPC jobs also go
    /// through different phases that consume different amounts of power",
    /// Section I). Zero disables phases (the paper's simulation setting).
    pub phase_amplitude: f64,
    /// Period of the per-job power phases, seconds.
    pub phase_period_secs: f64,
    /// Faults injected into market agents per overload event (`None`
    /// disables injection). MPR-INT runs its resilient degradation chain
    /// when a plan is active.
    pub fault_plan: Option<FaultPlan>,
    /// Sensor-fault telemetry pipeline (`None` reads true power directly,
    /// the paper's idealized setting).
    pub telemetry: Option<TelemetryConfig>,
    /// Message-layer faults for the MPR-INT bid transport (`None` keeps the
    /// in-process perfect channel). MPR-INT runs its transported degradation
    /// chain when a plan is active.
    pub net_plan: Option<NetPlan>,
    /// **Test-only.** Disables the emergency state machine entirely: power
    /// is measured but never acted on — no declarations, no reductions, no
    /// events. Exists so the chaos harness (`mpr-chaos`) can plant a known
    /// safety violation and prove its oracles catch it; never set in
    /// production configurations.
    pub emergency_disabled: bool,
    /// Crash-durability plan: WAL journaling, disk faults, scripted kills
    /// and supervised recovery (`None` keeps the historical in-memory
    /// behavior exactly). Consumed by `mpr_sim::ledger`; the engine itself
    /// only journals when the ledger harness asks it to.
    pub durability: Option<DurabilityPlan>,
    /// Version of the chaos generator space that produced this
    /// configuration, when it came from an `mpr-chaos` campaign scenario
    /// (`None` for hand-built configs). Folded into the checkpoint
    /// fingerprint so a campaign resumed under a different generator-space
    /// version is rejected instead of silently diverging.
    pub scenario_space: Option<u32>,
    /// Power-tree topology for federated clearing (`None` keeps the flat
    /// single-constraint model). The spec's capacities are scaled so the
    /// root matches the run's oversubscribed capacity; its fingerprint is
    /// folded into the checkpoint fingerprint, so a run can only resume
    /// under the identical tree.
    pub topology: Option<TopologySpec>,
    /// Clear overload events through the hierarchical federated market
    /// (one subtree market per oversubscribed node) instead of one flat
    /// market. Requires [`SimConfig::topology`]; ignored without it.
    pub federated: bool,
    /// Infrastructure faults over the power tree: UPS failures, derated
    /// ATS transfers, PDU breaker trips and gradual deratings with
    /// scheduled repairs (see [`GridFaultPlan`]). The schedule is a pure
    /// function of the plan and topology, so no fault state is
    /// checkpointed — only the plan itself is folded into the checkpoint
    /// fingerprint. Requires [`SimConfig::topology`]; ignored without it.
    pub grid_fault: Option<GridFaultPlan>,
    /// **Test-only.** Disables dead-subtree fencing in federated clearing:
    /// faults still derate the system budget, but jobs stay assigned to
    /// their (possibly dead) racks and the full healthy tree is cleared.
    /// Exists so the chaos harness can plant a known fencing violation
    /// and prove the grid-fencing oracle catches it; never set in
    /// production configurations.
    pub grid_fencing_disabled: bool,
}

impl std::fmt::Debug for SimConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimConfig")
            .field("algorithm", &self.algorithm)
            .field("oversubscription_pct", &self.oversubscription_pct)
            .field("slot_secs", &self.slot_secs)
            .field("participation", &self.participation)
            .field("alpha", &self.alpha)
            .field("cost_noise", &self.cost_noise)
            .field("profiles", &self.profiles.len())
            .field("seed", &self.seed)
            .field("capacity_policy", &self.capacity_policy.is_some())
            .field("record_timeline", &self.record_timeline)
            .field("fault_plan", &self.fault_plan)
            .field("telemetry", &self.telemetry)
            .field("net_plan", &self.net_plan)
            .field("emergency_disabled", &self.emergency_disabled)
            .field("durability", &self.durability)
            .field("scenario_space", &self.scenario_space)
            .field("topology", &self.topology.as_ref().map(|t| t.name.as_str()))
            .field("federated", &self.federated)
            .field("grid_fault", &self.grid_fault)
            .field("grid_fencing_disabled", &self.grid_fencing_disabled)
            .finish()
    }
}

impl SimConfig {
    /// Canonical configuration for an algorithm at an oversubscription
    /// level: 1-minute slots, paper power model, 1 % buffer, 10-minute
    /// cool-down, full participation, `α = 1`, no cost noise, the 8 CPU
    /// profiles.
    #[must_use]
    pub fn new(algorithm: Algorithm, oversubscription_pct: f64) -> Self {
        Self {
            algorithm,
            oversubscription_pct,
            slot_secs: 60.0,
            power_model: PowerModel::paper(),
            buffer_frac: 0.01,
            cooldown_secs: 600.0,
            participation: 1.0,
            alpha: 1.0,
            alpha_spread: 0.0,
            cost_noise: CostNoise::None,
            profiles: mpr_apps::cpu_profiles(),
            seed: 0x6d70_7221,
            int_max_iterations: 60,
            capacity_policy: None,
            record_timeline: false,
            capacity_watts_override: None,
            phase_amplitude: 0.0,
            phase_period_secs: 1800.0,
            fault_plan: None,
            telemetry: None,
            net_plan: None,
            emergency_disabled: false,
            durability: None,
            scenario_space: None,
            topology: None,
            federated: false,
            grid_fault: None,
            grid_fencing_disabled: false,
        }
    }

    /// Sets the α heterogeneity spread.
    #[must_use]
    pub fn with_alpha_spread(mut self, spread: f64) -> Self {
        self.alpha_spread = spread.max(0.0);
        self
    }

    /// Enables per-job power phases with the given amplitude.
    #[must_use]
    pub fn with_phases(mut self, amplitude: f64) -> Self {
        self.phase_amplitude = amplitude.clamp(0.0, 0.99);
        self
    }

    /// Installs a time-varying capacity policy (see `mpr-grid`).
    #[must_use]
    pub fn with_capacity_policy(mut self, policy: Arc<dyn CapacityPolicy>) -> Self {
        self.capacity_policy = Some(policy);
        self
    }

    /// Enables per-slot timeline recording in the report.
    #[must_use]
    pub fn with_timeline(mut self) -> Self {
        self.record_timeline = true;
        self
    }

    /// Replaces the profile pool (e.g. the GPU profiles for Fig. 15).
    #[must_use]
    pub fn with_profiles(mut self, profiles: Vec<Arc<AppProfile>>) -> Self {
        self.profiles = profiles;
        self
    }

    /// Sets market participation (Fig. 12).
    #[must_use]
    pub fn with_participation(mut self, participation: f64) -> Self {
        self.participation = participation.clamp(0.0, 1.0);
        self
    }

    /// Sets the cost-estimate noise (Fig. 13).
    #[must_use]
    pub fn with_cost_noise(mut self, noise: CostNoise) -> Self {
        self.cost_noise = noise;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Installs a fault-injection plan (see [`FaultPlan`]).
    #[must_use]
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Installs a sensor-fault telemetry pipeline (see [`TelemetryConfig`]).
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: TelemetryConfig) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Installs a message-layer fault plan for the bid transport (see
    /// [`NetPlan`]).
    #[must_use]
    pub fn with_net(mut self, plan: NetPlan) -> Self {
        self.net_plan = Some(plan);
        self
    }

    /// Installs a crash-durability plan (see [`DurabilityPlan`]).
    #[must_use]
    pub fn with_durability(mut self, plan: DurabilityPlan) -> Self {
        self.durability = Some(plan);
        self
    }

    /// **Test-only.** Disables the emergency state machine (see
    /// [`SimConfig::emergency_disabled`]).
    #[must_use]
    pub fn with_emergency_disabled(mut self) -> Self {
        self.emergency_disabled = true;
        self
    }

    /// Tags the configuration with the chaos generator-space version that
    /// produced it (see [`SimConfig::scenario_space`]).
    #[must_use]
    pub fn with_scenario_space(mut self, version: u32) -> Self {
        self.scenario_space = Some(version);
        self
    }

    /// Installs a power-tree topology and enables federated clearing over
    /// it (see [`SimConfig::topology`] and [`SimConfig::federated`]).
    #[must_use]
    pub fn with_topology(mut self, spec: TopologySpec) -> Self {
        self.topology = Some(spec);
        self.federated = true;
        self
    }

    /// Installs an infrastructure fault plan over the power tree (see
    /// [`GridFaultPlan`]). Only consulted when a topology is present.
    #[must_use]
    pub fn with_grid_faults(mut self, plan: GridFaultPlan) -> Self {
        self.grid_fault = Some(plan);
        self
    }

    /// **Test-only.** Disables dead-subtree fencing (see
    /// [`SimConfig::grid_fencing_disabled`]).
    #[must_use]
    pub fn with_grid_fencing_disabled(mut self) -> Self {
        self.grid_fencing_disabled = true;
        self
    }

    /// `true` when overload events clear through the hierarchical
    /// federated market (both the flag and a topology are present).
    #[must_use]
    pub fn is_federated(&self) -> bool {
        self.federated && self.topology.is_some()
    }

    /// The grid-fault plan in force: present, active, and backed by a
    /// federated topology to act on.
    #[must_use]
    pub fn active_grid_fault(&self) -> Option<GridFaultPlan> {
        match self.grid_fault {
            Some(plan) if plan.is_active() && self.is_federated() => Some(plan),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn net_plan_activity_and_derived_configs() {
        assert!(!NetPlan::default().is_active());
        let plan = NetPlan::lossy(0.3);
        assert!(plan.is_active());
        assert!((plan.drop_prob - 0.3).abs() < 1e-12);
        assert!(NetPlan::lossy(2.0).drop_prob <= 1.0);
        // Delay-only plans are active too: reordering without loss.
        let slow = NetPlan {
            max_delay_ticks: 4,
            ..NetPlan::default()
        };
        assert!(slow.is_active());
        let fc = slow.fault_config();
        assert!(fc.min_delay_ticks <= fc.max_delay_ticks);
        let tc = plan.transport_config(42);
        assert_eq!(tc.jitter_seed, 42);
        assert!(tc.deadline_ticks >= 1);
        assert!(tc.retry.max_attempts >= 1);
        let cfg = SimConfig::new(Algorithm::MprInt, 15.0).with_net(plan);
        assert_eq!(cfg.net_plan, Some(plan));
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(Algorithm::Opt.to_string(), "OPT");
        assert_eq!(Algorithm::Eql.to_string(), "EQL");
        assert_eq!(Algorithm::MprStat.to_string(), "MPR-STAT");
        assert_eq!(Algorithm::MprInt.to_string(), "MPR-INT");
    }

    #[test]
    fn market_flag() {
        assert!(Algorithm::MprStat.is_market());
        assert!(Algorithm::MprInt.is_market());
        assert!(Algorithm::Vcg.is_market());
        assert!(!Algorithm::Opt.is_market());
        assert!(!Algorithm::Eql.is_market());
        // VCG is an extension, not one of the paper's four benchmarks.
        assert_eq!(Algorithm::all().len(), 4);
        assert!(!Algorithm::all().contains(&Algorithm::Vcg));
        assert_eq!(Algorithm::Vcg.to_string(), "VCG");
    }

    #[test]
    fn builder_methods() {
        let c = SimConfig::new(Algorithm::MprStat, 15.0)
            .with_participation(1.5)
            .with_seed(9)
            .with_cost_noise(CostNoise::Random { magnitude: 0.3 })
            .with_profiles(mpr_apps::gpu_profiles());
        assert_eq!(c.participation, 1.0, "participation is clamped");
        assert_eq!(c.seed, 9);
        assert!(matches!(c.cost_noise, CostNoise::Random { .. }));
        assert_eq!(c.profiles.len(), 6);
        assert_eq!(c.oversubscription_pct, 15.0);
    }

    #[test]
    fn fault_plan_builder() {
        assert!(!FaultPlan::default().is_active());
        let plan = FaultPlan::unresponsive_and_crash(0.3, 0.1);
        assert!(plan.is_active());
        assert_eq!(plan.unresponsive_frac, 0.3);
        assert_eq!(plan.crash_frac, 0.1);
        // Fractions are clamped into [0, 1].
        let clamped = FaultPlan::unresponsive_and_crash(1.5, -0.2);
        assert_eq!(clamped.unresponsive_frac, 1.0);
        assert_eq!(clamped.crash_frac, 0.0);
        let c = SimConfig::new(Algorithm::MprInt, 15.0).with_faults(plan);
        assert_eq!(c.fault_plan, Some(plan));
        assert!(SimConfig::new(Algorithm::MprInt, 15.0).fault_plan.is_none());
    }

    #[test]
    fn telemetry_builder() {
        assert!(SimConfig::new(Algorithm::MprStat, 15.0).telemetry.is_none());
        let sensor = SensorFaultConfig {
            noise_sigma_frac: 0.05,
            dropout_prob: 0.2,
            ..SensorFaultConfig::default()
        };
        let c = SimConfig::new(Algorithm::MprStat, 15.0)
            .with_telemetry(TelemetryConfig::with_faults(sensor));
        let tel = c.telemetry.expect("telemetry installed");
        assert_eq!(tel.sensor, sensor);
        assert_eq!(tel.estimator, EstimatorConfig::default());
    }

    #[test]
    fn grid_fault_builder_requires_a_topology_to_act() {
        let plan = GridFaultPlan::ups_outage(0.5);
        let c = SimConfig::new(Algorithm::MprStat, 15.0).with_grid_faults(plan);
        assert_eq!(c.grid_fault, Some(plan));
        assert!(
            c.active_grid_fault().is_none(),
            "without a topology the plan has nothing to act on"
        );
        let spec = TopologySpec::parse(
            r#"{"name": "t", "nodes": [
              {"name": "a", "kind": "ats", "capacity_w": 4.0, "parent": null},
              {"name": "u", "kind": "ups", "capacity_w": 2.0, "parent": 0},
              {"name": "p", "kind": "pdu", "capacity_w": 2.0, "parent": 1},
              {"name": "r", "kind": "rack", "capacity_w": 2.0, "parent": 2}
            ]}"#,
        )
        .unwrap();
        let c = c.with_topology(spec);
        assert_eq!(c.active_grid_fault(), Some(plan));
        // An all-zero plan is inert even with a topology.
        let inert =
            SimConfig::new(Algorithm::MprStat, 15.0).with_grid_faults(GridFaultPlan::default());
        assert!(inert.active_grid_fault().is_none());
        assert!(!SimConfig::new(Algorithm::MprStat, 15.0).grid_fencing_disabled);
        assert!(
            SimConfig::new(Algorithm::MprStat, 15.0)
                .with_grid_fencing_disabled()
                .grid_fencing_disabled
        );
    }

    #[test]
    fn defaults_match_paper() {
        let c = SimConfig::new(Algorithm::Opt, 10.0);
        assert_eq!(c.slot_secs, 60.0);
        assert_eq!(c.buffer_frac, 0.01);
        assert_eq!(c.cooldown_secs, 600.0);
        assert_eq!(c.alpha, 1.0);
        assert_eq!(c.profiles.len(), 8);
    }
}
