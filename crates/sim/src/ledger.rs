//! The durable market ledger: write-ahead journaling of every market event,
//! crash/recovery orchestration and supervised self-healing.
//!
//! # What gets journaled
//!
//! When [`SimConfig::durability`] is set, [`run_durable`] drives the engine
//! slot by slot with the journaling side channel enabled. Every market
//! event of a slot — emergency-FSM transition, price announcement,
//! accepted bid, clearing, quarantine, payment — becomes one CRC-framed
//! record in a [`Wal`] over a seeded [`FaultyDisk`], terminated by a
//! `SlotCommit` record. A slot is *acknowledged* once its commit record is
//! durable under the configured [`FsyncPolicy`] — except under
//! [`FsyncPolicy::Never`], which (unsoundly) acknowledges on append; the
//! chaos campaign's `durability-commit` oracle exists to catch exactly
//! that.
//!
//! # Recovery
//!
//! A scripted kill ([`DurabilityPlan::kill_at_slot`](crate::DurabilityPlan))
//! drops the engine state on the floor and crashes the disk (losing
//! unsynced bytes). Recovery then
//!
//! 1. scans the surviving image and truncates the corrupt tail
//!    (scan-and-truncate, [`mpr_durable::recover`]),
//! 2. additionally truncates any record *tail* belonging to a slot whose
//!    `SlotCommit` never became durable, so the log ends at a slot
//!    boundary and fresh appends can never interleave with a
//!    half-journaled slot,
//! 3. replays all journaled payments into an exactly-once
//!    [`PaymentLog`], and
//! 4. picks the newest in-memory checkpoint at or before the last
//!    committed slot and re-drives the engine from there: replayed slots
//!    are verified event-by-event against the journal (divergence
//!    counted), recomputed payments are suppressed as duplicates, and
//!    post-commit slots journal fresh records into the recovered WAL.
//!
//! Because the engine is deterministic, the recovered run's [`SimReport`]
//! is bit-identical to an uninterrupted run — the recovery-equivalence
//! property `tests/durability.rs` proves for arbitrary kill points. The
//! whole recovery attempt executes under [`mpr_durable::supervise`]: a
//! panic or unrecoverable error triggers capped-backoff restarts, and
//! exhausting the restart budget escalates to safe mode — the process
//! level of the degradation ladder — which re-runs the workload under EQL
//! capping with the market (and its durability dependency) disabled.

use std::fmt;

use mpr_core::{CoreHours, PaymentKey, PaymentLog};
use mpr_durable::wal::{
    encode_segment_header, BODY_PREFIX_LEN, FRAME_HEADER_LEN, SEGMENT_HEADER_LEN,
};
use mpr_durable::{
    scan, DiskFaultConfig, DiskFaultCounters, FaultyDisk, FsyncPolicy, Record, Storage, Supervised,
    SupervisorConfig, Wal, WalError, DISK_SEED_XOR,
};
use mpr_workload::Trace;

use crate::config::{Algorithm, SimConfig};
use crate::engine::{RunSetup, Simulation};
use crate::report::{DurabilityTotals, SimReport};

/// Record kind tags on the wire. Dense and stable: they are part of the
/// on-disk format and `mpr ledger` decodes them offline.
mod kind {
    pub const PRICE_ANNOUNCE: u8 = 1;
    pub const BID_ARRIVAL: u8 = 2;
    pub const CLEARING: u8 = 3;
    pub const PAYMENT: u8 = 4;
    pub const EMERGENCY: u8 = 5;
    pub const QUARANTINE: u8 = 6;
    pub const SLOT_COMMIT: u8 = 7;
}

/// One market event, as journaled to the write-ahead ledger.
///
/// Emitted by the engine's journaling side channel in deterministic order
/// within each slot; `SlotCommit` is appended by the ledger harness, never
/// by the engine.
#[derive(Debug, Clone, PartialEq)]
pub enum LedgerEvent {
    /// The manager announced a clearing price to the participants.
    PriceAnnounce {
        /// Simulation time, seconds.
        t_secs: f64,
        /// Reduction target, watts.
        target_watts: f64,
        /// Announced (maximum) price, core-hours per unit reduction.
        price: f64,
    },
    /// A participant's accepted bid entered the clearing.
    BidArrival {
        /// Trace job index of the participant.
        participant: u64,
        /// Accepted resource reduction, cores.
        reduction: f64,
        /// Price attached to the reduction.
        price: f64,
    },
    /// A market clearing completed.
    Clearing {
        /// 0 = declare-triggered, 1 = escalate-triggered.
        kind: u8,
        /// Reduction target, watts.
        target_watts: f64,
        /// Power reduction actually delivered, watts.
        delivered_watts: f64,
        /// True when the degradation chain fell below MPR-INT.
        degraded: bool,
    },
    /// A participant was paid for an in-force reduction this slot.
    Payment {
        /// Trace job index of the paid participant.
        participant: u64,
        /// Price at payment time.
        price: f64,
        /// Reduction paid for, cores.
        reduction: f64,
        /// Payment amount, core-hours (price × reduction × slot hours).
        amount_core_hours: f64,
    },
    /// Emergency-FSM transition.
    Emergency {
        /// 0 = declare, 1 = escalate, 2 = lift.
        kind: u8,
        /// Simulation time, seconds.
        t_secs: f64,
        /// Reduction target, watts (zero for lift).
        target_watts: f64,
        /// Price in force (zero for lift).
        price: f64,
    },
    /// Participants quarantined by this clearing's fault handling.
    Quarantine {
        /// Number of newly quarantined participants.
        participants: u64,
    },
    /// Terminates a slot's record group: every record since the previous
    /// commit belongs to `slot`. A slot is acknowledged once this record
    /// is durable.
    SlotCommit {
        /// The committed slot.
        slot: u64,
    },
}

// Little-endian payload codec, the same byte conventions as the checkpoint
// format. Payloads are fixed-layout per kind; decode is total (no panics)
// and rejects trailing bytes.
struct PayloadEnc {
    buf: Vec<u8>,
}

impl PayloadEnc {
    fn new() -> Self {
        Self {
            buf: Vec::with_capacity(33),
        }
    }
    fn u8(mut self, v: u8) -> Self {
        self.buf.push(v);
        self
    }
    fn u64(mut self, v: u64) -> Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }
    fn f64(self, v: f64) -> Self {
        self.u64(v.to_bits())
    }
}

struct PayloadDec<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> PayloadDec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, at: 0 }
    }
    fn u8(&mut self) -> Option<u8> {
        let v = self.buf.get(self.at).copied()?;
        self.at += 1;
        Some(v)
    }
    fn u64(&mut self) -> Option<u64> {
        let raw: [u8; 8] = self.buf.get(self.at..self.at + 8)?.try_into().ok()?;
        self.at += 8;
        Some(u64::from_le_bytes(raw))
    }
    fn f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.u64()?))
    }
    fn done(&self) -> bool {
        self.at == self.buf.len()
    }
}

impl LedgerEvent {
    /// Encodes the event as a `(kind, payload)` WAL record body.
    #[must_use]
    pub fn encode(&self) -> (u8, Vec<u8>) {
        match self {
            LedgerEvent::PriceAnnounce {
                t_secs,
                target_watts,
                price,
            } => (
                kind::PRICE_ANNOUNCE,
                PayloadEnc::new()
                    .f64(*t_secs)
                    .f64(*target_watts)
                    .f64(*price)
                    .buf,
            ),
            LedgerEvent::BidArrival {
                participant,
                reduction,
                price,
            } => (
                kind::BID_ARRIVAL,
                PayloadEnc::new()
                    .u64(*participant)
                    .f64(*reduction)
                    .f64(*price)
                    .buf,
            ),
            LedgerEvent::Clearing {
                kind: k,
                target_watts,
                delivered_watts,
                degraded,
            } => (
                kind::CLEARING,
                PayloadEnc::new()
                    .u8(*k)
                    .f64(*target_watts)
                    .f64(*delivered_watts)
                    .u8(u8::from(*degraded))
                    .buf,
            ),
            LedgerEvent::Payment {
                participant,
                price,
                reduction,
                amount_core_hours,
            } => (
                kind::PAYMENT,
                PayloadEnc::new()
                    .u64(*participant)
                    .f64(*price)
                    .f64(*reduction)
                    .f64(*amount_core_hours)
                    .buf,
            ),
            LedgerEvent::Emergency {
                kind: k,
                t_secs,
                target_watts,
                price,
            } => (
                kind::EMERGENCY,
                PayloadEnc::new()
                    .u8(*k)
                    .f64(*t_secs)
                    .f64(*target_watts)
                    .f64(*price)
                    .buf,
            ),
            LedgerEvent::Quarantine { participants } => {
                (kind::QUARANTINE, PayloadEnc::new().u64(*participants).buf)
            }
            LedgerEvent::SlotCommit { slot } => {
                (kind::SLOT_COMMIT, PayloadEnc::new().u64(*slot).buf)
            }
        }
    }

    /// Decodes a WAL record body back into an event. `None` on unknown
    /// kind or malformed payload.
    #[must_use]
    pub fn decode(record_kind: u8, payload: &[u8]) -> Option<Self> {
        let mut d = PayloadDec::new(payload);
        let event = match record_kind {
            kind::PRICE_ANNOUNCE => LedgerEvent::PriceAnnounce {
                t_secs: d.f64()?,
                target_watts: d.f64()?,
                price: d.f64()?,
            },
            kind::BID_ARRIVAL => LedgerEvent::BidArrival {
                participant: d.u64()?,
                reduction: d.f64()?,
                price: d.f64()?,
            },
            kind::CLEARING => LedgerEvent::Clearing {
                kind: d.u8()?,
                target_watts: d.f64()?,
                delivered_watts: d.f64()?,
                degraded: d.u8()? != 0,
            },
            kind::PAYMENT => LedgerEvent::Payment {
                participant: d.u64()?,
                price: d.f64()?,
                reduction: d.f64()?,
                amount_core_hours: d.f64()?,
            },
            kind::EMERGENCY => LedgerEvent::Emergency {
                kind: d.u8()?,
                t_secs: d.f64()?,
                target_watts: d.f64()?,
                price: d.f64()?,
            },
            kind::QUARANTINE => LedgerEvent::Quarantine {
                participants: d.u64()?,
            },
            kind::SLOT_COMMIT => LedgerEvent::SlotCommit { slot: d.u64()? },
            _ => return None,
        };
        d.done().then_some(event)
    }

    /// One-line human rendering for `mpr ledger dump`.
    #[must_use]
    pub fn describe(&self) -> String {
        match self {
            LedgerEvent::PriceAnnounce {
                t_secs,
                target_watts,
                price,
            } => {
                format!("price-announce t={t_secs:.0}s target={target_watts:.1}W price={price:.4}")
            }
            LedgerEvent::BidArrival {
                participant,
                reduction,
                price,
            } => {
                format!(
                    "bid-arrival job={participant} reduction={reduction:.3}cores price={price:.4}"
                )
            }
            LedgerEvent::Clearing {
                kind,
                target_watts,
                delivered_watts,
                degraded,
            } => {
                let trigger = if *kind == 0 { "declare" } else { "escalate" };
                format!(
                    "clearing trigger={trigger} target={target_watts:.1}W delivered={delivered_watts:.1}W degraded={degraded}"
                )
            }
            LedgerEvent::Payment {
                participant,
                amount_core_hours,
                ..
            } => format!("payment job={participant} amount={amount_core_hours:.6}ch"),
            LedgerEvent::Emergency {
                kind,
                t_secs,
                target_watts,
                ..
            } => {
                let name = match kind {
                    0 => "declare",
                    1 => "escalate",
                    _ => "lift",
                };
                format!("emergency {name} t={t_secs:.0}s target={target_watts:.1}W")
            }
            LedgerEvent::Quarantine { participants } => {
                format!("quarantine participants={participants}")
            }
            LedgerEvent::SlotCommit { slot } => format!("slot-commit slot={slot}"),
        }
    }
}

/// Errors surfaced by the durable-run harness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LedgerError {
    /// The WAL failed before the run could even start (e.g. a
    /// zero-capacity disk plan rejecting the segment header).
    Wal(WalError),
    /// Recovery exhausted the supervisor's restart budget *and* the
    /// safe-mode fallback failed too.
    Unrecoverable(String),
}

impl fmt::Display for LedgerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LedgerError::Wal(err) => write!(f, "ledger wal error: {err}"),
            LedgerError::Unrecoverable(msg) => write!(f, "unrecoverable: {msg}"),
        }
    }
}

impl std::error::Error for LedgerError {}

impl From<WalError> for LedgerError {
    fn from(err: WalError) -> Self {
        LedgerError::Wal(err)
    }
}

/// The write-ahead market ledger: a [`Wal`] over a seeded [`FaultyDisk`],
/// tracking per-slot commit acknowledgements.
#[derive(Debug)]
pub struct MarketLedger {
    wal: Wal<FaultyDisk>,
    /// `(commit record seq, slot)` pairs, in append order.
    commits: Vec<(u64, u64)>,
    records_journaled: u64,
    payments_journaled: u64,
}

impl MarketLedger {
    /// Creates a fresh ledger for a configuration: the disk is seeded with
    /// `cfg.seed ^ DISK_SEED_XOR` and the stream id is `cfg.seed`, so a
    /// ledger can never be replayed against the wrong run. When even the
    /// segment header cannot be made durable (a torn header write, or a
    /// zero-capacity disk plan) the ledger starts *wedged*: the run
    /// proceeds without durability, exactly as with a mid-run wedge.
    #[must_use]
    pub fn create(cfg: &SimConfig) -> Self {
        let plan = cfg.durability.unwrap_or_default();
        let disk_cfg = plan.disk.map(|d| d.fault_config()).unwrap_or_default();
        let disk = FaultyDisk::new(disk_cfg, cfg.seed ^ DISK_SEED_XOR);
        let wal = Wal::create_or_wedge(disk, cfg.seed, plan.fsync);
        Self {
            wal,
            commits: Vec::new(),
            records_journaled: 0,
            payments_journaled: 0,
        }
    }

    /// Journals one executed slot: its events in engine order, then the
    /// `SlotCommit`. A storage fault wedges the WAL — journaling silently
    /// stops (the run continues without durability) and the wedge is
    /// surfaced in [`DurabilityTotals::ledger_wedged`].
    pub fn journal_slot(&mut self, slot: u64, events: &[LedgerEvent]) {
        if self.wal.is_wedged() {
            return;
        }
        for event in events {
            let (k, payload) = event.encode();
            if self.wal.append(k, &payload).is_err() {
                return;
            }
            self.records_journaled += 1;
            if matches!(event, LedgerEvent::Payment { .. }) {
                self.payments_journaled += 1;
            }
        }
        let (k, payload) = LedgerEvent::SlotCommit { slot }.encode();
        if let Ok(seq) = self.wal.append(k, &payload) {
            self.records_journaled += 1;
            self.commits.push((seq, slot));
        }
    }

    /// Highest slot the manager may report as durably committed: the last
    /// commit record at or below the WAL's acknowledged sequence. Under
    /// [`FsyncPolicy::Never`] this reflects the unsound append-time
    /// acknowledgement — the planted bug the `durability-commit` oracle
    /// catches.
    #[must_use]
    pub fn acked_slot(&self) -> Option<u64> {
        let acked = self.wal.acked_seq()?;
        self.commits
            .iter()
            .rev()
            .find(|(seq, _)| *seq <= acked)
            .map(|(_, slot)| *slot)
    }

    /// Records appended so far.
    #[must_use]
    pub fn records_journaled(&self) -> u64 {
        self.records_journaled
    }

    /// Payment records appended so far.
    #[must_use]
    pub fn payments_journaled(&self) -> u64 {
        self.payments_journaled
    }

    /// True once a storage fault has stopped journaling.
    #[must_use]
    pub fn is_wedged(&self) -> bool {
        self.wal.is_wedged()
    }

    /// Injected disk-fault counters.
    #[must_use]
    pub fn disk_counters(&self) -> DiskFaultCounters {
        self.wal.storage().counters()
    }

    /// Crashes the underlying disk (power loss): unsynced bytes are lost
    /// except for a seeded prefix. Returns the surviving durable image.
    pub fn crash(&mut self) -> Vec<u8> {
        self.wal.storage_mut().crash();
        self.wal.storage_mut().durable_bytes().to_vec()
    }

    /// Consumes the ledger, returning the full byte image — what
    /// `mpr ledger` inspects after a clean shutdown.
    #[must_use]
    pub fn into_image(self) -> Vec<u8> {
        let mut storage = self.wal.into_storage();
        storage.read_all().unwrap_or_default()
    }
}

/// Ledger image decoded to slot granularity.
struct SlotGroups {
    /// `(slot, events)` — including the `SlotCommit` — for every committed
    /// slot, in order.
    groups: Vec<(u64, Vec<LedgerEvent>)>,
    /// Byte length of the image prefix ending at the last durable commit.
    committed_len: u64,
    /// Sequence the next record after that prefix must carry.
    next_seq: u64,
    /// Records inside the committed prefix.
    committed_records: u64,
    /// Last committed slot.
    last_slot: Option<u64>,
}

/// Groups a scanned record stream into committed slots and locates the
/// byte boundary of the last commit, so the uncommitted tail (records of a
/// slot whose `SlotCommit` never made it to durable storage) can be
/// truncated away along with the corrupt bytes.
fn group_by_slot(records: &[Record]) -> SlotGroups {
    let mut groups: Vec<(u64, Vec<LedgerEvent>)> = Vec::new();
    let mut pending: Vec<LedgerEvent> = Vec::new();
    let mut offset = SEGMENT_HEADER_LEN as u64;
    let mut committed_len = offset;
    let mut next_seq = 0u64;
    let mut committed_records = 0u64;
    let mut last_slot = None;
    let mut records_seen = 0u64;
    for record in records {
        offset += (FRAME_HEADER_LEN + BODY_PREFIX_LEN + record.payload.len()) as u64;
        records_seen += 1;
        match LedgerEvent::decode(record.kind, &record.payload) {
            Some(LedgerEvent::SlotCommit { slot }) => {
                pending.push(LedgerEvent::SlotCommit { slot });
                groups.push((slot, std::mem::take(&mut pending)));
                committed_len = offset;
                next_seq = record.seq + 1;
                committed_records = records_seen;
                last_slot = Some(slot);
            }
            Some(event) => pending.push(event),
            // An undecodable record body (valid CRC, unknown layout) ends
            // the usable prefix at the previous commit.
            None => break,
        }
    }
    SlotGroups {
        groups,
        committed_len,
        next_seq,
        committed_records,
        last_slot,
    }
}

/// A completed durable run: the report (with [`SimReport::durability`]
/// filled) plus the final ledger image for offline inspection.
#[derive(Debug, Clone, PartialEq)]
pub struct DurableRun {
    /// The simulation report, durability totals attached.
    pub report: SimReport,
    /// Final WAL image (single segment, post-recovery when a kill was
    /// scripted). Write it to a file to inspect with `mpr ledger`.
    pub wal_image: Vec<u8>,
}

/// Runs a simulation under the configured
/// [`DurabilityPlan`](crate::DurabilityPlan): journals every market event
/// to a write-ahead ledger over a (possibly faulty) disk, optionally kills
/// the manager at a scripted slot, and recovers it — supervised — from the
/// latest checkpoint plus ledger replay. See the module docs for the full
/// protocol.
///
/// # Errors
///
/// [`LedgerError::Unrecoverable`] when the supervisor exhausts its restart
/// budget and the safe-mode fallback fails too. WAL wedging — at creation
/// (a torn segment-header write) or mid-run — is *not* an error: the run
/// completes without durability and reports the wedge.
pub fn run_durable(trace: &Trace, cfg: SimConfig) -> Result<DurableRun, LedgerError> {
    let plan = cfg.durability.unwrap_or_default();
    let sim = Simulation::new(trace, cfg.clone());
    let setup = sim.setup();
    let mut state = sim.initial_state(&setup);
    let mut ledger = MarketLedger::create(&cfg);
    let mut payment_log = PaymentLog::new();
    let mut totals = DurabilityTotals::default();

    // In-memory checkpoints through the real checkpoint codec (no file
    // I/O): recovery picks the newest one at or before the last durable
    // commit, so it never needs journal records older than the restore
    // point.
    let every = usize::try_from(plan.checkpoint_every.max(1)).unwrap_or(usize::MAX);
    let mut checkpoints: Vec<(u64, Vec<u8>)> = Vec::new();
    let mut journal: Vec<LedgerEvent> = Vec::new();
    let mut crashed = false;

    while !state.finished && state.step < setup.horizon_slots {
        if state.step.is_multiple_of(every) {
            checkpoints.push((state.step as u64, crate::checkpoint::encode_state(&state)));
        }
        if plan.kill_at_slot == Some(state.step as u64) {
            crashed = true;
            break;
        }
        let slot = state.step as u64;
        journal.clear();
        sim.step_slot_journaled(&setup, &mut state, Some(&mut journal));
        apply_payments(&mut payment_log, slot, &journal);
        ledger.journal_slot(slot, &journal);
    }

    if !crashed {
        // Uninterrupted: report straight from the live state.
        totals.records_journaled = ledger.records_journaled();
        totals.payments_journaled = ledger.payments_journaled();
        totals.recovered_commit_slot = ledger.acked_slot();
        totals.ledger_reward_core_hours = payment_log.total().get();
        totals.duplicate_payments_suppressed = payment_log.duplicates_suppressed();
        totals.ledger_wedged = ledger.is_wedged();
        fill_disk_counters(&mut totals, &ledger.disk_counters());
        let mut report = sim.finish_report(&setup, state);
        report.durability = Some(totals);
        return Ok(DurableRun {
            report,
            wal_image: ledger.into_image(),
        });
    }

    // ----- Crash: what did the manager believe vs. what survived? -----
    totals.acked_slot_before_crash = ledger.acked_slot();
    totals.records_journaled = ledger.records_journaled();
    totals.ledger_wedged = ledger.is_wedged();
    fill_disk_counters(&mut totals, &ledger.disk_counters());
    let surviving = ledger.crash();

    // ----- Scan-and-truncate, then cut back to the last slot commit. -----
    let scan_report = scan(&surviving, Some(cfg.seed));
    let slots = group_by_slot(&scan_report.records);
    totals.truncated_bytes =
        scan_report.truncated_bytes + scan_report.valid_len.saturating_sub(slots.committed_len);
    totals.recovered_commit_slot = slots.last_slot;
    totals.records_replayed = slots.committed_records;

    // A corrupt or missing segment header means nothing usable survived:
    // recovery restarts the stream from a fresh header.
    let committed_len = usize::try_from(slots.committed_len).unwrap_or(surviving.len());
    let image = match (scan_report.stream_id, surviving.get(..committed_len)) {
        (Some(_), Some(prefix)) => prefix.to_vec(),
        _ => encode_segment_header(cfg.seed),
    };

    // ----- Replay journaled payments, exactly once. -----
    let mut recovery_payments = PaymentLog::new();
    for (slot, events) in &slots.groups {
        apply_payments(&mut recovery_payments, *slot, events);
    }

    // ----- Supervised re-drive from checkpoint + ledger. -----
    let resume_ceiling = slots.last_slot.map_or(0, |s| s + 1);
    let resume_from = checkpoints
        .iter()
        .rev()
        .find(|(slot, _)| *slot <= resume_ceiling)
        .map(|(slot, bytes)| (*slot, bytes.clone()))
        .unwrap_or_else(|| {
            (
                0,
                crate::checkpoint::encode_state(&sim.initial_state(&setup)),
            )
        });
    let supervisor_cfg = SupervisorConfig {
        max_restarts: plan.max_restarts,
        ..SupervisorConfig::default()
    };
    let outcome = mpr_durable::supervise(&supervisor_cfg, |_attempt| {
        replay_from(
            &sim,
            &setup,
            &resume_from,
            &slots,
            &image,
            recovery_payments.clone(),
            plan.fsync,
        )
    });
    totals.restarts = outcome.restarts();
    match outcome {
        Supervised::Completed { value, .. } => {
            let (mut report, replay) = value;
            totals.recovered_slots = replay.recovered_slots;
            totals.replay_divergence = replay.divergence;
            totals.ledger_reward_core_hours = replay.payments.total().get();
            totals.duplicate_payments_suppressed = replay.payments.duplicates_suppressed();
            totals.payments_journaled = replay.payments.payments();
            totals.records_journaled += replay.fresh_records;
            report.durability = Some(totals);
            Ok(DurableRun {
                report,
                wal_image: replay.wal_image,
            })
        }
        Supervised::Escalated { failures, .. } => {
            // Safe mode: the process-level end of the degradation ladder —
            // EQL capping, no market, no durability dependency.
            totals.safe_mode = true;
            let mut safe_cfg = cfg.clone();
            safe_cfg.algorithm = Algorithm::Eql;
            safe_cfg.durability = None;
            let safe = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                Simulation::new(trace, safe_cfg).run()
            }));
            match safe {
                Ok(mut report) => {
                    report.durability = Some(totals);
                    Ok(DurableRun {
                        report,
                        wal_image: image,
                    })
                }
                Err(_) => Err(LedgerError::Unrecoverable(format!(
                    "supervisor escalated after {} failures ({}); safe-mode run panicked too",
                    failures.len(),
                    failures.last().cloned().unwrap_or_default(),
                ))),
            }
        }
    }
}

/// Outcome of one successful recovery attempt.
struct ReplayOutcome {
    recovered_slots: u64,
    divergence: u64,
    payments: PaymentLog,
    fresh_records: u64,
    wal_image: Vec<u8>,
}

/// One supervised recovery attempt: restore the checkpoint, re-drive the
/// engine to completion, verify replayed slots against the journal,
/// journal post-commit slots into the recovered WAL, and finish the
/// report.
fn replay_from(
    sim: &Simulation<'_>,
    setup: &RunSetup,
    resume_from: &(u64, Vec<u8>),
    slots: &SlotGroups,
    image: &[u8],
    mut payments: PaymentLog,
    fsync: FsyncPolicy,
) -> Result<(SimReport, ReplayOutcome), String> {
    let (resume_slot, checkpoint_bytes) = resume_from;
    let mut state = crate::checkpoint::decode_state(checkpoint_bytes, sim, setup)
        .map_err(|e| format!("checkpoint restore failed: {e}"))?;
    if state.step as u64 != *resume_slot {
        return Err(format!(
            "checkpoint slot mismatch: expected {resume_slot}, restored {}",
            state.step
        ));
    }
    // The recovered WAL continues the committed prefix on a fault-free
    // disk: recovery must never inject fresh faults into bytes that
    // already survived a crash.
    let disk = FaultyDisk::with_image(DiskFaultConfig::default(), 0, image.to_vec());
    let mut wal = Wal::resume(disk, fsync, slots.next_seq);

    let last_committed = slots.last_slot;
    let mut journal: Vec<LedgerEvent> = Vec::new();
    let mut divergence = 0u64;
    let mut fresh_records = 0u64;
    let start_step = state.step;
    while !state.finished && state.step < setup.horizon_slots {
        let slot = state.step as u64;
        journal.clear();
        sim.step_slot_journaled(setup, &mut state, Some(&mut journal));
        apply_payments(&mut payments, slot, &journal);
        if last_committed.is_some_and(|c| slot <= c) {
            // Replayed slot: verify the recomputation against the journal
            // (the journaled group carries a trailing SlotCommit the
            // engine does not emit). Recomputed payments were suppressed
            // as duplicates by the exactly-once log above.
            let matches =
                slots
                    .groups
                    .iter()
                    .find(|(s, _)| *s == slot)
                    .is_some_and(|(_, journaled)| {
                        journaled.len() == journal.len() + 1
                            && journaled.iter().zip(journal.iter()).all(|(a, b)| a == b)
                    });
            if !matches {
                divergence += 1;
            }
        } else {
            // Fresh slot: journal it into the recovered WAL.
            for event in &journal {
                let (k, payload) = event.encode();
                if wal.append(k, &payload).is_ok() {
                    fresh_records += 1;
                }
            }
            let (k, payload) = LedgerEvent::SlotCommit { slot }.encode();
            if wal.append(k, &payload).is_ok() {
                fresh_records += 1;
            }
        }
    }
    // lint: allow(error-swallowing) replay runs over fault-injected storage by design; the wal image read back below reflects exactly what persisted
    let _ = wal.sync();
    let recovered_slots = (state.step - start_step) as u64;
    let report = sim.finish_report(setup, state);
    let mut storage = wal.into_storage();
    let wal_image = storage.read_all().unwrap_or_default();
    Ok((
        report,
        ReplayOutcome {
            recovered_slots,
            divergence,
            payments,
            fresh_records,
            wal_image,
        },
    ))
}

/// Applies a slot's journaled payments to an exactly-once log.
fn apply_payments(log: &mut PaymentLog, slot: u64, events: &[LedgerEvent]) {
    for event in events {
        if let LedgerEvent::Payment {
            participant,
            amount_core_hours,
            ..
        } = event
        {
            log.apply(
                PaymentKey {
                    slot,
                    participant: *participant,
                },
                CoreHours::new(*amount_core_hours),
            );
        }
    }
}

fn fill_disk_counters(totals: &mut DurabilityTotals, c: &DiskFaultCounters) {
    totals.disk_torn_writes = c.torn_writes;
    totals.disk_bit_flips = c.bit_flips;
    totals.disk_enospc = c.enospc_rejections;
    totals.disk_fsync_failures = c.fsync_failures;
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpr_durable::MemStorage;

    #[test]
    fn ledger_event_codec_round_trips() {
        let events = [
            LedgerEvent::PriceAnnounce {
                t_secs: 60.0,
                target_watts: 1234.5,
                price: 0.25,
            },
            LedgerEvent::BidArrival {
                participant: 17,
                reduction: 3.5,
                price: 0.125,
            },
            LedgerEvent::Clearing {
                kind: 1,
                target_watts: 900.0,
                delivered_watts: 890.5,
                degraded: true,
            },
            LedgerEvent::Payment {
                participant: 4,
                price: 0.3,
                reduction: 2.0,
                amount_core_hours: 0.01,
            },
            LedgerEvent::Emergency {
                kind: 0,
                t_secs: 120.0,
                target_watts: 55.0,
                price: 0.5,
            },
            LedgerEvent::Quarantine { participants: 3 },
            LedgerEvent::SlotCommit { slot: 42 },
        ];
        for event in &events {
            let (k, payload) = event.encode();
            let decoded = LedgerEvent::decode(k, &payload).expect("decode");
            assert_eq!(&decoded, event);
        }
    }

    #[test]
    fn decode_rejects_trailing_unknown_and_short() {
        let (k, mut payload) = LedgerEvent::SlotCommit { slot: 1 }.encode();
        payload.push(0);
        assert_eq!(LedgerEvent::decode(k, &payload), None, "trailing byte");
        assert_eq!(LedgerEvent::decode(250, &[]), None, "unknown kind");
        assert_eq!(LedgerEvent::decode(kind::PAYMENT, &[1, 2]), None, "short");
    }

    #[test]
    fn group_by_slot_cuts_uncommitted_tail() {
        // Two committed slots, then a dangling event without its commit.
        let mut wal = Wal::create(MemStorage::new(), 7, FsyncPolicy::Always).expect("create");
        let mk = |slot: u64| LedgerEvent::Quarantine { participants: slot };
        for slot in 0..2u64 {
            let (k, p) = mk(slot).encode();
            wal.append(k, &p).expect("append");
            let (k, p) = LedgerEvent::SlotCommit { slot }.encode();
            wal.append(k, &p).expect("append");
        }
        let (k, p) = mk(2).encode();
        wal.append(k, &p).expect("append dangling");
        let storage = wal.into_storage();
        let report = scan(storage.bytes(), Some(7));
        let slots = group_by_slot(&report.records);
        assert_eq!(slots.groups.len(), 2);
        assert_eq!(slots.last_slot, Some(1));
        assert_eq!(slots.next_seq, 4, "dangling record excluded");
        assert!(slots.committed_len < report.valid_len, "tail cut");
        assert_eq!(slots.committed_records, 4);
    }

    #[test]
    fn describe_is_total() {
        for event in [
            LedgerEvent::PriceAnnounce {
                t_secs: 0.0,
                target_watts: 0.0,
                price: 0.0,
            },
            LedgerEvent::Quarantine { participants: 1 },
            LedgerEvent::SlotCommit { slot: 0 },
        ] {
            assert!(!event.describe().is_empty());
        }
    }
}
