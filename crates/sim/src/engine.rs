//! The slot-driven simulation engine (Section IV-A, "Job simulation").
//!
//! The run loop is factored into an explicit [`EngineState`] advanced one
//! slot at a time, so the engine supports three execution modes over the
//! same per-slot code path: a plain [`run`](Simulation::run), a
//! checkpointed run
//! ([`run_with_checkpoints`](Simulation::run_with_checkpoints)) that
//! atomically persists the full state on a cadence (and can simulate a
//! crash at an injected kill point), and a
//! [`resume`](Simulation::resume) that restores a checkpoint and
//! continues to a `SimReport` bit-identical to the uninterrupted run.

use std::collections::{BTreeMap, VecDeque};
use std::path::Path;
use std::sync::Arc;

use mpr_apps::{AppProfile, NoisyCost, ProfileCost};
use mpr_core::bidding::StaticStrategy;
use mpr_core::mechanism::Clearing as MechanismClearing;
use mpr_core::{
    BiddingAgent, ByzantineAgent, ChainLevel, CostModel, CrashAgent, MarketInstance, Mechanism,
    NetGainAgent, ParticipantSpec, ResilientConfig, ResilientInteractiveMechanism, ScaledCost,
    SimNet, StaleAgent, SupplyFunction, TransportedInteractiveMechanism, UnresponsiveAgent, Watts,
};
use mpr_power::telemetry::{FaultySensor, PowerSensor, RobustEstimator};
use mpr_power::{
    EmergencyAction, EmergencyConfig, EmergencyController, HierarchicalMarket, Oversubscription,
    TopologySpec, TopologyState,
};
use mpr_workload::Trace;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::checkpoint::{self, CheckpointError, CheckpointPlan, RunOutcome};
use crate::config::{Algorithm, CostNoise, FaultPlan, NetPlan, SimConfig};
use crate::ledger::LedgerEvent;
use crate::report::{
    DegradationStats, EmergencyEvent, EmergencyEventKind, FederatedStats, ProfileStats, SimReport,
    TransportTotals,
};

/// Stream separator for the sensor fault RNG, so telemetry faults never
/// share draws with profile assignment or the job stream.
const SENSOR_SEED_XOR: u64 = 0x7e1e_6e74_0bad_5eed;

/// Stream separator for the virtual network's fault RNG, so channel faults
/// never share draws with agent-fault assignment within an overload event.
const NET_SEED_XOR: u64 = 0x6e65_745f_5eed_0bad;

/// A job currently executing in the simulated system.
pub(crate) struct ActiveJob {
    /// Index into the trace's job list (doubles as market id).
    pub(crate) idx: usize,
    pub(crate) cores: f64,
    pub(crate) profile: Arc<AppProfile>,
    /// Remaining work in full-speed seconds.
    pub(crate) remaining_secs: f64,
    pub(crate) nominal_secs: f64,
    pub(crate) exec_started_secs: f64,
    /// Current job-level resource reduction, cores.
    pub(crate) reduction: f64,
    /// Reward price attached to the current reduction (market algorithms).
    pub(crate) price: f64,
    pub(crate) participates: bool,
    /// The job's drawn cost coefficient. Stored so a checkpoint can
    /// rebuild the cost-model stack without consuming RNG.
    pub(crate) alpha: f64,
    /// The job's drawn cost-perception factor (see `NoisyCost`). Stored
    /// for the same reason as `alpha`.
    pub(crate) noise_factor: f64,
    /// The cost model the user bids from (possibly noisy), job-scaled.
    /// `Arc`'d so market instances share it without cloning the model.
    pub(crate) perceived: Arc<ScaledCost<NoisyCost<ProfileCost>>>,
    /// Ground-truth cost model for accounting, job-scaled. `Arc`'d for the
    /// same reason.
    pub(crate) true_cost: Arc<ScaledCost<ProfileCost>>,
    /// Pre-computed cooperative supply for MPR-STAT. `None` when no valid
    /// submission-time bid could be constructed (pathological cost model):
    /// the job then joins markets only through forced capping, and the run
    /// counts it in [`DegradationStats::bid_failures`] instead of aborting.
    pub(crate) static_supply: Option<SupplyFunction>,
    /// Phase offset for the per-job power oscillation, seconds.
    pub(crate) phase_offset: f64,
    pub(crate) affected: bool,
}

impl ActiveJob {
    fn per_core_reduction(&self) -> f64 {
        self.reduction / self.cores
    }

    /// Power drawn given the current per-job dynamic-power phase factor.
    fn power_w(&self, static_w_per_core: f64, phase: f64) -> f64 {
        self.cores * static_w_per_core
            + (self.cores - self.reduction) * self.profile.unit_dynamic_power_w() * phase
    }
}

/// Accumulators shared by the run loop.
#[derive(Default)]
pub(crate) struct Accounting {
    pub(crate) overload_slots: usize,
    pub(crate) overload_events: usize,
    pub(crate) unmet_emergencies: usize,
    pub(crate) jobs_started: usize,
    pub(crate) jobs_completed: usize,
    pub(crate) jobs_affected: usize,
    pub(crate) jobs_deferred: usize,
    pub(crate) reduction_ch: f64,
    pub(crate) cost_ch: f64,
    pub(crate) reward_ch: f64,
    pub(crate) int_iterations: usize,
    pub(crate) degradation: DegradationStats,
    pub(crate) fault_events: usize,
    pub(crate) transport: TransportTotals,
    pub(crate) stretch_sum_pct: f64,
    pub(crate) stretch_count: usize,
    pub(crate) per_profile: BTreeMap<String, ProfileStats>,
    pub(crate) per_profile_stretch: BTreeMap<String, (f64, usize)>,
    pub(crate) federated: FederatedStats,
}

/// Immutable per-run context derived from the trace and configuration.
pub(crate) struct RunSetup {
    pub(crate) slot: f64,
    pub(crate) slot_h: f64,
    pub(crate) static_w: f64,
    pub(crate) peak_w: f64,
    pub(crate) capacity_w: f64,
    pub(crate) profiles: Vec<Arc<AppProfile>>,
    pub(crate) horizon_slots: usize,
}

/// The telemetry pipeline state: the (possibly faulty) sensor and the
/// robust estimator digesting its feed.
pub(crate) struct TelemetryState {
    pub(crate) sensor: FaultySensor,
    pub(crate) estimator: RobustEstimator,
}

/// Everything that changes while the engine runs — the exact contents of a
/// checkpoint. Restoring these fields (plus the deterministic
/// [`RunSetup`]) reproduces the uninterrupted run bit-for-bit.
pub(crate) struct EngineState {
    /// Next slot to simulate.
    pub(crate) step: usize,
    /// Slots simulated so far.
    pub(crate) total_slots: usize,
    /// Next trace job not yet admitted.
    pub(crate) next_job: usize,
    /// Set when the workload is drained.
    pub(crate) finished: bool,
    /// The job-stream RNG (alpha, noise, participation, phase draws).
    pub(crate) rng: ChaCha8Rng,
    pub(crate) controller: EmergencyController,
    pub(crate) active: Vec<ActiveJob>,
    pub(crate) deferred: VecDeque<usize>,
    pub(crate) acc: Accounting,
    pub(crate) timeline: Option<crate::report::Timeline>,
    pub(crate) events: Vec<EmergencyEvent>,
    pub(crate) telemetry: Option<TelemetryState>,
}

/// A configured simulation over one trace.
pub struct Simulation<'a> {
    pub(crate) trace: &'a Trace,
    pub(crate) config: SimConfig,
}

impl<'a> Simulation<'a> {
    /// Binds a configuration to a trace.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has no application profiles or a
    /// non-positive slot length.
    #[must_use]
    pub fn new(trace: &'a Trace, config: SimConfig) -> Self {
        assert!(
            !config.profiles.is_empty(),
            "simulation needs at least one application profile"
        );
        assert!(config.slot_secs > 0.0, "slot_secs must be positive");
        Self { trace, config }
    }

    /// The reference peak power of the trace: every job running at its
    /// start time at full speed, with this config's profile assignment.
    /// Capacity is `peak · 100/(100+x)` (Section IV-A).
    #[must_use]
    pub fn reference_peak_watts(&self) -> Watts {
        let profiles = self.assign_profiles();
        let static_w = self.config.power_model.static_w_per_core();
        let slot = self.config.slot_secs;
        let span = self.trace.span_secs();
        let n = (span / slot).ceil() as usize;
        let mut diff = vec![0.0f64; n + 1];
        for (job, p) in self.trace.jobs().iter().zip(&profiles) {
            let w = f64::from(job.cores) * (static_w + p.unit_dynamic_power_w());
            let s = ((job.start_secs / slot).floor() as usize).min(n);
            let e = ((job.end_secs() / slot).ceil() as usize).clamp(s + 1, n.max(s + 1));
            if s < n {
                if let Some(d) = diff.get_mut(s) {
                    *d += w;
                }
                if let Some(d) = diff.get_mut(e.min(n)) {
                    *d -= w;
                }
            }
        }
        let mut acc = 0.0;
        let mut peak = 0.0f64;
        for d in diff.iter().take(n) {
            acc += d;
            peak = peak.max(acc);
        }
        Watts::new(peak)
    }

    fn assign_profiles(&self) -> Vec<Arc<AppProfile>> {
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);
        let profiles = &self.config.profiles;
        self.trace
            .jobs()
            .iter()
            .filter_map(|_| {
                let k = rng.gen_range(0..profiles.len());
                profiles.get(k).map(Arc::clone)
            })
            .collect()
    }

    /// Builds the immutable per-run context.
    pub(crate) fn setup(&self) -> RunSetup {
        let cfg = &self.config;
        let slot = cfg.slot_secs;
        let peak = self.reference_peak_watts();
        let capacity_w = cfg.capacity_watts_override.unwrap_or_else(|| {
            Oversubscription::percent(cfg.oversubscription_pct)
                .capacity(peak)
                .get()
        });
        RunSetup {
            slot,
            slot_h: slot / 3600.0,
            static_w: cfg.power_model.static_w_per_core(),
            peak_w: peak.get(),
            capacity_w,
            profiles: self.assign_profiles(),
            horizon_slots: ((self.trace.span_secs() / slot).ceil() as usize).saturating_mul(2)
                + 1440,
        }
    }

    /// The engine state at slot zero.
    pub(crate) fn initial_state(&self, setup: &RunSetup) -> EngineState {
        let cfg = &self.config;
        EngineState {
            step: 0,
            total_slots: 0,
            next_job: 0,
            finished: false,
            rng: ChaCha8Rng::seed_from_u64(cfg.seed ^ 0x9e37_79b9_7f4a_7c15),
            controller: EmergencyController::new(EmergencyConfig {
                capacity: Watts::new(setup.capacity_w),
                buffer_frac: cfg.buffer_frac,
                min_overload_secs: 0.0,
                cooldown_secs: cfg.cooldown_secs,
            }),
            active: Vec::new(),
            deferred: VecDeque::new(),
            acc: Accounting::default(),
            timeline: cfg.record_timeline.then(|| crate::report::Timeline {
                slot_secs: setup.slot,
                ..crate::report::Timeline::default()
            }),
            events: Vec::new(),
            telemetry: cfg.telemetry.map(|tc| TelemetryState {
                sensor: FaultySensor::new(tc.sensor, cfg.seed ^ SENSOR_SEED_XOR),
                estimator: RobustEstimator::new(tc.estimator),
            }),
        }
    }

    /// Runs the simulation to completion and returns the report.
    #[must_use]
    pub fn run(&self) -> SimReport {
        let setup = self.setup();
        let mut state = self.initial_state(&setup);
        while !state.finished && state.step < setup.horizon_slots {
            self.step_slot(&setup, &mut state);
        }
        self.finish_report(&setup, state)
    }

    /// Runs the simulation, atomically writing a checkpoint of the full
    /// engine state every `plan.every_slots` slots. When
    /// `plan.kill_at_slot` is set the run aborts *before* simulating that
    /// slot — state is dropped on the floor exactly as a crash would —
    /// and returns [`RunOutcome::Killed`]; [`resume`](Self::resume) picks
    /// the run back up from the last checkpoint on disk.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError`] when a checkpoint cannot be written.
    pub fn run_with_checkpoints(
        &self,
        plan: &CheckpointPlan,
    ) -> Result<RunOutcome, CheckpointError> {
        let setup = self.setup();
        let state = self.initial_state(&setup);
        self.drive(&setup, state, plan)
    }

    /// Restores the engine from a checkpoint file and drives the run to
    /// completion, producing a report bit-identical to the uninterrupted
    /// run. The simulation must be configured identically to the one that
    /// wrote the checkpoint (enforced by a config/trace fingerprint).
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError`] when the file is missing, corrupt, from
    /// an unsupported format version, or fingerprint-mismatched.
    pub fn resume(&self, path: &Path) -> Result<SimReport, CheckpointError> {
        let plan = CheckpointPlan::resume_only();
        match self.resume_with_checkpoints(path, &plan)? {
            RunOutcome::Completed(report) => Ok(report),
            RunOutcome::Killed { .. } => Err(CheckpointError::Malformed(
                "resume-only plan reported a kill point",
            )),
        }
    }

    /// Like [`resume`](Self::resume), but keeps honoring a checkpoint
    /// cadence (and kill point) while the resumed run proceeds.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError`] on restore or checkpoint-write failure.
    pub fn resume_with_checkpoints(
        &self,
        path: &Path,
        plan: &CheckpointPlan,
    ) -> Result<RunOutcome, CheckpointError> {
        let setup = self.setup();
        let state = checkpoint::read_checkpoint(path, self, &setup)?;
        self.drive(&setup, state, plan)
    }

    fn drive(
        &self,
        setup: &RunSetup,
        mut state: EngineState,
        plan: &CheckpointPlan,
    ) -> Result<RunOutcome, CheckpointError> {
        while !state.finished && state.step < setup.horizon_slots {
            // Slot 0 is checkpointed too: a kill before the first periodic
            // interval must still leave a resume point on disk.
            if plan.every_slots > 0 && state.step.is_multiple_of(plan.every_slots) {
                checkpoint::write_checkpoint(&plan.path, self, &state)?;
            }
            if plan.kill_at_slot == Some(state.step) {
                return Ok(RunOutcome::Killed {
                    at_slot: state.step,
                    checkpoint: plan.path.clone(),
                });
            }
            self.step_slot(setup, &mut state);
        }
        Ok(RunOutcome::Completed(self.finish_report(setup, state)))
    }

    /// Simulates one slot: admissions, power measurement and the emergency
    /// controller, overload accounting, job progress.
    fn step_slot(&self, setup: &RunSetup, state: &mut EngineState) {
        self.step_slot_journaled(setup, state, None);
    }

    /// [`step_slot`](Self::step_slot) with an optional market-event journal:
    /// when `journal` is provided, every market event of the slot (FSM
    /// transitions, price announcements, accepted bids, clearings,
    /// quarantines, payments) is pushed in deterministic order for the
    /// durable ledger (`crate::ledger`) to frame and persist. With `None`
    /// the slot computes exactly as it always has — journaling is a pure
    /// side channel and never influences simulation state.
    #[allow(clippy::too_many_lines)]
    pub(crate) fn step_slot_journaled(
        &self,
        setup: &RunSetup,
        state: &mut EngineState,
        mut journal: Option<&mut Vec<LedgerEvent>>,
    ) {
        let cfg = &self.config;
        let slot = setup.slot;
        let static_w = setup.static_w;
        let jobs = self.trace.jobs();
        let t = state.step as f64 * slot;

        // Time-varying capacity: the policy (demand response, carbon
        // caps) can only tighten the oversubscribed baseline.
        let capacity_now = cfg.capacity_policy.as_ref().map_or(setup.capacity_w, |p| {
            p.capacity_at(t).get().min(setup.capacity_w)
        });
        // Infrastructure faults shrink the usable tree: derate the flat
        // budget by the faulted min-cut fraction. The state is a pure
        // function of (plan, topology, t) — exactly 1.0 while healthy, so
        // fault-free slots (and whole fault-free runs) stay bit-identical.
        let capacity_now = match (cfg.active_grid_fault(), cfg.topology.as_ref()) {
            (Some(plan), Some(spec)) => {
                let grid = plan.state_at(spec, t);
                if grid.is_healthy() {
                    capacity_now
                } else {
                    state.acc.federated.grid_fault_slots += 1;
                    capacity_now * grid.capacity_frac()
                }
            }
            _ => capacity_now,
        };
        state.controller.set_capacity(Watts::new(capacity_now));
        let in_emergency = state.controller.phase().is_active();

        // 1. Arrivals. New starts are held during an emergency
        //    (Section III-E, "Executing resource/power reduction").
        while jobs.get(state.next_job).is_some_and(|j| j.start_secs <= t) {
            if in_emergency {
                state.deferred.push_back(state.next_job);
                state.acc.jobs_deferred += 1;
            } else if let Some(profile) = setup.profiles.get(state.next_job) {
                let job = self.start_job(state.next_job, profile, t, &mut state.rng);
                if job.static_supply.is_none() {
                    state.acc.degradation.bid_failures += 1;
                }
                state.active.push(job);
                state.acc.jobs_started += 1;
            }
            state.next_job += 1;
        }
        // Drain the deferred backlog at a bounded rate: releasing the
        // whole queue at once after a lift would dump its demand into a
        // single slot (thundering herd), while real resource managers
        // dispatch queued work at a finite pace. Up to 10 % of capacity
        // worth of queued jobs start per slot; the reactive loop absorbs
        // any overload this produces.
        if !in_emergency && !state.deferred.is_empty() {
            let mut budget = 0.10 * capacity_now;
            // Nominal (phase-free) estimates are good enough here. The first
            // queued job always starts, even when wider than the whole
            // per-slot budget: otherwise a job drawing more than 10 % of
            // capacity is starved until the arrival stream dries up, and its
            // late, stretched run can blow past the simulation horizon.
            let mut started_this_slot = false;
            while let Some(&idx) = state.deferred.front() {
                let (Some(p), Some(spec)) = (setup.profiles.get(idx), jobs.get(idx)) else {
                    state.deferred.pop_front();
                    continue;
                };
                let job_w = f64::from(spec.cores) * (static_w + p.unit_dynamic_power_w());
                if job_w <= budget || !started_this_slot {
                    started_this_slot = true;
                    let job = self.start_job(idx, p, t, &mut state.rng);
                    if job.static_supply.is_none() {
                        state.acc.degradation.bid_failures += 1;
                    }
                    state.active.push(job);
                    state.acc.jobs_started += 1;
                    budget -= job_w;
                    state.deferred.pop_front();
                } else {
                    break;
                }
            }
        }

        // 2. Measure power and drive the emergency controller. Per-job
        //    phases modulate the dynamic draw around nominal. When a
        //    telemetry pipeline is configured, the controller sees the
        //    robust estimator's conservative upper bound instead of the
        //    true power — never the raw (noisy, lossy) sensor feed.
        let phase_of = |j: &ActiveJob| -> f64 {
            if cfg.phase_amplitude <= 0.0 {
                1.0
            } else {
                1.0 + cfg.phase_amplitude
                    * (std::f64::consts::TAU * (t + j.phase_offset) / cfg.phase_period_secs).sin()
            }
        };
        let power_w: f64 = state
            .active
            .iter()
            .map(|j| j.power_w(static_w, phase_of(j)))
            .sum();
        let measured_w = match state.telemetry.as_mut() {
            Some(tel) => {
                let reading = tel.sensor.sample(t, Watts::new(power_w));
                tel.estimator.observe(t, reading).upper_bound.get()
            }
            None => power_w,
        };
        // Test-only chaos knob: with the FSM disabled the controller never
        // steps, so overload passes entirely unhandled — the seeded
        // violation `mpr-chaos`'s cap oracle must catch.
        let action = if cfg.emergency_disabled {
            EmergencyAction::None
        } else {
            state.controller.step(t, Watts::new(measured_w))
        };
        match action {
            action @ (EmergencyAction::Declare { .. } | EmergencyAction::Escalate { .. }) => {
                if state.controller.phase().is_active() {
                    state.acc.overload_events += 1;
                }
                let quarantined_before = state.acc.degradation.participants_quarantined;
                let target = state.controller.active_target().get();
                let (delivered, degraded) =
                    self.apply_algorithm(&mut state.active, target, t, &mut state.acc);
                state.controller.record_delivered(Watts::new(delivered));
                if degraded {
                    state.controller.mark_degraded();
                }
                if delivered < target * (1.0 - 1e-6) {
                    state.acc.unmet_emergencies += 1;
                }
                let max_price = state.active.iter().map(|j| j.price).fold(0.0, f64::max);
                let is_declare = matches!(action, EmergencyAction::Declare { .. });
                state.events.push(EmergencyEvent {
                    t_secs: t,
                    kind: if is_declare {
                        EmergencyEventKind::Declare
                    } else {
                        EmergencyEventKind::Escalate
                    },
                    target_watts: target,
                    price: max_price,
                });
                if let Some(j) = journal.as_deref_mut() {
                    let kind = u8::from(!is_declare);
                    j.push(LedgerEvent::Emergency {
                        kind,
                        t_secs: t,
                        target_watts: target,
                        price: max_price,
                    });
                    j.push(LedgerEvent::PriceAnnounce {
                        t_secs: t,
                        target_watts: target,
                        price: max_price,
                    });
                    for jb in state
                        .active
                        .iter()
                        .filter(|jb| jb.participates && jb.reduction > 0.0)
                    {
                        j.push(LedgerEvent::BidArrival {
                            participant: jb.idx as u64,
                            reduction: jb.reduction,
                            price: jb.price,
                        });
                    }
                    j.push(LedgerEvent::Clearing {
                        kind,
                        target_watts: target,
                        delivered_watts: delivered,
                        degraded,
                    });
                    let quarantined_delta = state
                        .acc
                        .degradation
                        .participants_quarantined
                        .saturating_sub(quarantined_before);
                    if quarantined_delta > 0 {
                        j.push(LedgerEvent::Quarantine {
                            participants: quarantined_delta as u64,
                        });
                    }
                }
            }
            EmergencyAction::Lift => {
                // Restore speeds; the deferred backlog drains gradually
                // from the next slot on (see the admission loop above).
                for j in &mut state.active {
                    j.reduction = 0.0;
                    j.price = 0.0;
                }
                state.events.push(EmergencyEvent {
                    t_secs: t,
                    kind: EmergencyEventKind::Lift,
                    target_watts: 0.0,
                    price: 0.0,
                });
                if let Some(j) = journal.as_deref_mut() {
                    j.push(LedgerEvent::Emergency {
                        kind: 2,
                        t_secs: t,
                        target_watts: 0.0,
                        price: 0.0,
                    });
                }
            }
            EmergencyAction::None => {}
        }

        // 3. Overload accounting. The "overloaded state" of Table I and
        //    Fig. 8 is demand-based: the power the active jobs would
        //    draw at full speed, regardless of in-force reductions.
        let reduction_w: f64 = state
            .active
            .iter()
            .map(|j| j.reduction * j.profile.unit_dynamic_power_w() * phase_of(j))
            .sum();
        // Keep the controller's view of the in-force reduction current: jobs
        // carrying reductions complete over time, and a lift decision that
        // compares headroom against the (stale) reduction recorded at
        // declare time can become unsatisfiable, wedging the system in
        // emergency with every new arrival deferred forever.
        if state.controller.phase().is_active() {
            state.controller.record_delivered(Watts::new(reduction_w));
        }
        let demand_w = power_w + reduction_w;
        if demand_w > capacity_now {
            state.acc.overload_slots += 1;
            for j in &mut state.active {
                j.affected = true;
            }
        }
        let max_price = state.active.iter().map(|j| j.price).fold(0.0, f64::max);
        if let Some(tl) = state.timeline.as_mut() {
            tl.power_w.push(power_w);
            tl.demand_w.push(demand_w);
            tl.capacity_w.push(capacity_now);
            tl.reduction_w.push(reduction_w);
            tl.price.push(max_price);
        }

        // 4. Progress and accounting.
        let mut i = 0;
        while i < state.active.len() {
            let Some(job) = state.active.get_mut(i) else {
                break;
            };
            let r = job.per_core_reduction();
            let perf = job.profile.performance(1.0 - r);
            job.remaining_secs -= perf * slot;
            if job.reduction > 0.0 {
                // True cost at the current reduction (includes the
                // job's own α).
                let cost_rate = job.true_cost.cost(job.reduction);
                state.acc.reduction_ch += job.reduction * setup.slot_h;
                state.acc.cost_ch += cost_rate * setup.slot_h;
                let stats = state
                    .acc
                    .per_profile
                    .entry(job.profile.name().to_owned())
                    .or_default();
                stats.reduction_core_hours += job.reduction * setup.slot_h;
                stats.cost_core_hours += cost_rate * setup.slot_h;
                if cfg.algorithm.is_market() {
                    let amount = job.price * job.reduction * setup.slot_h;
                    state.acc.reward_ch += amount;
                    if let Some(jr) = journal.as_deref_mut() {
                        jr.push(LedgerEvent::Payment {
                            participant: job.idx as u64,
                            price: job.price,
                            reduction: job.reduction,
                            amount_core_hours: amount,
                        });
                    }
                }
            }
            if job.remaining_secs <= 0.0 {
                // Fractional completion inside the slot.
                let overshoot = (-job.remaining_secs / perf.max(1e-9)).min(slot);
                let exec_time = t + slot - overshoot - job.exec_started_secs;
                let stretch_pct = 100.0 * (exec_time - job.nominal_secs) / job.nominal_secs;
                state.acc.jobs_completed += 1;
                let entry = state
                    .acc
                    .per_profile_stretch
                    .entry(job.profile.name().to_owned())
                    .or_insert((0.0, 0));
                entry.0 += stretch_pct.max(0.0);
                entry.1 += 1;
                if job.affected {
                    state.acc.jobs_affected += 1;
                    state.acc.stretch_sum_pct += stretch_pct.max(0.0);
                    state.acc.stretch_count += 1;
                }
                state.active.swap_remove(i);
            } else {
                i += 1;
            }
        }

        state.total_slots = state.step + 1;
        if state.next_job >= jobs.len() && state.active.is_empty() && state.deferred.is_empty() {
            state.finished = true;
        }
        state.step += 1;
    }

    fn start_job(
        &self,
        idx: usize,
        profile: &Arc<AppProfile>,
        now: f64,
        rng: &mut ChaCha8Rng,
    ) -> ActiveJob {
        let cfg = &self.config;
        let alpha = if cfg.alpha_spread > 0.0 {
            cfg.alpha * rng.gen_range(1.0..=1.0 + cfg.alpha_spread)
        } else {
            cfg.alpha
        };
        // Draw the perception factor exactly as the noise constructors do,
        // then keep the scalar: a checkpoint restore rebuilds the stack
        // from (alpha, noise_factor) without touching the RNG.
        let base = profile.cost_model(alpha);
        let noisy = match cfg.cost_noise {
            CostNoise::None => NoisyCost::new(base, 1.0),
            CostNoise::Random { magnitude } => NoisyCost::random_error(base, magnitude, rng),
            CostNoise::Underestimate { fraction } => NoisyCost::underestimate(base, fraction),
        };
        let noise_factor = noisy.factor();
        let mut job = self.rebuild_job(idx, profile, alpha, noise_factor);
        job.exec_started_secs = now;
        job.participates = rng.gen_bool(cfg.participation.clamp(0.0, 1.0));
        job.phase_offset = rng.gen_range(0.0..self.config.phase_period_secs.max(1.0));
        job
    }

    /// Constructs an [`ActiveJob`] from its drawn scalars, consuming no
    /// RNG. Fresh starts overwrite the dynamic fields immediately;
    /// checkpoint restore overwrites them from the snapshot.
    pub(crate) fn rebuild_job(
        &self,
        idx: usize,
        profile: &Arc<AppProfile>,
        alpha: f64,
        noise_factor: f64,
    ) -> ActiveJob {
        let (cores, runtime_secs) = self
            .trace
            .jobs()
            .get(idx)
            .map_or((0.0, 0.0), |j| (f64::from(j.cores), j.runtime_secs));
        let base = profile.cost_model(alpha);
        let noisy = NoisyCost::new(base.clone(), noise_factor);
        let perceived = Arc::new(ScaledCost::new(noisy, cores));
        let true_cost = Arc::new(ScaledCost::new(base, cores));
        // A failed cooperative bid falls back to a zero-bid (always-supply)
        // function; if even that is unconstructible the job carries no
        // static supply at all — recorded as a bid failure by the caller,
        // never a panic mid-run.
        let static_supply = StaticStrategy::Cooperative
            .supply_for(perceived.as_ref())
            .ok()
            .or_else(|| SupplyFunction::new(perceived.delta_max(), 0.0).ok());
        ActiveJob {
            idx,
            cores,
            profile: Arc::clone(profile),
            remaining_secs: runtime_secs,
            nominal_secs: runtime_secs,
            exec_started_secs: 0.0,
            reduction: 0.0,
            price: 0.0,
            participates: false,
            alpha,
            noise_factor,
            perceived,
            true_cost,
            static_supply,
            phase_offset: 0.0,
            affected: false,
        }
    }

    /// The market instance for one overload event. Market algorithms see
    /// only the participating jobs (rows carry bids and/or perceived-cost
    /// models); the OPT and EQL benchmarks see every active job with its
    /// ground-truth cost.
    fn build_instance(&self, active: &[ActiveJob]) -> MarketInstance {
        let row = |j: &ActiveJob, delta: f64| {
            ParticipantSpec::new(
                j.idx as u64,
                delta,
                Watts::new(j.profile.unit_dynamic_power_w()),
            )
        };
        match self.config.algorithm {
            Algorithm::MprStat => active
                .iter()
                .filter(|j| j.participates)
                .filter_map(|j| {
                    let supply = j.static_supply?;
                    Some(row(j, supply.delta_max()).with_bid(supply.bid()))
                })
                .collect(),
            Algorithm::MprInt => active
                .iter()
                .filter(|j| j.participates)
                .map(|j| row(j, j.perceived.delta_max()).with_cost(j.perceived.clone()))
                .collect(),
            Algorithm::Vcg => active
                .iter()
                .filter(|j| j.participates)
                .map(|j| row(j, j.true_cost.delta_max()).with_cost(j.true_cost.clone()))
                .collect(),
            Algorithm::Opt => active
                .iter()
                .map(|j| row(j, j.true_cost.delta_max()).with_cost(j.true_cost.clone()))
                .collect(),
            Algorithm::Eql => active
                .iter()
                .map(|j| row(j, j.true_cost.delta_max()).with_cores(j.cores))
                .collect(),
        }
    }

    /// Runs the configured algorithm for a cumulative reduction target and
    /// applies the resulting (absolute) reductions. Returns delivered watts
    /// and whether the clearing was degraded (produced by a fallback level
    /// of the resilient market's chain rather than a clean clearing).
    ///
    /// Every algorithm clears through the unified [`Mechanism`] interface
    /// over a shared [`MarketInstance`]; this function only decides which
    /// jobs form the instance and how the clearing maps back onto them.
    fn apply_algorithm(
        &self,
        active: &mut [ActiveJob],
        target_w: f64,
        t_secs: f64,
        acc: &mut Accounting,
    ) -> (f64, bool) {
        if active.is_empty() || target_w <= 0.0 {
            return (0.0, false);
        }
        if self.config.algorithm == Algorithm::MprInt {
            // A lossy network subsumes an agent-fault plan: the transported
            // exchange composes both (faulty agents behind a faulty channel).
            if let Some(plan) = self.config.net_plan.filter(NetPlan::is_active) {
                return self.apply_transported_int(active, target_w, acc, plan);
            }
            if let Some(plan) = self.config.fault_plan.filter(FaultPlan::is_active) {
                return self.apply_resilient_int(active, target_w, acc, plan);
            }
        }
        if self.config.is_federated() {
            if let Some(spec) = self.config.topology.clone() {
                return self.apply_federated(active, target_w, t_secs, acc, &spec);
            }
        }
        let instance = self.build_instance(active);
        let mut mechanism = crate::mechanism::for_algorithm(&self.config);
        let clearing = match mechanism.clear(&instance, Watts::new(target_w)) {
            Ok(clearing) => clearing,
            // Degenerate instance (no participating job could form a row)
            // or a solver failure: nothing clears, reductions stand.
            Err(_) => return (0.0, false),
        };
        self.apply_clearing(active, &instance, &clearing, acc)
    }

    /// Maps a clearing back onto the active jobs according to the
    /// configured algorithm's price discipline. Shared by the flat path
    /// and the federated path (whose merged clearing is positional over
    /// the same instance).
    fn apply_clearing(
        &self,
        active: &mut [ActiveJob],
        instance: &MarketInstance,
        clearing: &MechanismClearing,
        acc: &mut Accounting,
    ) -> (f64, bool) {
        match self.config.algorithm {
            Algorithm::MprStat => {
                // One uniform clearing price; every job sees it,
                // non-members shed nothing.
                (apply_uniform(active, instance, clearing, true), false)
            }
            Algorithm::MprInt => {
                acc.int_iterations += clearing.iterations();
                if clearing.diagnostics().capped_at_delta_max {
                    // Infeasible target: members cap at Δ and are paid
                    // their break-even unit cost; non-members keep their
                    // in-force reductions.
                    (apply_member_rows(active, instance, clearing), false)
                } else {
                    (apply_uniform(active, instance, clearing, true), false)
                }
            }
            // VCG pays per-job pivot prices, never one uniform price.
            Algorithm::Vcg => (apply_member_rows(active, instance, clearing), false),
            // OPT is the offline benchmark: reductions only, no market.
            Algorithm::Opt => (apply_uniform(active, instance, clearing, false), false),
            Algorithm::Eql => {
                let d = clearing.diagnostics();
                // Per-job Δ violations mean the uniform slowdown cannot
                // meet the target; the stop-every-core fallback
                // (`capped_at_delta_max`) is already counted by the
                // shortfall check in `step_slot`.
                if !d.accepted && !d.capped_at_delta_max {
                    acc.unmet_emergencies += 1;
                }
                (apply_uniform(active, instance, clearing, false), false)
            }
        }
    }

    /// Clears one overload event through the hierarchical federated
    /// market: the topology is scaled so the root's capacity deficit is
    /// exactly the controller's reduction target, instance rows are
    /// assigned to racks deterministically by job id, rack loads carry the
    /// rows' full-speed demand, and every oversubscribed node of the tree
    /// runs its own subtree market (same mechanism as the flat path). The
    /// merged clearing maps back onto the jobs exactly as a flat clearing
    /// would; per-level accounting lands in [`FederatedStats`].
    ///
    /// Under an active [`GridFaultPlan`](mpr_power::GridFaultPlan) the
    /// event clears against the faulted [`TopologyState`] instead of the
    /// raw spec: dead subtrees are fenced out of the hierarchy, their jobs
    /// reassigned to the nearest surviving sibling rack (quarantined when
    /// nothing survives), and surviving nodes clear at derated
    /// capacities. Once every fault is repaired the state is bit-identical
    /// to healthy, so post-repair clearing matches the never-faulted run
    /// exactly — the invariant the grid-repair chaos oracle checks.
    #[allow(clippy::too_many_lines)]
    fn apply_federated(
        &self,
        active: &mut [ActiveJob],
        target_w: f64,
        t_secs: f64,
        acc: &mut Accounting,
        spec: &TopologySpec,
    ) -> (f64, bool) {
        let instance = self.build_instance(active);
        let rack_ids = spec.rack_ids();
        let Some(&first_rack) = rack_ids.first() else {
            return (0.0, false);
        };
        if instance.is_empty() {
            return (0.0, false);
        }
        // Infrastructure state at this instant — a pure function of
        // (plan, topology, t), healthy when no plan is active.
        let grid_plan = self.config.active_grid_fault();
        let grid = grid_plan.as_ref().map_or_else(
            || TopologyState::healthy(spec),
            |plan| plan.state_at(spec, t_secs),
        );
        let faulted = !grid.is_healthy();
        let fencing = faulted && !self.config.grid_fencing_disabled;
        if faulted {
            acc.federated.fenced_nodes += grid.dead_count();
            acc.federated.derated_nodes += grid.derated_count();
        }
        if let Some(plan) = grid_plan {
            let last = plan.last_repair_secs(spec);
            if last.is_finite() && t_secs >= last {
                acc.federated.post_repair_events += 1;
            }
        }
        // Full-speed demand of each active job, by market id.
        let static_w = self.config.power_model.static_w_per_core();
        let demand_by_id: BTreeMap<u64, f64> = active
            .iter()
            .map(|j| {
                (
                    j.idx as u64,
                    j.cores * (static_w + j.profile.unit_dynamic_power_w()),
                )
            })
            .collect();
        // Deterministic job → rack placement: stable across slots and
        // resume, independent of arrival order. A job whose home rack is
        // fenced fails over to the nearest surviving sibling (same PDU
        // first, then the same UPS, widening to the whole tree).
        let mut assignment = Vec::with_capacity(instance.len());
        let mut rack_load: BTreeMap<usize, f64> = BTreeMap::new();
        let mut quarantined = 0usize;
        for id in instance.ids() {
            let home = rack_ids
                .get((*id as usize) % rack_ids.len())
                .copied()
                .unwrap_or(first_rack);
            let rack = if fencing && !grid.alive(home) {
                match grid.reassign_rack(home) {
                    Some(r) => {
                        acc.federated.reassigned_jobs += 1;
                        r
                    }
                    None => {
                        quarantined += 1;
                        home
                    }
                }
            } else {
                home
            };
            assignment.push(rack);
            *rack_load.entry(rack).or_insert(0.0) += demand_by_id.get(id).copied().unwrap_or(0.0);
        }
        if quarantined > 0 {
            // Reassignment only fails when no rack anywhere survives: the
            // tree is dark, no market can run. Reductions stand and the
            // shortfall surfaces as an unmet emergency.
            acc.federated.quarantined_jobs += quarantined;
            return (0.0, false);
        }
        let total_load: f64 = rack_load.values().sum();
        // Scale every capacity so the root's deficit equals the
        // controller's target (floored at a sliver of the load so a
        // target exceeding the whole demand still yields a valid tree).
        // The root's *derated* capacity anchors the scale, so inner
        // constraints keep their spec-relative proportions under faults.
        let root_cap_w = (total_load - target_w).max(total_load * 1e-3).max(1e-6);
        let root_spec_cap = grid.derated_capacity(0).get();
        if root_spec_cap <= 0.0 {
            return (0.0, false);
        }
        let scale = root_cap_w / root_spec_cap;
        // The fencing path prunes dead subtrees and derates survivors; on
        // a healthy state it is bit-identical to the plain spec build
        // with an identity map.
        let built = if self.config.grid_fencing_disabled {
            spec.to_hierarchy_scaled(scale)
                .map(|h| (h, (0..spec.nodes.len()).map(Some).collect::<Vec<_>>()))
        } else {
            grid.to_hierarchy_scaled(scale)
        };
        let Ok((mut hierarchy, map)) = built else {
            return (0.0, false);
        };
        for (rack, load) in &rack_load {
            let Some(&Some(mapped)) = map.get(*rack) else {
                return (0.0, false);
            };
            if hierarchy.set_load(mapped, Watts::new(*load)).is_err() {
                return (0.0, false);
            }
        }
        // Assignment in hierarchy ids (identity while healthy).
        let hier_assignment: Vec<usize> = assignment
            .iter()
            .map(|r| map.get(*r).copied().flatten().unwrap_or(*r))
            .collect();
        let Ok(market) = HierarchicalMarket::new(&hierarchy, hier_assignment.clone()) else {
            return (0.0, false);
        };
        let outcome =
            match market.clear(&instance, || crate::mechanism::for_algorithm(&self.config)) {
                Ok(outcome) => outcome,
                // Every subtree market failed: nothing clears,
                // reductions stand — same contract as the flat path.
                Err(_) => return (0.0, false),
            };
        acc.federated.absorb(&outcome);
        if grid_plan.is_some() {
            self.audit_grid_invariants(
                acc,
                &grid,
                &assignment,
                &hier_assignment,
                &hierarchy,
                &instance,
                &outcome,
            );
        }
        self.apply_clearing(active, &instance, &outcome.clearing, acc)
    }

    /// Post-clear audit of the grid-fault safety invariants, recorded in
    /// [`FederatedStats`] for the chaos oracles: (1) watts cleared through
    /// rows still assigned to dead racks (must be zero under fencing), and
    /// (2) the worst excess of any node's post-clear load over its derated
    /// capacity beyond its reported residual (must be ~zero always).
    #[allow(clippy::too_many_arguments)]
    fn audit_grid_invariants(
        &self,
        acc: &mut Accounting,
        grid: &mpr_power::TopologyState<'_>,
        assignment: &[usize],
        hier_assignment: &[usize],
        hierarchy: &mpr_power::PowerHierarchy,
        instance: &MarketInstance,
        outcome: &mpr_power::FederatedOutcome,
    ) {
        let wpu = instance.watts_per_unit_slice();
        let reductions = outcome.clearing.reductions();
        let dead_w: f64 = assignment
            .iter()
            .zip(reductions)
            .zip(wpu)
            .filter(|((rack, _), _)| !grid.alive(**rack))
            .map(|((_, r), w)| r * w)
            .sum();
        acc.federated.dead_cleared_watts += dead_w;
        for node in 0..hierarchy.len() {
            let racks = hierarchy.leaf_racks(node);
            let shed: f64 = hier_assignment
                .iter()
                .zip(reductions)
                .zip(wpu)
                .filter(|((rack, _), _)| racks.binary_search(rack).is_ok())
                .map(|((_, r), w)| r * w)
                .sum();
            let post = hierarchy.load_at(node).get() - shed;
            let residual = outcome
                .levels
                .iter()
                .find(|l| l.id == node)
                .map_or(0.0, |l| l.residual.get());
            let excess = post - hierarchy.capacity_of(node).get() - residual;
            if excess > acc.federated.derate_excess_watts {
                acc.federated.derate_excess_watts = excess;
            }
        }
    }

    /// MPR-INT under fault injection: wraps each participating agent in its
    /// planned faulty adapter and clears through the
    /// MPR-INT → MPR-STAT → EQL degradation [`FallbackChain`](mpr_core::FallbackChain),
    /// recording the degradation diagnostics into the accounting.
    fn apply_resilient_int(
        &self,
        active: &mut [ActiveJob],
        target_w: f64,
        acc: &mut Accounting,
        plan: FaultPlan,
    ) -> (f64, bool) {
        let cfg = &self.config;
        // One deterministic stream per overload event: fault assignment
        // depends only on (seed, event ordinal), never on wall progress.
        acc.fault_events += 1;
        let mut rng = ChaCha8Rng::seed_from_u64(
            cfg.seed ^ (acc.fault_events as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        );
        let mut level0 = ResilientInteractiveMechanism::new(ResilientConfig {
            interactive: crate::mechanism::interactive_config(cfg),
            max_retries: plan.max_retries,
            watchdog_window: plan.watchdog_window,
            divergence_min_change: plan.divergence_min_change,
        });
        for j in active.iter().filter(|j| j.participates) {
            let inner = NetGainAgent::new(
                j.idx as u64,
                j.perceived.clone(),
                Watts::new(j.profile.unit_dynamic_power_w()),
            );
            let agent = planned_agent(&plan, inner, &mut rng);
            level0.register(agent, j.static_supply.map(|s| s.bid()));
        }
        // An overload with zero participants clears nothing.
        if level0.is_empty() {
            return (0.0, false);
        }
        let instance = level0.instance();
        let mut chain = crate::mechanism::degradation_chain(level0);
        match chain.clear(&instance, Watts::new(target_w)) {
            Ok(clearing) => {
                let d = clearing.diagnostics();
                acc.int_iterations += d.iterations;
                acc.degradation.rounds_retried += d.retries;
                acc.degradation.participants_quarantined += d.quarantined.len();
                acc.degradation.residual_overload_watts += clearing.residual().get();
                if d.diverged {
                    acc.degradation.diverged_clearings += 1;
                }
                let level = d.chain_level.unwrap_or(ChainLevel::Interactive);
                match level {
                    ChainLevel::Interactive => {}
                    ChainLevel::StaticFallback => acc.degradation.static_fallbacks += 1,
                    ChainLevel::EqlCapping => acc.degradation.eql_cappings += 1,
                }
                acc.degradation.observe_chain_level(level);
                let delivered = apply_uniform(active, &instance, &clearing, true);
                (delivered, level > ChainLevel::Interactive)
            }
            Err(_) => (0.0, false),
        }
    }

    /// MPR-INT over a lossy virtual network: every price/bid exchange of
    /// the overload event runs through a seeded [`SimNet`] with the plan's
    /// drop/delay/duplicate/partition faults, under the manager's
    /// deadline/retry/straggler policy, and degrades through the
    /// MPR-INT-NET → MPR-STAT → EQL chain when the exchange fails. When an
    /// agent-fault plan is also active, agents are wrapped in their faulty
    /// adapters too (faulty agents behind a faulty channel). Transport
    /// diagnostics are absorbed into the accounting for the report.
    fn apply_transported_int(
        &self,
        active: &mut [ActiveJob],
        target_w: f64,
        acc: &mut Accounting,
        plan: NetPlan,
    ) -> (f64, bool) {
        let cfg = &self.config;
        // Same per-event seeding discipline as `apply_resilient_int`: both
        // the channel faults and any agent-fault assignment depend only on
        // (seed, event ordinal), so a resumed run replays them bit-for-bit.
        acc.fault_events += 1;
        let event_seed = cfg.seed ^ (acc.fault_events as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut rng = ChaCha8Rng::seed_from_u64(event_seed);
        let fault_plan = cfg.fault_plan.filter(FaultPlan::is_active);
        let resilient = ResilientConfig {
            interactive: crate::mechanism::interactive_config(cfg),
            ..fault_plan.map_or_else(ResilientConfig::default, |fp| ResilientConfig {
                max_retries: fp.max_retries,
                watchdog_window: fp.watchdog_window,
                divergence_min_change: fp.divergence_min_change,
                ..ResilientConfig::default()
            })
        };
        let net = SimNet::new(plan.fault_config(), event_seed ^ NET_SEED_XOR);
        let mut level0 =
            TransportedInteractiveMechanism::new(resilient, plan.transport_config(event_seed), net);
        for j in active.iter().filter(|j| j.participates) {
            let inner = NetGainAgent::new(
                j.idx as u64,
                j.perceived.clone(),
                Watts::new(j.profile.unit_dynamic_power_w()),
            );
            let agent = match fault_plan {
                Some(fp) => planned_agent(&fp, inner, &mut rng),
                None => Box::new(inner),
            };
            level0.register(agent, j.static_supply.map(|s| s.bid()));
        }
        // An overload with zero participants clears nothing.
        if level0.is_empty() {
            return (0.0, false);
        }
        let instance = level0.instance();
        let mut chain = crate::mechanism::transported_chain(level0);
        match chain.clear(&instance, Watts::new(target_w)) {
            Ok(clearing) => {
                let d = clearing.diagnostics();
                acc.int_iterations += d.iterations;
                acc.degradation.rounds_retried += d.retries;
                acc.degradation.participants_quarantined += d.quarantined.len();
                acc.degradation.residual_overload_watts += clearing.residual().get();
                if d.diverged {
                    acc.degradation.diverged_clearings += 1;
                }
                if let Some(t) = d.transport.as_ref() {
                    acc.transport.absorb(t);
                    // Each overload event builds a fresh channel, so its
                    // lifetime counters are exactly this clearing's share.
                    acc.transport.set_channel_totals(t.channel);
                }
                let level = d.chain_level.unwrap_or(ChainLevel::Interactive);
                match level {
                    ChainLevel::Interactive => {}
                    ChainLevel::StaticFallback => acc.degradation.static_fallbacks += 1,
                    ChainLevel::EqlCapping => acc.degradation.eql_cappings += 1,
                }
                acc.degradation.observe_chain_level(level);
                let delivered = apply_uniform(active, &instance, &clearing, true);
                (delivered, level > ChainLevel::Interactive)
            }
            Err(_) => (0.0, false),
        }
    }

    pub(crate) fn finish_report(&self, setup: &RunSetup, state: EngineState) -> SimReport {
        if std::env::var("MPR_DEBUG_UNFINISHED").is_ok() && !state.finished {
            for j in &state.active {
                eprintln!(
                    "UNFINISHED active idx {} cores {} remaining {:.0} nominal {:.0} exec_started {:.0} reduction {:.3}",
                    j.idx, j.cores, j.remaining_secs, j.nominal_secs, j.exec_started_secs, j.reduction
                );
            }
            for &idx in &state.deferred {
                eprintln!("UNFINISHED deferred idx {idx}");
            }
        }
        let EngineState {
            total_slots,
            mut acc,
            timeline,
            events,
            telemetry,
            ..
        } = state;
        let federated = self
            .config
            .is_federated()
            .then(|| std::mem::take(&mut acc.federated));
        let hours = total_slots as f64 * self.config.slot_secs / 3600.0;
        let x = self.config.oversubscription_pct;
        let extra_capacity = f64::from(self.trace.total_cores()) * (x / (100.0 + x)) * hours;
        for (name, (sum, count)) in &acc.per_profile_stretch {
            let stats = acc.per_profile.entry(name.clone()).or_default();
            stats.jobs = *count;
            stats.runtime_stretch_pct = if *count > 0 { sum / *count as f64 } else { 0.0 };
        }
        SimReport {
            trace_name: self.trace.name().to_owned(),
            algorithm: self.config.algorithm.to_string(),
            oversubscription_pct: x,
            total_slots,
            overload_slots: acc.overload_slots,
            overload_events: acc.overload_events,
            unmet_emergencies: acc.unmet_emergencies,
            jobs_total: acc.jobs_started,
            jobs_completed: acc.jobs_completed,
            jobs_affected: acc.jobs_affected,
            jobs_deferred: acc.jobs_deferred,
            reduction_core_hours: acc.reduction_ch,
            cost_core_hours: acc.cost_ch,
            reward_core_hours: acc.reward_ch,
            avg_runtime_increase_pct: if acc.stretch_count > 0 {
                acc.stretch_sum_pct / acc.stretch_count as f64
            } else {
                0.0
            },
            extra_capacity_core_hours: extra_capacity,
            capacity_watts: setup.capacity_w,
            peak_watts: setup.peak_w,
            int_iterations_total: acc.int_iterations,
            degradation: acc.degradation,
            per_profile: acc.per_profile,
            timeline,
            events,
            telemetry: telemetry.map(|tel| tel.estimator.health),
            transport: self
                .config
                .net_plan
                .filter(NetPlan::is_active)
                .map(|_| acc.transport),
            durability: None,
            federated,
        }
    }
}

/// Wraps a market agent in the faulty adapter the fault plan draws for it
/// (or returns it untouched). One uniform draw per agent partitions the
/// fault mix exactly as the plan's fractions specify; byzantine agents
/// consume one extra draw for their phase.
fn planned_agent<A: BiddingAgent + 'static>(
    plan: &FaultPlan,
    inner: A,
    rng: &mut ChaCha8Rng,
) -> Box<dyn BiddingAgent> {
    let u: f64 = rng.gen();
    let unresp_end = plan.unresponsive_frac;
    let crash_end = unresp_end + plan.crash_frac;
    let stale_end = crash_end + plan.stale_frac;
    let byz_end = stale_end + plan.byzantine_frac;
    if u < unresp_end {
        Box::new(UnresponsiveAgent::new(inner, 0))
    } else if u < crash_end {
        Box::new(CrashAgent::new(inner, 1))
    } else if u < stale_end {
        Box::new(StaleAgent::new(inner, 1))
    } else if u < byz_end {
        Box::new(ByzantineAgent::new(
            inner,
            plan.byzantine_factor,
            true,
            rng.gen(),
        ))
    } else {
        Box::new(inner)
    }
}

/// Applies a clearing uniformly: every active job takes its row's reduction
/// (zero when it has no row) and, when `set_price` is on, the one headline
/// clearing price — matching the uniform-price markets, where non-members
/// shed nothing but still observe the price.
fn apply_uniform(
    active: &mut [ActiveJob],
    instance: &MarketInstance,
    clearing: &MechanismClearing,
    set_price: bool,
) -> f64 {
    let by_id: BTreeMap<u64, f64> = instance
        .ids()
        .iter()
        .zip(clearing.reductions())
        .map(|(id, r)| (*id, *r))
        .collect();
    let price = clearing.price().get();
    let mut delivered = 0.0;
    for j in active.iter_mut() {
        let delta = by_id.get(&(j.idx as u64)).copied().unwrap_or(0.0);
        j.reduction = delta;
        if set_price {
            j.price = price;
        }
        delivered += delta * j.profile.unit_dynamic_power_w();
    }
    delivered
}

/// Applies a clearing's per-row reductions and per-row prices to the member
/// jobs only — jobs outside the instance keep their in-force reductions.
/// Used by discriminatory-price clearings (VCG payments, the capped
/// break-even fallback).
fn apply_member_rows(
    active: &mut [ActiveJob],
    instance: &MarketInstance,
    clearing: &MechanismClearing,
) -> f64 {
    let by_id: BTreeMap<u64, (f64, f64)> = instance
        .ids()
        .iter()
        .zip(clearing.reductions())
        .zip(clearing.participant_prices())
        .map(|((id, r), q)| (*id, (*r, *q)))
        .collect();
    let mut delivered = 0.0;
    for j in active.iter_mut() {
        if let Some(&(delta, price)) = by_id.get(&(j.idx as u64)) {
            j.reduction = delta;
            j.price = price;
            delivered += delta * j.profile.unit_dynamic_power_w();
        }
    }
    delivered
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TelemetryConfig;
    use mpr_power::telemetry::{EstimatorConfig, SensorFaultConfig};
    use mpr_workload::{ClusterSpec, Job, TraceGenerator};

    fn small_trace() -> Trace {
        TraceGenerator::new(ClusterSpec::gaia().with_span_days(5.0))
            .with_seed(3)
            .generate()
    }

    #[test]
    fn baseline_without_oversubscription_never_overloads() {
        let trace = small_trace();
        let report = Simulation::new(&trace, SimConfig::new(Algorithm::MprStat, 0.0)).run();
        assert_eq!(report.overload_slots, 0);
        assert_eq!(report.overload_events, 0);
        assert_eq!(report.cost_core_hours, 0.0);
        assert_eq!(report.reward_core_hours, 0.0);
        assert_eq!(report.jobs_total, trace.len());
        assert_eq!(report.jobs_completed, trace.len());
    }

    #[test]
    fn oversubscription_triggers_overloads_and_reductions() {
        let trace = small_trace();
        let report = Simulation::new(&trace, SimConfig::new(Algorithm::MprStat, 15.0)).run();
        assert!(report.overload_events > 0, "expected overloads at 15%");
        assert!(report.reduction_core_hours > 0.0);
        assert!(report.cost_core_hours > 0.0);
        assert!(report.reward_core_hours > 0.0);
        assert!(report.jobs_affected > 0);
        assert!(report.capacity_watts < report.peak_watts);
    }

    #[test]
    fn rewards_exceed_costs_for_cooperative_bidding() {
        // The paper's headline user guarantee (Fig. 11(a)).
        let trace = small_trace();
        let report = Simulation::new(&trace, SimConfig::new(Algorithm::MprStat, 15.0)).run();
        let pct = report.reward_pct_of_cost().expect("cost incurred");
        assert!(pct > 100.0, "reward must exceed cost, got {pct:.1}%");
    }

    #[test]
    fn eql_costs_more_than_markets_and_opt() {
        let trace = small_trace();
        let cost = |alg| {
            Simulation::new(&trace, SimConfig::new(alg, 15.0))
                .run()
                .cost_core_hours
        };
        let opt = cost(Algorithm::Opt);
        let eql = cost(Algorithm::Eql);
        let stat = cost(Algorithm::MprStat);
        let int = cost(Algorithm::MprInt);
        assert!(eql > opt, "EQL {eql:.1} must cost more than OPT {opt:.1}");
        assert!(
            eql > int,
            "EQL {eql:.1} must cost more than MPR-INT {int:.1}"
        );
        // MPR-INT tracks OPT closely (within 2x here; near-equal at scale).
        assert!(
            int <= opt * 2.0 + 1.0,
            "MPR-INT {int:.1} should be near OPT {opt:.1}"
        );
        assert!(stat >= opt * 0.99, "MPR-STAT should not beat OPT");
    }

    #[test]
    fn all_algorithms_reduce_similarly() {
        // Fig. 8(d): the required reduction is dictated by the overloads.
        let trace = small_trace();
        let red = |alg| {
            Simulation::new(&trace, SimConfig::new(alg, 15.0))
                .run()
                .reduction_core_hours
        };
        let opt = red(Algorithm::Opt);
        let stat = red(Algorithm::MprStat);
        assert!(opt > 0.0 && stat > 0.0);
        let ratio = stat / opt;
        assert!(
            (0.3..3.0).contains(&ratio),
            "reductions should be same order: OPT {opt:.1} vs STAT {stat:.1}"
        );
    }

    #[test]
    fn higher_oversubscription_increases_overloads() {
        // Deferral feedback makes per-level overload time noisy on short
        // traces; the end-to-end trend must still be strongly increasing.
        let trace = small_trace();
        let ov = |pct| {
            Simulation::new(&trace, SimConfig::new(Algorithm::Opt, pct))
                .run()
                .overload_time_pct()
        };
        let low = ov(5.0);
        let high = ov(20.0);
        assert!(
            high > 1.5 * low,
            "overload time must grow with oversubscription: {low} → {high}"
        );
    }

    #[test]
    fn int_iterations_are_recorded() {
        let trace = small_trace();
        let r = Simulation::new(&trace, SimConfig::new(Algorithm::MprInt, 15.0)).run();
        assert!(r.overload_events > 0);
        assert!(r.int_iterations_total > 0);
        assert!(r.int_iterations_avg() >= 1.0);
    }

    #[test]
    fn deferral_happens_during_long_emergencies() {
        let trace = small_trace();
        let r = Simulation::new(&trace, SimConfig::new(Algorithm::MprStat, 20.0)).run();
        // At 20 % oversubscription emergencies last ≥ 10 min; some of the
        // steady job stream must land inside one.
        assert!(r.jobs_deferred > 0);
        // Everybody still completes: deferred jobs are started on lift.
        assert_eq!(r.jobs_completed, r.jobs_total);
    }

    #[test]
    fn runtime_increase_is_small() {
        // Fig. 9(b): < 1 % average runtime increase.
        let trace = small_trace();
        let r = Simulation::new(&trace, SimConfig::new(Algorithm::MprStat, 15.0)).run();
        assert!(
            r.avg_runtime_increase_pct < 5.0,
            "runtime increase {} should be small",
            r.avg_runtime_increase_pct
        );
    }

    #[test]
    fn per_profile_stats_cover_reduced_profiles() {
        let trace = small_trace();
        let r = Simulation::new(&trace, SimConfig::new(Algorithm::Eql, 15.0)).run();
        assert!(!r.per_profile.is_empty());
        let total: f64 = r.per_profile.values().map(|s| s.reduction_core_hours).sum();
        assert!((total - r.reduction_core_hours).abs() < 1e-6);
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let trace = small_trace();
        let a = Simulation::new(&trace, SimConfig::new(Algorithm::MprStat, 15.0)).run();
        let b = Simulation::new(&trace, SimConfig::new(Algorithm::MprStat, 15.0)).run();
        assert_eq!(a, b);
    }

    #[test]
    fn lower_participation_increases_cost() {
        let trace = small_trace();
        let cost = |p: f64| {
            Simulation::new(
                &trace,
                SimConfig::new(Algorithm::MprStat, 15.0).with_participation(p),
            )
            .run()
            .cost_core_hours
        };
        let full = cost(1.0);
        let half = cost(0.5);
        assert!(
            half > full * 0.9,
            "cost at 50% participation ({half:.1}) should not be far below full ({full:.1})"
        );
    }

    #[test]
    fn single_job_trace_completes() {
        let trace = Trace::new("tiny", 100, vec![Job::new(1, 0.0, 1800.0, 10)]);
        let r = Simulation::new(&trace, SimConfig::new(Algorithm::Opt, 10.0)).run();
        assert_eq!(r.jobs_total, 1);
        assert_eq!(r.jobs_completed, 1);
    }

    #[test]
    fn power_phases_increase_overload_churn() {
        let trace = small_trace();
        let flat = Simulation::new(&trace, SimConfig::new(Algorithm::MprStat, 15.0)).run();
        let phased = Simulation::new(
            &trace,
            SimConfig::new(Algorithm::MprStat, 15.0).with_phases(0.25),
        )
        .run();
        // Phase oscillation makes demand noisier around the cap: at least
        // as many emergencies as the flat model.
        assert!(
            phased.overload_events + 5 >= flat.overload_events,
            "phased {} vs flat {}",
            phased.overload_events,
            flat.overload_events
        );
        // And the run is still fully accounted.
        assert_eq!(phased.jobs_total, phased.jobs_completed);
    }

    #[test]
    fn phase_amplitude_is_clamped() {
        let cfg = SimConfig::new(Algorithm::Opt, 10.0).with_phases(2.0);
        assert!(cfg.phase_amplitude < 1.0);
        let cfg = SimConfig::new(Algorithm::Opt, 10.0).with_phases(-1.0);
        assert_eq!(cfg.phase_amplitude, 0.0);
    }

    #[test]
    fn event_log_is_consistent() {
        use crate::report::EmergencyEventKind;
        let trace = small_trace();
        let r = Simulation::new(&trace, SimConfig::new(Algorithm::MprStat, 15.0)).run();
        let declares = r
            .events
            .iter()
            .filter(|e| e.kind == EmergencyEventKind::Declare)
            .count();
        assert_eq!(declares, r.overload_events);
        // Times are non-decreasing, declare events carry positive targets
        // and prices, lifts carry neither.
        for w in r.events.windows(2) {
            assert!(w[1].t_secs >= w[0].t_secs);
        }
        for e in &r.events {
            match e.kind {
                EmergencyEventKind::Declare | EmergencyEventKind::Escalate => {
                    assert!(e.target_watts > 0.0);
                    assert!(e.price > 0.0, "market algorithms price every event");
                }
                EmergencyEventKind::Lift => {
                    assert_eq!(e.target_watts, 0.0);
                    assert_eq!(e.price, 0.0);
                }
            }
        }
        // Every completed emergency lasts at least the cool-down.
        for d in r.emergency_durations_secs() {
            assert!(d >= 600.0 - 1e-9, "duration {d} below cool-down");
        }
    }

    #[test]
    fn timeline_recording() {
        let trace = small_trace();
        let r = Simulation::new(
            &trace,
            SimConfig::new(Algorithm::MprStat, 15.0).with_timeline(),
        )
        .run();
        let tl = r.timeline.as_ref().expect("timeline recorded");
        assert_eq!(tl.power_w.len(), r.total_slots);
        assert_eq!(tl.capacity_w.len(), r.total_slots);
        // Demand = power + reduction at every slot.
        for ((p, d), red) in tl.power_w.iter().zip(&tl.demand_w).zip(&tl.reduction_w) {
            assert!((p + red - d).abs() < 1e-6);
        }
        // Demand-overload slots in the timeline match the report.
        let over = tl
            .demand_w
            .iter()
            .zip(&tl.capacity_w)
            .filter(|(d, c)| d > c)
            .count();
        assert_eq!(over, r.overload_slots);
        // Prices are only nonzero during emergencies.
        assert!(tl.price.iter().any(|&q| q > 0.0));
    }

    #[test]
    fn capacity_policy_tightens_the_cap() {
        use mpr_power::FixedCapacity;
        use std::sync::Arc;
        let trace = small_trace();
        let base = Simulation::new(&trace, SimConfig::new(Algorithm::MprStat, 15.0));
        let peak = base.reference_peak_watts();
        let baseline = base.run();
        // A policy pinning capacity 5 % below the oversubscribed level.
        let tight = peak * (100.0 / 115.0 * 0.95);
        let policy = Arc::new(FixedCapacity(tight));
        let r = Simulation::new(
            &trace,
            SimConfig::new(Algorithm::MprStat, 15.0).with_capacity_policy(policy),
        )
        .run();
        assert!(
            r.overload_slots > baseline.overload_slots,
            "tighter capacity must overload more: {} vs {}",
            r.overload_slots,
            baseline.overload_slots
        );
        assert!(r.reduction_core_hours > baseline.reduction_core_hours);
    }

    #[test]
    fn fault_injection_quarantines_and_still_clears() {
        let trace = small_trace();
        let plan = crate::config::FaultPlan::unresponsive_and_crash(0.3, 0.1);
        let r = Simulation::new(
            &trace,
            SimConfig::new(Algorithm::MprInt, 15.0).with_faults(plan),
        )
        .run();
        assert!(
            r.overload_events > 0,
            "need overloads to inject faults into"
        );
        assert!(
            r.degradation.participants_quarantined > 0,
            "30%+10% fault rates must quarantine someone"
        );
        assert!(
            r.degradation.deepest_chain_level.is_some(),
            "chain level must be recorded"
        );
        // The degradation chain delivers min(target, attainable) at every
        // event, so no emergency goes unmet and no residual accumulates.
        assert_eq!(r.unmet_emergencies, 0, "chain must meet every target");
        assert_eq!(r.degradation.residual_overload_watts, 0.0);
        // The run itself stays healthy.
        assert_eq!(r.jobs_completed, r.jobs_total);
    }

    #[test]
    fn fault_injection_is_deterministic() {
        let trace = small_trace();
        let plan = crate::config::FaultPlan::unresponsive_and_crash(0.3, 0.1);
        let cfg = SimConfig::new(Algorithm::MprInt, 15.0).with_faults(plan);
        let a = Simulation::new(&trace, cfg.clone()).run();
        let b = Simulation::new(&trace, cfg).run();
        assert_eq!(a, b, "seeded fault injection must reproduce bit-for-bit");
    }

    #[test]
    fn clean_runs_report_no_degradation() {
        let trace = small_trace();
        let r = Simulation::new(&trace, SimConfig::new(Algorithm::MprInt, 15.0)).run();
        assert!(!r.degradation.any_degradation());
        assert_eq!(r.degradation.deepest_chain_level, None);
        assert_eq!(r.degradation.bid_failures, 0);
        // An all-zero plan is equivalent to no plan.
        let z = Simulation::new(
            &trace,
            SimConfig::new(Algorithm::MprInt, 15.0)
                .with_faults(crate::config::FaultPlan::default()),
        )
        .run();
        assert_eq!(z, r);
    }

    #[test]
    fn lossy_network_run_still_clears_and_records_transport_totals() {
        let trace = small_trace();
        let plan = crate::config::NetPlan::lossy(0.3);
        let r = Simulation::new(
            &trace,
            SimConfig::new(Algorithm::MprInt, 15.0).with_net(plan),
        )
        .run();
        assert!(r.overload_events > 0, "need overloads to exercise the net");
        let t = r.transport.expect("active net plan must report totals");
        assert!(t.clearings > 0, "every overload event clears over the net");
        assert!(t.rounds > 0);
        assert!(t.announces >= t.rounds, "each round announces to someone");
        assert!(
            t.replies_accepted > 0,
            "agents must get through at 30% loss"
        );
        assert!(t.messages_dropped > 0, "30% drop must lose messages");
        assert!(t.retransmits > 0, "losses must trigger retransmits");
        assert!(t.virtual_ticks > 0);
        // The resilient chain (ISSUE acceptance): under 30% drop the run
        // still meets every power-reduction target or reports the exact
        // residual — nothing goes silently unmet.
        assert_eq!(r.unmet_emergencies, 0, "chain must meet every target");
        assert_eq!(r.degradation.residual_overload_watts, 0.0);
        assert_eq!(r.jobs_completed, r.jobs_total);
    }

    #[test]
    fn lossy_network_run_is_deterministic() {
        let trace = small_trace();
        let cfg = SimConfig::new(Algorithm::MprInt, 15.0).with_net(crate::config::NetPlan {
            drop_prob: 0.25,
            duplicate_prob: 0.10,
            partition_prob: 0.05,
            ..crate::config::NetPlan::default()
        });
        let a = Simulation::new(&trace, cfg.clone()).run();
        let b = Simulation::new(&trace, cfg).run();
        assert_eq!(a, b, "seeded virtual network must reproduce bit-for-bit");
    }

    #[test]
    fn idle_net_plan_is_equivalent_to_no_plan() {
        let trace = small_trace();
        let clean = Simulation::new(&trace, SimConfig::new(Algorithm::MprInt, 15.0)).run();
        let idle = Simulation::new(
            &trace,
            SimConfig::new(Algorithm::MprInt, 15.0).with_net(crate::config::NetPlan::default()),
        )
        .run();
        assert_eq!(idle, clean);
        assert_eq!(idle.transport, None, "idle plan reports no totals");
    }

    #[test]
    fn net_plan_composes_with_an_agent_fault_plan() {
        let trace = small_trace();
        let r = Simulation::new(
            &trace,
            SimConfig::new(Algorithm::MprInt, 15.0)
                .with_net(crate::config::NetPlan::lossy(0.2))
                .with_faults(crate::config::FaultPlan::unresponsive_and_crash(0.3, 0.1)),
        )
        .run();
        assert!(r.overload_events > 0);
        assert!(r.transport.is_some(), "net totals present when composed");
        assert!(
            r.degradation.participants_quarantined > 0,
            "unresponsive agents must still be quarantined behind the net"
        );
        assert_eq!(r.unmet_emergencies, 0);
        assert_eq!(r.jobs_completed, r.jobs_total);
    }

    #[test]
    #[should_panic(expected = "at least one application profile")]
    fn empty_profiles_panic() {
        let trace = small_trace();
        let mut cfg = SimConfig::new(Algorithm::Opt, 10.0);
        cfg.profiles.clear();
        let _ = Simulation::new(&trace, cfg);
    }

    #[test]
    fn runs_without_telemetry_report_no_health() {
        let trace = small_trace();
        let r = Simulation::new(&trace, SimConfig::new(Algorithm::MprStat, 15.0)).run();
        assert_eq!(r.telemetry, None);
    }

    #[test]
    fn ideal_telemetry_with_passthrough_estimator_matches_direct_measurement() {
        // An ideal sensor through a pass-through estimator feeds the
        // controller the exact same floats as no telemetry at all: the
        // reports must be identical except for the health counters.
        let trace = small_trace();
        let direct = Simulation::new(&trace, SimConfig::new(Algorithm::MprStat, 15.0)).run();
        let mut piped = Simulation::new(
            &trace,
            SimConfig::new(Algorithm::MprStat, 15.0).with_telemetry(TelemetryConfig {
                sensor: SensorFaultConfig::default(),
                estimator: EstimatorConfig::passthrough(),
            }),
        )
        .run();
        let health = piped.telemetry.take().expect("telemetry health recorded");
        assert_eq!(health.samples_missed, 0);
        assert_eq!(health.outliers_rejected, 0);
        assert_eq!(health.samples_delivered, piped.total_slots);
        assert_eq!(piped, direct);
    }

    #[test]
    fn telemetry_faults_are_deterministic() {
        let trace = small_trace();
        let cfg = SimConfig::new(Algorithm::MprStat, 15.0).with_telemetry(
            TelemetryConfig::with_faults(SensorFaultConfig {
                noise_sigma_frac: 0.02,
                dropout_prob: 0.2,
                ..SensorFaultConfig::default()
            }),
        );
        let a = Simulation::new(&trace, cfg.clone()).run();
        let b = Simulation::new(&trace, cfg).run();
        assert_eq!(a, b, "seeded sensor faults must reproduce bit-for-bit");
        let health = a.telemetry.expect("health recorded");
        assert!(health.samples_missed > 0, "20% dropout must lose samples");
    }

    #[test]
    fn noisy_telemetry_still_controls_overloads() {
        let trace = small_trace();
        let r = Simulation::new(
            &trace,
            SimConfig::new(Algorithm::MprStat, 15.0).with_telemetry(TelemetryConfig::with_faults(
                SensorFaultConfig {
                    noise_sigma_frac: 0.03,
                    dropout_prob: 0.3,
                    ..SensorFaultConfig::default()
                },
            )),
        )
        .run();
        // The reactive loop still functions end to end on estimated power.
        assert!(r.overload_events > 0);
        assert!(r.reduction_core_hours > 0.0);
        assert_eq!(r.jobs_completed, r.jobs_total);
    }
}
