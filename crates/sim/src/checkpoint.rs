//! Crash-safe checkpoint/resume for long simulations.
//!
//! A checkpoint is a versioned, checksummed binary snapshot of the full
//! [`EngineState`] — job stream RNG position, active jobs (as their drawn
//! scalars, rebuilt RNG-free on restore), emergency-controller state,
//! accounting, timeline, event log and the telemetry pipeline. Snapshots
//! are written atomically (temp file + rename), so a crash mid-write can
//! never leave a torn checkpoint: the previous one survives intact.
//!
//! Resuming a run from any of its checkpoints produces a `SimReport`
//! **bit-identical** to the uninterrupted run — floats are stored via
//! their raw IEEE bits, and every RNG in the engine snapshots its exact
//! stream position.
//!
//! The file format:
//!
//! ```text
//! magic    8 B   "MPRCKPT\0"
//! version  u32   format version (currently 1)
//! fprint   u64   FNV-1a fingerprint of the config + trace
//! len      u64   payload length in bytes
//! checksum u64   FNV-1a over the payload
//! payload  ...   little-endian engine state
//! ```
//!
//! The fingerprint guards against resuming under a different
//! configuration or trace (which would silently diverge). A custom
//! [`CapacityPolicy`](mpr_power::CapacityPolicy) cannot be fingerprinted
//! through its trait object; only its presence is recorded — callers must
//! resume with the same policy.

use std::collections::VecDeque;
use std::fs;
use std::path::{Path, PathBuf};

use mpr_core::{ChainLevel, Watts};
use mpr_power::telemetry::{
    EstimatorConfig, FaultySensor, RobustEstimator, SensorFaultConfig, SensorReading, SplitMix64,
    TelemetryHealth,
};
use mpr_power::{ControllerState, EmergencyConfig, EmergencyController, EmergencyPhase};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::config::CostNoise;
use crate::engine::{Accounting, ActiveJob, EngineState, RunSetup, Simulation, TelemetryState};
use crate::report::{
    DegradationStats, EmergencyEvent, EmergencyEventKind, ProfileStats, SimReport, Timeline,
    TransportTotals,
};

const MAGIC: [u8; 8] = *b"MPRCKPT\0";
const VERSION: u32 = 5;
const HEADER_LEN: usize = 8 + 4 + 8 + 8 + 8;

/// Why a checkpoint could not be written or restored.
#[derive(Debug)]
#[non_exhaustive]
pub enum CheckpointError {
    /// Filesystem failure while reading or writing.
    Io(std::io::Error),
    /// The file does not start with the checkpoint magic.
    BadMagic,
    /// The file uses a format version this build cannot read.
    UnsupportedVersion(
        /// Version found in the file.
        u32,
    ),
    /// The payload checksum does not match (torn or corrupted file).
    ChecksumMismatch,
    /// The file ends before the encoded state does.
    Truncated,
    /// The payload decodes to structurally invalid state.
    Malformed(
        /// What was invalid.
        &'static str,
    ),
    /// The checkpoint was written by a simulation with a different
    /// configuration or trace.
    ConfigMismatch,
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::BadMagic => write!(f, "not a checkpoint file (bad magic)"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported checkpoint version {v} (this build reads {VERSION})"
                )
            }
            CheckpointError::ChecksumMismatch => {
                write!(f, "checkpoint checksum mismatch (corrupted file)")
            }
            CheckpointError::Truncated => write!(f, "checkpoint file is truncated"),
            CheckpointError::Malformed(what) => write!(f, "malformed checkpoint: {what}"),
            CheckpointError::ConfigMismatch => write!(
                f,
                "checkpoint was written under a different configuration or trace"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Where and how often to checkpoint, plus an optional injected kill
/// point for crash testing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointPlan {
    /// Checkpoint file path. Each write replaces the previous checkpoint
    /// atomically.
    pub path: PathBuf,
    /// Write a checkpoint every this many slots (0 disables writing).
    pub every_slots: usize,
    /// Abort the run just before simulating this slot, simulating a
    /// crash. Used by the kill/resume tests; `None` in production.
    pub kill_at_slot: Option<usize>,
}

impl CheckpointPlan {
    /// A plan writing to `path` every `every_slots` slots.
    pub fn every(path: impl Into<PathBuf>, every_slots: usize) -> Self {
        Self {
            path: path.into(),
            every_slots,
            kill_at_slot: None,
        }
    }

    /// Injects a kill point: the run aborts right before this slot.
    #[must_use]
    pub fn with_kill_at(mut self, slot: usize) -> Self {
        self.kill_at_slot = Some(slot);
        self
    }

    /// A plan that neither writes nor kills — used by plain resume.
    pub(crate) fn resume_only() -> Self {
        Self {
            path: PathBuf::new(),
            every_slots: 0,
            kill_at_slot: None,
        }
    }
}

/// How a checkpointed run ended.
///
/// A transient return value, so the report-sized variant is kept inline
/// rather than boxed.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum RunOutcome {
    /// The run finished; here is its report.
    Completed(SimReport),
    /// The injected kill point fired.
    Killed {
        /// Slot at which the run was killed.
        at_slot: usize,
        /// Path of the checkpoint file to resume from.
        checkpoint: PathBuf,
    },
}

impl RunOutcome {
    /// The report, when the run completed.
    #[must_use]
    pub fn into_report(self) -> Option<SimReport> {
        match self {
            RunOutcome::Completed(r) => Some(r),
            RunOutcome::Killed { .. } => None,
        }
    }
}

// ---------------------------------------------------------------------------
// FNV-1a and the little-endian codec.

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[derive(Default)]
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }
    fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }
    fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
    fn opt_f64(&mut self, v: Option<f64>) {
        match v {
            Some(x) => {
                self.u8(1);
                self.f64(x);
            }
            None => self.u8(0),
        }
    }
    fn f64s(&mut self, vs: &[f64]) {
        self.usize(vs.len());
        for &v in vs {
            self.f64(v);
        }
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self.pos.checked_add(n).ok_or(CheckpointError::Truncated)?;
        let s = self
            .buf
            .get(self.pos..end)
            .ok_or(CheckpointError::Truncated)?;
        self.pos = end;
        Ok(s)
    }
    fn array<const N: usize>(&mut self) -> Result<[u8; N], CheckpointError> {
        self.take(N)?
            .try_into()
            .map_err(|_| CheckpointError::Truncated)
    }
    fn u8(&mut self) -> Result<u8, CheckpointError> {
        let [b] = self.array()?;
        Ok(b)
    }
    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.array()?))
    }
    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.array()?))
    }
    fn u128(&mut self) -> Result<u128, CheckpointError> {
        Ok(u128::from_le_bytes(self.array()?))
    }
    fn usize(&mut self) -> Result<usize, CheckpointError> {
        usize::try_from(self.u64()?).map_err(|_| CheckpointError::Malformed("count overflow"))
    }
    /// A length that is about to drive an allocation: bounded by the
    /// remaining payload so corrupt counts cannot trigger huge allocs.
    fn len(&mut self) -> Result<usize, CheckpointError> {
        let n = self.usize()?;
        if n > self.buf.len().saturating_sub(self.pos) {
            return Err(CheckpointError::Truncated);
        }
        Ok(n)
    }
    fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn bool(&mut self) -> Result<bool, CheckpointError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CheckpointError::Malformed("invalid bool tag")),
        }
    }
    fn string(&mut self) -> Result<String, CheckpointError> {
        let n = self.len()?;
        String::from_utf8(self.take(n)?.to_vec())
            .map_err(|_| CheckpointError::Malformed("invalid UTF-8 string"))
    }
    fn opt_f64(&mut self) -> Result<Option<f64>, CheckpointError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.f64()?)),
            _ => Err(CheckpointError::Malformed("invalid option tag")),
        }
    }
    fn f64s(&mut self) -> Result<Vec<f64>, CheckpointError> {
        let n = self.len()?;
        let mut out = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            out.push(self.f64()?);
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Config/trace fingerprint.

/// FNV-1a fingerprint over everything that determines a run besides the
/// mutable engine state. Two simulations with equal fingerprints evolve
/// identically, so resuming across them is sound (modulo an uncheckable
/// custom capacity policy, whose presence alone is hashed).
pub(crate) fn fingerprint(sim: &Simulation<'_>) -> u64 {
    let cfg = &sim.config;
    let mut e = Enc::default();
    e.u8(match cfg.algorithm {
        crate::config::Algorithm::Opt => 0,
        crate::config::Algorithm::Eql => 1,
        crate::config::Algorithm::MprStat => 2,
        crate::config::Algorithm::MprInt => 3,
        crate::config::Algorithm::Vcg => 4,
    });
    // The resolved clearing mechanism (including the degradation-chain
    // shape under a fault plan): a checkpointed run can never resume under
    // a different `--mechanism`, even one that aliases the same algorithm
    // tag above.
    e.str(&crate::mechanism::descriptor(cfg));
    e.f64(cfg.oversubscription_pct);
    e.f64(cfg.slot_secs);
    e.f64(cfg.power_model.static_w_per_core());
    e.f64(cfg.power_model.dynamic_w_per_core());
    e.f64(cfg.buffer_frac);
    e.f64(cfg.cooldown_secs);
    e.f64(cfg.participation);
    e.f64(cfg.alpha);
    e.f64(cfg.alpha_spread);
    match cfg.cost_noise {
        CostNoise::None => {
            e.u8(0);
            e.f64(0.0);
        }
        CostNoise::Random { magnitude } => {
            e.u8(1);
            e.f64(magnitude);
        }
        CostNoise::Underestimate { fraction } => {
            e.u8(2);
            e.f64(fraction);
        }
    }
    e.usize(cfg.profiles.len());
    for p in &cfg.profiles {
        e.str(p.name());
        e.f64(p.unit_dynamic_power_w());
    }
    e.u64(cfg.seed);
    e.usize(cfg.int_max_iterations);
    e.opt_f64(cfg.capacity_watts_override);
    e.f64(cfg.phase_amplitude);
    e.f64(cfg.phase_period_secs);
    match cfg.fault_plan {
        Some(p) => {
            e.u8(1);
            e.f64(p.unresponsive_frac);
            e.f64(p.crash_frac);
            e.f64(p.stale_frac);
            e.f64(p.byzantine_frac);
            e.f64(p.byzantine_factor);
            e.usize(p.max_retries);
            e.usize(p.watchdog_window);
            e.f64(p.divergence_min_change);
        }
        None => e.u8(0),
    }
    // The transport/network plan changes every interactive clearing (fault
    // draws, deadlines, retry cadence), so resuming under different
    // `--net-*` flags must be rejected exactly like a mechanism mismatch.
    match cfg.net_plan {
        Some(p) => {
            e.u8(1);
            e.f64(p.drop_prob);
            e.f64(p.duplicate_prob);
            e.u64(p.min_delay_ticks);
            e.u64(p.max_delay_ticks);
            e.f64(p.partition_prob);
            e.u64(p.partition_ticks);
            e.u64(p.deadline_ticks);
            e.usize(p.max_attempts);
            e.usize(p.quarantine_after_misses);
        }
        None => e.u8(0),
    }
    match cfg.telemetry {
        Some(t) => {
            e.u8(1);
            enc_sensor_config(&mut e, &t.sensor);
            enc_estimator_config(&mut e, &t.estimator);
        }
        None => e.u8(0),
    }
    e.bool(cfg.record_timeline);
    e.bool(cfg.capacity_policy.is_some());
    e.bool(cfg.emergency_disabled);
    // The durability plan drives the ledger-journaling side channel (fsync
    // cadence, disk-fault draws, scripted kills), so resuming under
    // different `--wal-*` flags must be rejected (checkpoint V3).
    match cfg.durability {
        Some(d) => {
            e.u8(1);
            match d.fsync {
                mpr_durable::FsyncPolicy::Always => e.u8(0),
                mpr_durable::FsyncPolicy::EveryRecords(n) => {
                    e.u8(1);
                    e.u32(n);
                }
                mpr_durable::FsyncPolicy::Never => e.u8(2),
            }
            match d.disk {
                Some(p) => {
                    e.u8(1);
                    e.f64(p.torn_write_prob);
                    e.f64(p.bit_flip_prob);
                    e.f64(p.fsync_fail_prob);
                    match p.capacity_bytes {
                        Some(cap) => {
                            e.u8(1);
                            e.u64(cap);
                        }
                        None => e.u8(0),
                    }
                }
                None => e.u8(0),
            }
            match d.kill_at_slot {
                Some(s) => {
                    e.u8(1);
                    e.u64(s);
                }
                None => e.u8(0),
            }
            e.u64(d.checkpoint_every);
            e.u32(d.max_restarts);
        }
        None => e.u8(0),
    }
    // The chaos generator-space version: a checkpoint written by a campaign
    // scenario can only be resumed by a harness realizing the same space
    // (satellite of the chaos-campaign PR; see `mpr_chaos::SPACE_VERSION`).
    match cfg.scenario_space {
        Some(v) => {
            e.u8(1);
            e.u32(v);
        }
        None => e.u8(0),
    }
    // The power-tree topology and the federated flag change every overload
    // clearing (subtree targets, rack assignment), so a federated run can
    // only resume under the bit-identical tree (checkpoint V4).
    match &cfg.topology {
        Some(t) => {
            e.u8(1);
            e.u64(t.fingerprint());
        }
        None => e.u8(0),
    }
    e.bool(cfg.federated);
    // The grid-fault plan is a pure function of (plan, topology, t): no
    // fault state lives in `EngineState`, so fingerprinting the plan is
    // all that's needed for a bit-identical resume mid-fault-window —
    // and a resume under *different* `--tree-fault-*` flags must be
    // rejected here (checkpoint V5).
    match &cfg.grid_fault {
        Some(p) => {
            e.u8(1);
            e.u64(p.seed);
            e.f64(p.ups_failure_prob);
            e.f64(p.ats_derate_prob);
            e.f64(p.ats_derate_frac);
            e.f64(p.pdu_trip_prob);
            e.f64(p.derate_prob);
            e.f64(p.derate_floor);
            e.f64(p.onset_secs);
            e.f64(p.window_secs);
            e.f64(p.repair_secs);
        }
        None => e.u8(0),
    }
    e.bool(cfg.grid_fencing_disabled);
    e.str(sim.trace.name());
    e.u64(u64::from(sim.trace.total_cores()));
    e.usize(sim.trace.len());
    for j in sim.trace.jobs() {
        e.u64(j.id);
        e.f64(j.start_secs);
        e.f64(j.runtime_secs);
        e.u64(u64::from(j.cores));
    }
    fnv1a64(&e.buf)
}

fn enc_sensor_config(e: &mut Enc, c: &SensorFaultConfig) {
    e.f64(c.noise_sigma_frac);
    e.f64(c.dropout_prob);
    e.f64(c.stuck_prob);
    e.u32(c.stuck_polls);
    e.usize(c.delay_polls);
    e.f64(c.spike_prob);
    e.f64(c.spike_magnitude_frac);
}

fn enc_estimator_config(e: &mut Enc, c: &EstimatorConfig) {
    e.usize(c.window);
    e.f64(c.ewma_alpha);
    e.f64(c.outlier_frac);
    e.usize(c.outlier_streak);
    e.f64(c.stale_after_secs);
    e.f64(c.margin_frac);
    e.f64(c.stale_margin_frac);
}

// ---------------------------------------------------------------------------
// State encode/decode.

fn enc_reading(e: &mut Enc, r: &SensorReading) {
    e.f64(r.t_secs);
    e.f64(r.power.get());
}

fn dec_reading(d: &mut Dec<'_>) -> Result<SensorReading, CheckpointError> {
    Ok(SensorReading {
        t_secs: d.f64()?,
        power: Watts::new(d.f64()?),
    })
}

pub(crate) fn encode_state(state: &EngineState) -> Vec<u8> {
    let mut e = Enc::default();
    e.usize(state.step);
    e.usize(state.total_slots);
    e.usize(state.next_job);
    e.bool(state.finished);

    // Job-stream RNG: exact stream position.
    e.buf.extend_from_slice(&state.rng.get_seed());
    e.u64(state.rng.get_stream());
    e.u128(state.rng.get_word_pos());

    // Emergency controller.
    let cs = state.controller.state();
    e.f64(cs.config.capacity.get());
    e.f64(cs.config.buffer_frac);
    e.f64(cs.config.min_overload_secs);
    e.f64(cs.config.cooldown_secs);
    e.u8(match cs.phase {
        EmergencyPhase::Normal => 0,
        EmergencyPhase::Emergency => 1,
        EmergencyPhase::Degraded => 2,
    });
    e.opt_f64(cs.overload_since);
    e.opt_f64(cs.emergency_started);
    e.f64(cs.active_target.get());

    // Active jobs: drawn scalars + dynamic fields; cost models and the
    // profile Arc are rebuilt deterministically on restore.
    e.usize(state.active.len());
    for j in &state.active {
        e.usize(j.idx);
        e.f64(j.alpha);
        e.f64(j.noise_factor);
        e.f64(j.remaining_secs);
        e.f64(j.exec_started_secs);
        e.f64(j.reduction);
        e.f64(j.price);
        e.f64(j.phase_offset);
        e.bool(j.participates);
        e.bool(j.affected);
    }
    e.usize(state.deferred.len());
    for &idx in &state.deferred {
        e.usize(idx);
    }

    // Accounting.
    let acc = &state.acc;
    e.usize(acc.overload_slots);
    e.usize(acc.overload_events);
    e.usize(acc.unmet_emergencies);
    e.usize(acc.jobs_started);
    e.usize(acc.jobs_completed);
    e.usize(acc.jobs_affected);
    e.usize(acc.jobs_deferred);
    e.usize(acc.int_iterations);
    e.usize(acc.fault_events);
    e.usize(acc.stretch_count);
    e.f64(acc.reduction_ch);
    e.f64(acc.cost_ch);
    e.f64(acc.reward_ch);
    e.f64(acc.stretch_sum_pct);
    let deg = &acc.degradation;
    e.usize(deg.rounds_retried);
    e.usize(deg.participants_quarantined);
    e.usize(deg.static_fallbacks);
    e.usize(deg.eql_cappings);
    e.usize(deg.diverged_clearings);
    e.usize(deg.bid_failures);
    e.f64(deg.residual_overload_watts);
    e.u8(match deg.deepest_chain_level {
        None => 0,
        Some(ChainLevel::Interactive) => 1,
        Some(ChainLevel::StaticFallback) => 2,
        Some(ChainLevel::EqlCapping) => 3,
    });
    let t = &acc.transport;
    e.usize(t.clearings);
    e.usize(t.rounds);
    e.usize(t.announces);
    e.usize(t.retransmits);
    e.usize(t.replies_accepted);
    e.usize(t.duplicates_ignored);
    e.usize(t.late_replies_ignored);
    e.usize(t.invalid_replies);
    e.usize(t.straggler_rounds);
    e.usize(t.deadline_quarantines);
    e.u64(t.virtual_ticks);
    e.usize(t.messages_dropped);
    e.usize(t.messages_duplicated);
    e.usize(acc.per_profile.len());
    for (name, s) in &acc.per_profile {
        e.str(name);
        e.f64(s.reduction_core_hours);
        e.f64(s.cost_core_hours);
        e.f64(s.runtime_stretch_pct);
        e.usize(s.jobs);
    }
    e.usize(acc.per_profile_stretch.len());
    for (name, (sum, count)) in &acc.per_profile_stretch {
        e.str(name);
        e.f64(*sum);
        e.usize(*count);
    }
    let fed = &acc.federated;
    e.usize(fed.events);
    e.usize(fed.markets);
    e.usize(fed.rounds);
    e.usize(fed.infeasible_events);
    e.f64(fed.residual_watts);
    e.usize(fed.grid_fault_slots);
    e.usize(fed.fenced_nodes);
    e.usize(fed.derated_nodes);
    e.usize(fed.reassigned_jobs);
    e.usize(fed.quarantined_jobs);
    e.f64(fed.dead_cleared_watts);
    e.f64(fed.derate_excess_watts);
    e.usize(fed.post_repair_events);
    e.usize(fed.levels.len());
    for (name, lv) in &fed.levels {
        e.str(name);
        e.usize(lv.depth);
        e.usize(lv.markets);
        e.f64(lv.target_watts);
        e.f64(lv.cleared_watts);
        e.f64(lv.residual_watts);
        e.usize(lv.escalations);
    }

    // Timeline.
    match &state.timeline {
        Some(tl) => {
            e.u8(1);
            e.f64(tl.slot_secs);
            e.f64s(&tl.power_w);
            e.f64s(&tl.demand_w);
            e.f64s(&tl.capacity_w);
            e.f64s(&tl.reduction_w);
            e.f64s(&tl.price);
        }
        None => e.u8(0),
    }

    // Emergency events.
    e.usize(state.events.len());
    for ev in &state.events {
        e.f64(ev.t_secs);
        e.u8(match ev.kind {
            EmergencyEventKind::Declare => 0,
            EmergencyEventKind::Escalate => 1,
            EmergencyEventKind::Lift => 2,
        });
        e.f64(ev.target_watts);
        e.f64(ev.price);
    }

    // Telemetry pipeline.
    match &state.telemetry {
        Some(tel) => {
            e.u8(1);
            enc_sensor_config(&mut e, &tel.sensor.config);
            e.u64(tel.sensor.rng.state);
            e.usize(tel.sensor.delay_buf.len());
            for r in &tel.sensor.delay_buf {
                enc_reading(&mut e, r);
            }
            e.u32(tel.sensor.stuck_remaining);
            match &tel.sensor.held {
                Some(r) => {
                    e.u8(1);
                    enc_reading(&mut e, r);
                }
                None => e.u8(0),
            }
            enc_estimator_config(&mut e, &tel.estimator.config);
            let w: Vec<f64> = tel.estimator.window.iter().copied().collect();
            e.f64s(&w);
            e.opt_f64(tel.estimator.ewma);
            e.usize(tel.estimator.reject_streak);
            e.opt_f64(tel.estimator.last_reading_secs);
            e.usize(tel.estimator.health.samples_delivered);
            e.usize(tel.estimator.health.samples_missed);
            e.usize(tel.estimator.health.outliers_rejected);
            e.usize(tel.estimator.health.stale_polls);
        }
        None => e.u8(0),
    }

    e.buf
}

fn dec_sensor_config(d: &mut Dec<'_>) -> Result<SensorFaultConfig, CheckpointError> {
    Ok(SensorFaultConfig {
        noise_sigma_frac: d.f64()?,
        dropout_prob: d.f64()?,
        stuck_prob: d.f64()?,
        stuck_polls: d.u32()?,
        delay_polls: d.usize()?,
        spike_prob: d.f64()?,
        spike_magnitude_frac: d.f64()?,
    })
}

fn dec_estimator_config(d: &mut Dec<'_>) -> Result<EstimatorConfig, CheckpointError> {
    Ok(EstimatorConfig {
        window: d.usize()?,
        ewma_alpha: d.f64()?,
        outlier_frac: d.f64()?,
        outlier_streak: d.usize()?,
        stale_after_secs: d.f64()?,
        margin_frac: d.f64()?,
        stale_margin_frac: d.f64()?,
    })
}

pub(crate) fn decode_state(
    payload: &[u8],
    sim: &Simulation<'_>,
    setup: &RunSetup,
) -> Result<EngineState, CheckpointError> {
    let mut d = Dec::new(payload);
    let step = d.usize()?;
    let total_slots = d.usize()?;
    let next_job = d.usize()?;
    if next_job > sim.trace.len() {
        return Err(CheckpointError::Malformed("next_job beyond trace"));
    }
    let finished = d.bool()?;

    let seed: [u8; 32] = d.array()?;
    let stream = d.u64()?;
    let word_pos = d.u128()?;
    let mut rng = ChaCha8Rng::from_seed(seed);
    rng.set_stream(stream);
    rng.set_word_pos(word_pos);

    let controller_config = EmergencyConfig {
        capacity: Watts::new(d.f64()?),
        buffer_frac: d.f64()?,
        min_overload_secs: d.f64()?,
        cooldown_secs: d.f64()?,
    };
    let phase = match d.u8()? {
        0 => EmergencyPhase::Normal,
        1 => EmergencyPhase::Emergency,
        2 => EmergencyPhase::Degraded,
        _ => return Err(CheckpointError::Malformed("invalid emergency phase")),
    };
    let controller = EmergencyController::from_state(ControllerState {
        config: controller_config,
        phase,
        overload_since: d.opt_f64()?,
        emergency_started: d.opt_f64()?,
        active_target: Watts::new(d.f64()?),
    });

    let n_active = d.len()?;
    let mut active = Vec::with_capacity(n_active);
    for _ in 0..n_active {
        let idx = d.usize()?;
        let Some(profile) = setup.profiles.get(idx) else {
            return Err(CheckpointError::Malformed("job index beyond trace"));
        };
        let alpha = d.f64()?;
        let noise_factor = d.f64()?;
        if !noise_factor.is_finite() || noise_factor < 0.0 {
            return Err(CheckpointError::Malformed("invalid noise factor"));
        }
        let mut job: ActiveJob = sim.rebuild_job(idx, profile, alpha, noise_factor);
        job.remaining_secs = d.f64()?;
        job.exec_started_secs = d.f64()?;
        job.reduction = d.f64()?;
        job.price = d.f64()?;
        job.phase_offset = d.f64()?;
        job.participates = d.bool()?;
        job.affected = d.bool()?;
        active.push(job);
    }
    let n_deferred = d.len()?;
    let mut deferred = VecDeque::with_capacity(n_deferred);
    for _ in 0..n_deferred {
        let idx = d.usize()?;
        if idx >= sim.trace.len() {
            return Err(CheckpointError::Malformed("deferred index beyond trace"));
        }
        deferred.push_back(idx);
    }

    let mut acc = Accounting {
        overload_slots: d.usize()?,
        overload_events: d.usize()?,
        unmet_emergencies: d.usize()?,
        jobs_started: d.usize()?,
        jobs_completed: d.usize()?,
        jobs_affected: d.usize()?,
        jobs_deferred: d.usize()?,
        int_iterations: d.usize()?,
        fault_events: d.usize()?,
        stretch_count: d.usize()?,
        ..Accounting::default()
    };
    acc.reduction_ch = d.f64()?;
    acc.cost_ch = d.f64()?;
    acc.reward_ch = d.f64()?;
    acc.stretch_sum_pct = d.f64()?;
    acc.degradation = DegradationStats {
        rounds_retried: d.usize()?,
        participants_quarantined: d.usize()?,
        static_fallbacks: d.usize()?,
        eql_cappings: d.usize()?,
        diverged_clearings: d.usize()?,
        bid_failures: d.usize()?,
        residual_overload_watts: d.f64()?,
        deepest_chain_level: match d.u8()? {
            0 => None,
            1 => Some(ChainLevel::Interactive),
            2 => Some(ChainLevel::StaticFallback),
            3 => Some(ChainLevel::EqlCapping),
            _ => return Err(CheckpointError::Malformed("invalid chain level")),
        },
    };
    acc.transport = TransportTotals {
        clearings: d.usize()?,
        rounds: d.usize()?,
        announces: d.usize()?,
        retransmits: d.usize()?,
        replies_accepted: d.usize()?,
        duplicates_ignored: d.usize()?,
        late_replies_ignored: d.usize()?,
        invalid_replies: d.usize()?,
        straggler_rounds: d.usize()?,
        deadline_quarantines: d.usize()?,
        virtual_ticks: d.u64()?,
        messages_dropped: d.usize()?,
        messages_duplicated: d.usize()?,
    };
    let n_profiles = d.len()?;
    for _ in 0..n_profiles {
        let name = d.string()?;
        let stats = ProfileStats {
            reduction_core_hours: d.f64()?,
            cost_core_hours: d.f64()?,
            runtime_stretch_pct: d.f64()?,
            jobs: d.usize()?,
        };
        acc.per_profile.insert(name, stats);
    }
    let n_stretch = d.len()?;
    for _ in 0..n_stretch {
        let name = d.string()?;
        let sum = d.f64()?;
        let count = d.usize()?;
        acc.per_profile_stretch.insert(name, (sum, count));
    }
    acc.federated.events = d.usize()?;
    acc.federated.markets = d.usize()?;
    acc.federated.rounds = d.usize()?;
    acc.federated.infeasible_events = d.usize()?;
    acc.federated.residual_watts = d.f64()?;
    acc.federated.grid_fault_slots = d.usize()?;
    acc.federated.fenced_nodes = d.usize()?;
    acc.federated.derated_nodes = d.usize()?;
    acc.federated.reassigned_jobs = d.usize()?;
    acc.federated.quarantined_jobs = d.usize()?;
    acc.federated.dead_cleared_watts = d.f64()?;
    acc.federated.derate_excess_watts = d.f64()?;
    acc.federated.post_repair_events = d.usize()?;
    let n_levels = d.len()?;
    for _ in 0..n_levels {
        let name = d.string()?;
        let level = crate::report::FederatedLevelStats {
            depth: d.usize()?,
            markets: d.usize()?,
            target_watts: d.f64()?,
            cleared_watts: d.f64()?,
            residual_watts: d.f64()?,
            escalations: d.usize()?,
        };
        acc.federated.levels.insert(name, level);
    }

    let timeline = match d.u8()? {
        0 => None,
        1 => Some(Timeline {
            slot_secs: d.f64()?,
            power_w: d.f64s()?,
            demand_w: d.f64s()?,
            capacity_w: d.f64s()?,
            reduction_w: d.f64s()?,
            price: d.f64s()?,
        }),
        _ => return Err(CheckpointError::Malformed("invalid timeline tag")),
    };

    let n_events = d.len()?;
    let mut events = Vec::with_capacity(n_events);
    for _ in 0..n_events {
        let t_secs = d.f64()?;
        let kind = match d.u8()? {
            0 => EmergencyEventKind::Declare,
            1 => EmergencyEventKind::Escalate,
            2 => EmergencyEventKind::Lift,
            _ => return Err(CheckpointError::Malformed("invalid event kind")),
        };
        events.push(EmergencyEvent {
            t_secs,
            kind,
            target_watts: d.f64()?,
            price: d.f64()?,
        });
    }

    let telemetry = match d.u8()? {
        0 => None,
        1 => {
            let config = dec_sensor_config(&mut d)?;
            let rng_state = d.u64()?;
            let n_buf = d.len()?;
            let mut delay_buf = VecDeque::with_capacity(n_buf);
            for _ in 0..n_buf {
                delay_buf.push_back(dec_reading(&mut d)?);
            }
            let stuck_remaining = d.u32()?;
            let held = match d.u8()? {
                0 => None,
                1 => Some(dec_reading(&mut d)?),
                _ => return Err(CheckpointError::Malformed("invalid held tag")),
            };
            let sensor = FaultySensor {
                config,
                rng: SplitMix64 { state: rng_state },
                delay_buf,
                stuck_remaining,
                held,
            };
            let est_config = dec_estimator_config(&mut d)?;
            let window: VecDeque<f64> = d.f64s()?.into();
            let estimator = RobustEstimator {
                config: est_config,
                window,
                ewma: d.opt_f64()?,
                reject_streak: d.usize()?,
                last_reading_secs: d.opt_f64()?,
                health: TelemetryHealth {
                    samples_delivered: d.usize()?,
                    samples_missed: d.usize()?,
                    outliers_rejected: d.usize()?,
                    stale_polls: d.usize()?,
                },
            };
            Some(TelemetryState { sensor, estimator })
        }
        _ => return Err(CheckpointError::Malformed("invalid telemetry tag")),
    };

    if d.pos != payload.len() {
        return Err(CheckpointError::Malformed("trailing bytes"));
    }

    Ok(EngineState {
        step,
        total_slots,
        next_job,
        finished,
        rng,
        controller,
        active,
        deferred,
        acc,
        timeline,
        events,
        telemetry,
    })
}

// ---------------------------------------------------------------------------
// File I/O.

/// Atomically writes a checkpoint via the shared crash-durable helper
/// ([`mpr_durable::fsio::atomic_replace`]): the bytes go to a sibling temp
/// file which is fsynced and renamed over `path`, and the parent directory
/// is fsynced after the rename — so a crash mid-write leaves either the old
/// checkpoint or the new one, never a torn file, and the rename itself
/// survives power loss. (Pre-V3 the directory fsync was missing: a freshly
/// renamed checkpoint could vanish entirely on power loss.)
pub(crate) fn write_checkpoint(
    path: &Path,
    sim: &Simulation<'_>,
    state: &EngineState,
) -> Result<(), CheckpointError> {
    let payload = encode_state(state);
    let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len());
    bytes.extend_from_slice(&MAGIC);
    bytes.extend_from_slice(&VERSION.to_le_bytes());
    bytes.extend_from_slice(&fingerprint(sim).to_le_bytes());
    bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
    bytes.extend_from_slice(&payload);
    mpr_durable::fsio::atomic_replace(path, &bytes)?;
    Ok(())
}

/// A fixed-width little-endian header field at byte offset `at`.
fn header_field<const N: usize>(bytes: &[u8], at: usize) -> Result<[u8; N], CheckpointError> {
    bytes
        .get(at..at.saturating_add(N))
        .and_then(|s| s.try_into().ok())
        .ok_or(CheckpointError::Truncated)
}

/// Reads, validates and decodes a checkpoint into a ready-to-run
/// [`EngineState`].
pub(crate) fn read_checkpoint(
    path: &Path,
    sim: &Simulation<'_>,
    setup: &RunSetup,
) -> Result<EngineState, CheckpointError> {
    let bytes = fs::read(path)?;
    let magic_ok = bytes.get(..8).is_some_and(|m| *m == MAGIC);
    if bytes.len() < HEADER_LEN {
        return Err(if magic_ok {
            CheckpointError::Truncated
        } else {
            CheckpointError::BadMagic
        });
    }
    if !magic_ok {
        return Err(CheckpointError::BadMagic);
    }
    let version = u32::from_le_bytes(header_field(&bytes, 8)?);
    if version != VERSION {
        return Err(CheckpointError::UnsupportedVersion(version));
    }
    let fprint = u64::from_le_bytes(header_field(&bytes, 12)?);
    let payload_len = u64::from_le_bytes(header_field(&bytes, 20)?);
    let checksum = u64::from_le_bytes(header_field(&bytes, 28)?);
    let payload = bytes.get(HEADER_LEN..).ok_or(CheckpointError::Truncated)?;
    if payload.len() as u64 != payload_len {
        return Err(CheckpointError::Truncated);
    }
    if fnv1a64(payload) != checksum {
        return Err(CheckpointError::ChecksumMismatch);
    }
    if fprint != fingerprint(sim) {
        return Err(CheckpointError::ConfigMismatch);
    }
    decode_state(payload, sim, setup)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Algorithm, SimConfig, TelemetryConfig};
    use mpr_workload::{ClusterSpec, Trace, TraceGenerator};

    fn small_trace() -> Trace {
        TraceGenerator::new(ClusterSpec::gaia().with_span_days(5.0))
            .with_seed(3)
            .generate()
    }

    fn tmp_ckpt(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("mpr_ckpt_{}_{tag}.bin", std::process::id()))
    }

    #[test]
    fn kill_and_resume_reproduces_the_uninterrupted_run() {
        let trace = small_trace();
        let cfg = SimConfig::new(Algorithm::MprStat, 15.0).with_timeline();
        let full = Simulation::new(&trace, cfg.clone()).run();

        let path = tmp_ckpt("stat_resume");
        let plan = CheckpointPlan::every(&path, 400).with_kill_at(2000);
        let sim = Simulation::new(&trace, cfg);
        let outcome = sim.run_with_checkpoints(&plan).expect("checkpointed run");
        match outcome {
            RunOutcome::Killed { at_slot, .. } => assert_eq!(at_slot, 2000),
            RunOutcome::Completed(_) => panic!("kill point must fire"),
        }
        let resumed = sim.resume(&path).expect("resume");
        assert_eq!(resumed, full, "resumed report must be bit-identical");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn resume_mid_checkpoint_cadence_matches_plain_run() {
        // Kill between two checkpoint writes: the resumed run replays the
        // slots after the last checkpoint and still converges bit-exactly.
        let trace = small_trace();
        let cfg = SimConfig::new(Algorithm::Opt, 15.0);
        let full = Simulation::new(&trace, cfg.clone()).run();
        let path = tmp_ckpt("opt_midcadence");
        let sim = Simulation::new(&trace, cfg);
        let plan = CheckpointPlan::every(&path, 700).with_kill_at(1650);
        sim.run_with_checkpoints(&plan).expect("checkpointed run");
        let resumed = sim.resume(&path).expect("resume");
        assert_eq!(resumed, full);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn checkpointing_with_telemetry_round_trips() {
        let trace = small_trace();
        let cfg = SimConfig::new(Algorithm::MprStat, 15.0).with_telemetry(
            TelemetryConfig::with_faults(mpr_power::telemetry::SensorFaultConfig {
                noise_sigma_frac: 0.02,
                dropout_prob: 0.2,
                ..Default::default()
            }),
        );
        let full = Simulation::new(&trace, cfg.clone()).run();
        let path = tmp_ckpt("telemetry_resume");
        let sim = Simulation::new(&trace, cfg);
        let plan = CheckpointPlan::every(&path, 500).with_kill_at(1500);
        sim.run_with_checkpoints(&plan).expect("checkpointed run");
        let resumed = sim.resume(&path).expect("resume");
        assert_eq!(resumed, full, "telemetry state must round-trip exactly");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn completed_checkpointed_run_equals_plain_run() {
        let trace = small_trace();
        let cfg = SimConfig::new(Algorithm::Eql, 15.0);
        let full = Simulation::new(&trace, cfg.clone()).run();
        let path = tmp_ckpt("eql_completed");
        let sim = Simulation::new(&trace, cfg);
        let outcome = sim
            .run_with_checkpoints(&CheckpointPlan::every(&path, 1000))
            .expect("checkpointed run");
        assert_eq!(outcome.into_report().expect("completed"), full);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn corrupted_payload_is_rejected() {
        let trace = small_trace();
        let cfg = SimConfig::new(Algorithm::MprStat, 15.0);
        let path = tmp_ckpt("corrupt");
        let sim = Simulation::new(&trace, cfg);
        let plan = CheckpointPlan::every(&path, 400).with_kill_at(800);
        sim.run_with_checkpoints(&plan).expect("checkpointed run");
        let mut bytes = fs::read(&path).expect("checkpoint on disk");
        let flip = HEADER_LEN + 7;
        bytes[flip] ^= 0xff;
        fs::write(&path, &bytes).expect("rewrite");
        match sim.resume(&path) {
            Err(CheckpointError::ChecksumMismatch) => {}
            other => panic!("expected ChecksumMismatch, got {other:?}"),
        }
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn truncated_file_is_rejected() {
        let trace = small_trace();
        let cfg = SimConfig::new(Algorithm::MprStat, 15.0);
        let path = tmp_ckpt("trunc");
        let sim = Simulation::new(&trace, cfg);
        let plan = CheckpointPlan::every(&path, 400).with_kill_at(800);
        sim.run_with_checkpoints(&plan).expect("checkpointed run");
        let bytes = fs::read(&path).expect("checkpoint on disk");
        fs::write(&path, &bytes[..bytes.len() / 2]).expect("truncate");
        match sim.resume(&path) {
            Err(CheckpointError::Truncated) => {}
            other => panic!("expected Truncated, got {other:?}"),
        }
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn foreign_file_is_rejected() {
        let trace = small_trace();
        let path = tmp_ckpt("magic");
        fs::write(&path, b"definitely not a checkpoint file").expect("write");
        let sim = Simulation::new(&trace, SimConfig::new(Algorithm::MprStat, 15.0));
        match sim.resume(&path) {
            Err(CheckpointError::BadMagic) => {}
            other => panic!("expected BadMagic, got {other:?}"),
        }
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn unsupported_version_is_rejected() {
        let trace = small_trace();
        let cfg = SimConfig::new(Algorithm::MprStat, 15.0);
        let path = tmp_ckpt("version");
        let sim = Simulation::new(&trace, cfg);
        let plan = CheckpointPlan::every(&path, 400).with_kill_at(800);
        sim.run_with_checkpoints(&plan).expect("checkpointed run");
        let mut bytes = fs::read(&path).expect("checkpoint on disk");
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        fs::write(&path, &bytes).expect("rewrite");
        match sim.resume(&path) {
            Err(CheckpointError::UnsupportedVersion(99)) => {}
            other => panic!("expected UnsupportedVersion(99), got {other:?}"),
        }
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn different_config_is_rejected() {
        let trace = small_trace();
        let path = tmp_ckpt("mismatch");
        let writer = Simulation::new(&trace, SimConfig::new(Algorithm::MprStat, 15.0));
        let plan = CheckpointPlan::every(&path, 400).with_kill_at(800);
        writer
            .run_with_checkpoints(&plan)
            .expect("checkpointed run");
        // Same trace, different oversubscription: resuming would diverge.
        let reader = Simulation::new(&trace, SimConfig::new(Algorithm::MprStat, 20.0));
        match reader.resume(&path) {
            Err(CheckpointError::ConfigMismatch) => {}
            other => panic!("expected ConfigMismatch, got {other:?}"),
        }
        // The writer itself can still resume.
        assert!(writer.resume(&path).is_ok());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn resume_under_a_different_mechanism_is_rejected() {
        let trace = small_trace();
        let path = tmp_ckpt("mechanism-mismatch");
        let writer = Simulation::new(&trace, SimConfig::new(Algorithm::MprStat, 15.0));
        let plan = CheckpointPlan::every(&path, 400).with_kill_at(800);
        writer
            .run_with_checkpoints(&plan)
            .expect("checkpointed run");
        // Every other mechanism choice must be refused at restore time.
        for alg in [
            Algorithm::Opt,
            Algorithm::Eql,
            Algorithm::MprInt,
            Algorithm::Vcg,
        ] {
            let reader = Simulation::new(&trace, SimConfig::new(alg, 15.0));
            match reader.resume(&path) {
                Err(CheckpointError::ConfigMismatch) => {}
                other => panic!("{alg}: expected ConfigMismatch, got {other:?}"),
            }
        }
        assert!(writer.resume(&path).is_ok());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn fingerprint_is_sensitive_to_the_degradation_chain() {
        // Same algorithm tag, different resolved mechanism: an MPR-INT run
        // with an active fault plan clears through the degradation chain,
        // so its checkpoints must not be resumable by a clean MPR-INT run
        // (and vice versa).
        let trace = small_trace();
        let clean = Simulation::new(&trace, SimConfig::new(Algorithm::MprInt, 15.0));
        let chained = Simulation::new(
            &trace,
            SimConfig::new(Algorithm::MprInt, 15.0)
                .with_faults(crate::config::FaultPlan::unresponsive_and_crash(0.3, 0.1)),
        );
        assert_ne!(fingerprint(&clean), fingerprint(&chained));
    }

    #[test]
    fn federated_kill_and_resume_reproduces_the_uninterrupted_run() {
        let trace = small_trace();
        let spec = mpr_power::TopologySpec::parse(include_str!("../../../examples/tree.json"))
            .expect("sample topology");
        let cfg = SimConfig::new(Algorithm::MprStat, 15.0).with_topology(spec);
        let full = Simulation::new(&trace, cfg.clone()).run();
        assert!(
            full.federated.as_ref().is_some_and(|f| f.events > 0),
            "federated path must engage at 15% oversubscription"
        );
        let path = tmp_ckpt("federated_resume");
        let sim = Simulation::new(&trace, cfg);
        let plan = CheckpointPlan::every(&path, 400).with_kill_at(2000);
        sim.run_with_checkpoints(&plan).expect("checkpointed run");
        let resumed = sim.resume(&path).expect("resume");
        assert_eq!(resumed, full, "federated state must round-trip exactly");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn grid_fault_kill_and_resume_mid_window_is_bit_identical() {
        // The fault schedule is a pure function of (plan, topology, t),
        // so a checkpoint taken while a UPS is dark carries no fault
        // state at all — the resumed run must still be bit-identical to
        // the uninterrupted one, fences and all.
        let trace = small_trace();
        let spec = mpr_power::TopologySpec::parse(include_str!("../../../examples/tree.json"))
            .expect("sample topology");
        let plan = mpr_power::GridFaultPlan {
            ups_failure_prob: 1.0,
            window_secs: 0.0,
            repair_secs: 100_000.0,
            ..mpr_power::GridFaultPlan::default()
        };
        let cfg = SimConfig::new(Algorithm::MprStat, 15.0)
            .with_topology(spec)
            .with_grid_faults(plan);
        let full = Simulation::new(&trace, cfg.clone()).run();
        let fed = full.federated.as_ref().expect("federated stats");
        assert!(
            fed.fenced_nodes > 0,
            "the always-on UPS failure must fence nodes during the run"
        );
        let path = tmp_ckpt("grid_fault_resume");
        let sim = Simulation::new(&trace, cfg);
        // 2000 slots × 60 s = 120 000 s: well inside the fault windows of
        // a plan whose repairs land at ~150 000–250 000 s.
        let plan_ck = CheckpointPlan::every(&path, 400).with_kill_at(2000);
        sim.run_with_checkpoints(&plan_ck)
            .expect("checkpointed run");
        let resumed = sim.resume(&path).expect("resume");
        assert_eq!(
            resumed, full,
            "resume mid-fault-window must be bit-identical"
        );
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn resume_under_a_different_grid_fault_plan_is_rejected() {
        let trace = small_trace();
        let spec = mpr_power::TopologySpec::parse(include_str!("../../../examples/tree.json"))
            .expect("sample topology");
        let plan = mpr_power::GridFaultPlan::ups_outage(0.8);
        let path = tmp_ckpt("grid-fault-mismatch");
        let writer = Simulation::new(
            &trace,
            SimConfig::new(Algorithm::MprStat, 15.0)
                .with_topology(spec.clone())
                .with_grid_faults(plan),
        );
        let plan_ck = CheckpointPlan::every(&path, 400).with_kill_at(800);
        writer
            .run_with_checkpoints(&plan_ck)
            .expect("checkpointed run");
        // A different seed, a different fault mix, a fault-free run, and
        // a fencing-disabled run all change what every overload event
        // cleared — each must be refused at restore time.
        let mut reseeded = plan;
        reseeded.seed ^= 1;
        let mut pdu = plan;
        pdu.pdu_trip_prob = 0.5;
        let base = || SimConfig::new(Algorithm::MprStat, 15.0).with_topology(spec.clone());
        let readers = [
            Simulation::new(&trace, base().with_grid_faults(reseeded)),
            Simulation::new(&trace, base().with_grid_faults(pdu)),
            Simulation::new(&trace, base()),
            Simulation::new(
                &trace,
                base().with_grid_faults(plan).with_grid_fencing_disabled(),
            ),
        ];
        for reader in &readers {
            match reader.resume(&path) {
                Err(CheckpointError::ConfigMismatch) => {}
                other => panic!("expected ConfigMismatch, got {other:?}"),
            }
        }
        assert!(writer.resume(&path).is_ok());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn resume_under_a_different_topology_is_rejected() {
        let trace = small_trace();
        let spec = mpr_power::TopologySpec::parse(include_str!("../../../examples/tree.json"))
            .expect("sample topology");
        let mut other = spec.clone();
        other.nodes[1].capacity = Watts::new(spec.nodes[1].capacity.get() * 0.5);
        let path = tmp_ckpt("topology-mismatch");
        let writer = Simulation::new(
            &trace,
            SimConfig::new(Algorithm::MprStat, 15.0).with_topology(spec.clone()),
        );
        let plan = CheckpointPlan::every(&path, 400).with_kill_at(800);
        writer
            .run_with_checkpoints(&plan)
            .expect("checkpointed run");
        // A different tree, a flat run, and a federated-flag-off run must
        // all be refused at restore time.
        let different_tree = Simulation::new(
            &trace,
            SimConfig::new(Algorithm::MprStat, 15.0).with_topology(other),
        );
        let flat = Simulation::new(&trace, SimConfig::new(Algorithm::MprStat, 15.0));
        let mut flag_off_cfg = SimConfig::new(Algorithm::MprStat, 15.0).with_topology(spec);
        flag_off_cfg.federated = false;
        let flag_off = Simulation::new(&trace, flag_off_cfg);
        for reader in [&different_tree, &flat, &flag_off] {
            match reader.resume(&path) {
                Err(CheckpointError::ConfigMismatch) => {}
                other => panic!("expected ConfigMismatch, got {other:?}"),
            }
        }
        assert!(writer.resume(&path).is_ok());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn missing_file_reports_io_error() {
        let trace = small_trace();
        let sim = Simulation::new(&trace, SimConfig::new(Algorithm::MprStat, 15.0));
        match sim.resume(Path::new("/nonexistent/mpr.ckpt")) {
            Err(CheckpointError::Io(_)) => {}
            other => panic!("expected Io, got {other:?}"),
        }
    }

    #[test]
    fn fingerprint_is_sensitive_to_seed_and_trace() {
        let trace = small_trace();
        let a = Simulation::new(&trace, SimConfig::new(Algorithm::MprStat, 15.0));
        let b = Simulation::new(
            &trace,
            SimConfig::new(Algorithm::MprStat, 15.0).with_seed(1),
        );
        assert_ne!(fingerprint(&a), fingerprint(&b));
        let other = TraceGenerator::new(ClusterSpec::gaia().with_span_days(5.0))
            .with_seed(4)
            .generate();
        let c = Simulation::new(&other, SimConfig::new(Algorithm::MprStat, 15.0));
        assert_ne!(fingerprint(&a), fingerprint(&c));
        let same = Simulation::new(&trace, SimConfig::new(Algorithm::MprStat, 15.0));
        assert_eq!(fingerprint(&a), fingerprint(&same));
    }

    #[test]
    fn error_display_is_informative() {
        let s = CheckpointError::UnsupportedVersion(7).to_string();
        assert!(s.contains('7'));
        assert!(CheckpointError::BadMagic.to_string().contains("magic"));
        assert!(CheckpointError::ConfigMismatch
            .to_string()
            .contains("configuration"));
    }
}
