//! Mechanism selection: maps the configured [`Algorithm`] onto the unified
//! [`Mechanism`] interface from `mpr_core::mechanism`.
//!
//! The engine never talks to a solver directly — every clearing goes
//! through `Mechanism::clear` over a shared
//! [`MarketInstance`](mpr_core::MarketInstance), and the choice of solver
//! is made here, in one place. The simulator always uses the best-effort
//! variants: an infeasible reduction target must degrade (cap at `Δ_m`),
//! never abort the run.

use mpr_core::{
    ChainLevel, EqlCappingMechanism, EqlMechanism, FallbackChain, InteractiveConfig,
    InteractiveMechanism, MclrMechanism, Mechanism, OptMechanism, OptMethod,
    ResilientInteractiveMechanism, SimNet, TransportedInteractiveMechanism, VcgMechanism,
};

use crate::config::{Algorithm, FaultPlan, NetPlan, SimConfig};

/// The engine's interactive-market tuning for a configuration.
pub(crate) fn interactive_config(cfg: &SimConfig) -> InteractiveConfig {
    InteractiveConfig {
        max_iterations: cfg.int_max_iterations,
        ..InteractiveConfig::default()
    }
}

/// The best-effort mechanism implementing the configured algorithm.
///
/// MPR-INT under an active fault plan is not built here: the resilient
/// degradation chain needs live agents, which only the engine can provide
/// per overload event (see [`degradation_chain`]).
#[must_use]
pub fn for_algorithm(cfg: &SimConfig) -> Box<dyn Mechanism> {
    match cfg.algorithm {
        Algorithm::Opt => Box::new(OptMechanism::best_effort(OptMethod::Auto)),
        Algorithm::Eql => Box::new(EqlMechanism),
        Algorithm::MprStat => Box::new(MclrMechanism::best_effort()),
        Algorithm::MprInt => Box::new(InteractiveMechanism::best_effort(interactive_config(cfg))),
        Algorithm::Vcg => Box::new(VcgMechanism::best_effort(OptMethod::Auto)),
    }
}

/// The MPR-INT → MPR-STAT → EQL-capping degradation chain over a level-0
/// resilient exchange that already holds the (possibly faulty) agents.
pub(crate) fn degradation_chain(level0: ResilientInteractiveMechanism) -> FallbackChain<'static> {
    FallbackChain::new()
        .stage(ChainLevel::Interactive, level0)
        .stage(ChainLevel::StaticFallback, MclrMechanism::best_effort())
        .stage(ChainLevel::EqlCapping, EqlCappingMechanism)
}

/// The MPR-INT-over-lossy-network → MPR-STAT → EQL-capping degradation
/// chain over a level-0 transported exchange that already holds the agents
/// and the seeded virtual network.
pub(crate) fn transported_chain(
    level0: TransportedInteractiveMechanism<SimNet>,
) -> FallbackChain<'static> {
    FallbackChain::new()
        .stage(ChainLevel::Interactive, level0)
        .stage(ChainLevel::StaticFallback, MclrMechanism::best_effort())
        .stage(ChainLevel::EqlCapping, EqlCappingMechanism)
}

/// Human-readable descriptor of the clearing mechanism a configuration
/// runs. Folded into the checkpoint fingerprint, so a checkpointed run can
/// never be resumed under a different mechanism or chain shape.
#[must_use]
pub fn descriptor(cfg: &SimConfig) -> String {
    // A lossy network takes precedence: the engine composes an active fault
    // plan *into* the transported chain, so the shape is MPR-INT-NET's.
    if cfg.algorithm == Algorithm::MprInt && cfg.net_plan.filter(NetPlan::is_active).is_some() {
        // Mirror the stages of `transported_chain` by mechanism name.
        "chain(MPR-INT-NET,MPR-STAT,EQL-CAP)".to_owned()
    } else if cfg.algorithm == Algorithm::MprInt
        && cfg.fault_plan.filter(FaultPlan::is_active).is_some()
    {
        // Mirror the stages of `degradation_chain` by mechanism name.
        "chain(MPR-INT-RESILIENT,MPR-STAT,EQL-CAP)".to_owned()
    } else {
        for_algorithm(cfg).name().to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_algorithm_maps_to_a_mechanism() {
        for (alg, name) in [
            (Algorithm::Opt, "OPT"),
            (Algorithm::Eql, "EQL"),
            (Algorithm::MprStat, "MPR-STAT"),
            (Algorithm::MprInt, "MPR-INT"),
            (Algorithm::Vcg, "VCG"),
        ] {
            let cfg = SimConfig::new(alg, 15.0);
            assert_eq!(for_algorithm(&cfg).name(), name);
            assert_eq!(descriptor(&cfg), name);
        }
    }

    #[test]
    fn active_fault_plan_switches_the_descriptor_to_the_chain() {
        let plan = FaultPlan::unresponsive_and_crash(0.3, 0.1);
        let cfg = SimConfig::new(Algorithm::MprInt, 15.0).with_faults(plan);
        assert_eq!(
            descriptor(&cfg),
            "chain(MPR-INT-RESILIENT,MPR-STAT,EQL-CAP)"
        );
        // An all-zero plan is equivalent to no plan.
        let idle = SimConfig::new(Algorithm::MprInt, 15.0).with_faults(FaultPlan::default());
        assert_eq!(descriptor(&idle), "MPR-INT");
        // Fault plans only apply to MPR-INT.
        let stat = SimConfig::new(Algorithm::MprStat, 15.0).with_faults(plan);
        assert_eq!(descriptor(&stat), "MPR-STAT");
    }

    #[test]
    fn active_net_plan_switches_the_descriptor_to_the_transported_chain() {
        let net = crate::config::NetPlan::lossy(0.3);
        let cfg = SimConfig::new(Algorithm::MprInt, 15.0).with_net(net);
        assert_eq!(descriptor(&cfg), "chain(MPR-INT-NET,MPR-STAT,EQL-CAP)");
        // The network takes precedence over (and composes) an agent-fault
        // plan, so the descriptor is still the transported chain's.
        let both = SimConfig::new(Algorithm::MprInt, 15.0)
            .with_net(net)
            .with_faults(FaultPlan::unresponsive_and_crash(0.3, 0.1));
        assert_eq!(descriptor(&both), "chain(MPR-INT-NET,MPR-STAT,EQL-CAP)");
        // An idle plan is equivalent to no plan; other algorithms never
        // consult it.
        let idle =
            SimConfig::new(Algorithm::MprInt, 15.0).with_net(crate::config::NetPlan::default());
        assert_eq!(descriptor(&idle), "MPR-INT");
        let stat = SimConfig::new(Algorithm::MprStat, 15.0).with_net(net);
        assert_eq!(descriptor(&stat), "MPR-STAT");
    }
}
