//! # mpr-sim — trace-driven simulation of an oversubscribed HPC system
//!
//! Reproduces the paper's evaluation methodology (Section IV):
//!
//! * the simulation period is divided into one-minute slots;
//! * a list of active jobs (from a workload trace) is updated every slot —
//!   new jobs start unless a power emergency is in force, finished jobs
//!   retire;
//! * each job carries an application profile (uniformly randomly assigned)
//!   that determines its performance under resource reduction and its
//!   market bids;
//! * per-slot power comes from the job-attributed power model; when it
//!   exceeds the oversubscribed capacity, the configured overload-handling
//!   algorithm (OPT, EQL, MPR-STAT or MPR-INT) decides every job's
//!   reduction;
//! * reductions slow job progress according to the profiles, stretching
//!   runtimes; accounting tracks reductions, performance-loss cost, market
//!   rewards and affected jobs.
//!
//! The output [`SimReport`] carries every metric the paper's Figs. 8–15
//! plot.
//!
//! ```no_run
//! use mpr_sim::{Algorithm, SimConfig, Simulation};
//! use mpr_workload::{ClusterSpec, TraceGenerator};
//!
//! let trace = TraceGenerator::new(ClusterSpec::gaia()).generate();
//! let config = SimConfig::new(Algorithm::MprStat, 15.0);
//! let report = Simulation::new(&trace, config).run();
//! println!("cost: {:.0} core-hours", report.cost_core_hours);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod config;
pub mod engine;
pub mod ledger;
pub mod mechanism;
pub mod partition;
pub mod report;

pub use checkpoint::{CheckpointError, CheckpointPlan, RunOutcome};
pub use config::{
    Algorithm, CostNoise, DiskPlan, DurabilityPlan, FaultPlan, NetPlan, SimConfig, TelemetryConfig,
};
pub use engine::Simulation;
pub use ledger::{run_durable, DurableRun, LedgerEvent, MarketLedger};
pub use mpr_durable::FsyncPolicy;
pub use partition::{PartitionPolicy, PartitionedReport, PartitionedSimulation};
pub use report::{
    DegradationStats, DurabilityTotals, EmergencyEvent, EmergencyEventKind, ProfileStats,
    SimReport, Timeline, TransportTotals,
};
