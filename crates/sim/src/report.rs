//! Simulation output: every metric the paper's evaluation plots.

use std::collections::BTreeMap;

use mpr_core::ChainLevel;
use mpr_power::telemetry::TelemetryHealth;

/// Degradation accounting across all market clearings of a run: what the
/// graceful-degradation chain had to do when agents misbehaved. All-zero
/// (and `deepest_chain_level == None`) for runs without fault injection.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DegradationStats {
    /// Retry attempts spent re-polling slow agents across all rounds.
    pub rounds_retried: usize,
    /// Participants quarantined (summed over overload events; the same job
    /// counts once per event it defaulted in).
    pub participants_quarantined: usize,
    /// Clearings that fell back to the static (MPR-STAT) level.
    pub static_fallbacks: usize,
    /// Clearings that reached the terminal uniform-capping (EQL) level.
    pub eql_cappings: usize,
    /// Clearings aborted by the convergence watchdog.
    pub diverged_clearings: usize,
    /// Deepest chain level any clearing reached (`None` when no market
    /// clearing ran with fault injection).
    pub deepest_chain_level: Option<ChainLevel>,
    /// Total target watts the chain could not cover (positive only for
    /// physically unattainable targets), summed over events.
    pub residual_overload_watts: f64,
    /// Jobs whose cooperative submission-time bid could not be constructed
    /// (they join markets only through forced capping).
    pub bid_failures: usize,
}

impl DegradationStats {
    /// `true` when any clearing left the clean interactive level or any
    /// participant was quarantined.
    #[must_use]
    pub fn any_degradation(&self) -> bool {
        self.participants_quarantined > 0
            || self.static_fallbacks > 0
            || self.eql_cappings > 0
            || self.diverged_clearings > 0
            || self.residual_overload_watts > 0.0
    }

    /// Folds one clearing's chain level into the deepest-level watermark.
    pub fn observe_chain_level(&mut self, level: ChainLevel) {
        self.deepest_chain_level = Some(match self.deepest_chain_level {
            Some(prev) if prev >= level => prev,
            _ => level,
        });
    }
}

/// Message-layer accounting across all transported market clearings of a
/// run (present only when `SimConfig::net_plan` is active).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportTotals {
    /// Market clearings that ran over the simulated network.
    pub clearings: usize,
    /// Price-announcement rounds executed.
    pub rounds: usize,
    /// First-attempt price announcements sent.
    pub announces: usize,
    /// Backoff-scheduled retransmissions to silent agents.
    pub retransmits: usize,
    /// Bid replies accepted (first valid reply per agent per round).
    pub replies_accepted: usize,
    /// Duplicate deliveries of an already-answered round, discarded.
    pub duplicates_ignored: usize,
    /// Replies for past rounds or unknown announcement ids, discarded.
    pub late_replies_ignored: usize,
    /// Non-finite bids received and discarded.
    pub invalid_replies: usize,
    /// Agent-rounds that missed the deadline (round cleared with the
    /// agent's last-known bid).
    pub straggler_rounds: usize,
    /// Agents quarantined for missing `k` consecutive round deadlines.
    pub deadline_quarantines: usize,
    /// Virtual ticks the transported exchanges consumed in total.
    pub virtual_ticks: u64,
    /// Messages the channel itself dropped (loss + partitions).
    pub messages_dropped: usize,
    /// Extra deliveries the channel duplicated.
    pub messages_duplicated: usize,
}

impl TransportTotals {
    /// Folds one clearing's transport diagnostics into the run totals.
    ///
    /// Channel counters (`messages_*`) are cumulative over the transport's
    /// life, so callers pass the *final* stats once via
    /// [`TransportTotals::set_channel_totals`] instead.
    pub fn absorb(&mut self, d: &mpr_core::TransportDiagnostics) {
        self.clearings += 1;
        self.rounds += d.rounds;
        self.announces += d.announces;
        self.retransmits += d.retransmits;
        self.replies_accepted += d.replies_accepted;
        self.duplicates_ignored += d.duplicates_ignored;
        self.late_replies_ignored += d.late_replies_ignored;
        self.invalid_replies += d.invalid_replies;
        self.straggler_rounds += d.straggler_rounds;
        self.deadline_quarantines += d.deadline_quarantines;
        self.virtual_ticks += d.virtual_ticks;
    }

    /// Adds one transport's lifetime channel stats to the run totals.
    pub fn set_channel_totals(&mut self, stats: mpr_core::TransportStats) {
        self.messages_dropped += stats.dropped;
        self.messages_duplicated += stats.duplicated;
    }
}

/// Crash-durability accounting for a journaled (and possibly killed and
/// recovered) run — present only when `SimConfig::durability` is set.
///
/// Filled by the `ledger` harness, not by the engine itself: an
/// uninterrupted non-journaled run always reports `None`, preserving the
/// historical report bit-for-bit.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DurabilityTotals {
    /// Ledger records appended by live execution (pre- and post-crash).
    pub records_journaled: u64,
    /// Ledger records re-applied from the journal during recovery.
    pub records_replayed: u64,
    /// Payment records journaled by live execution.
    pub payments_journaled: u64,
    /// Recomputed payments suppressed as duplicates during replay —
    /// evidence the idempotency key worked, not an anomaly.
    pub duplicate_payments_suppressed: u64,
    /// Market reward reconstructed from the ledger's payment records alone,
    /// core-hours. Must equal `SimReport::reward_core_hours` bit-for-bit
    /// (the `durability-payments` oracle).
    pub ledger_reward_core_hours: f64,
    /// Highest slot with a durable commit record at the moment of the
    /// crash, as observed *before* the kill (what the manager acknowledged
    /// to the outside world).
    pub acked_slot_before_crash: Option<u64>,
    /// Highest committed slot actually recovered from the surviving ledger
    /// image. `durability-commit` demands `>= acked_slot_before_crash`
    /// unless bit-flip media faults were active.
    pub recovered_commit_slot: Option<u64>,
    /// Bytes of corrupt ledger tail discarded by scan-and-truncate.
    pub truncated_bytes: u64,
    /// Slots re-driven from checkpoint + ledger during recovery.
    pub recovered_slots: u64,
    /// Replayed slots whose recomputed records disagreed with the journal
    /// (must be zero: the `durability-replay` oracle).
    pub replay_divergence: u64,
    /// Supervisor restarts consumed by the run.
    pub restarts: u32,
    /// True when the supervisor exhausted its restart budget and escalated
    /// to safe mode (EQL capping, admission hold).
    pub safe_mode: bool,
    /// Storage faults injected by the `DiskPlan`, by class:
    /// torn writes.
    pub disk_torn_writes: u64,
    /// Storage faults injected: silent single-bit flips.
    pub disk_bit_flips: u64,
    /// Storage faults injected: ENOSPC rejections.
    pub disk_enospc: u64,
    /// Storage faults injected: failed fsyncs.
    pub disk_fsync_failures: u64,
    /// True when a storage fault wedged the ledger mid-run (journaling
    /// stopped; the run continued without durability).
    pub ledger_wedged: bool,
}

/// Per-application-profile accounting (Figs. 9(c), 9(d), 15(c), 15(d)).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileStats {
    /// Total resource reduction attributed to jobs of this profile,
    /// core-hours.
    pub reduction_core_hours: f64,
    /// Total performance-loss cost, core-hours.
    pub cost_core_hours: f64,
    /// Extra execution time accumulated, as a fraction of the profile's
    /// jobs' nominal runtime (for per-app performance-loss plots).
    pub runtime_stretch_pct: f64,
    /// Number of completed jobs of this profile.
    pub jobs: usize,
}

/// One emergency-lifecycle event, always recorded (unlike the heavyweight
/// per-slot [`Timeline`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmergencyEvent {
    /// Event time, seconds from simulation origin.
    pub t_secs: f64,
    /// What happened.
    pub kind: EmergencyEventKind,
    /// Power-reduction target in force after the event, watts (zero on
    /// lift).
    pub target_watts: f64,
    /// Clearing price in force after the event (zero for OPT/EQL and on
    /// lift).
    pub price: f64,
}

/// The kind of an [`EmergencyEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmergencyEventKind {
    /// An emergency was declared and the market/algorithm ran.
    Declare,
    /// Power exceeded capacity during an emergency; reductions deepened.
    Escalate,
    /// Normal operation resumed; reductions restored.
    Lift,
}

/// Per-slot time series recorded when `SimConfig::record_timeline` is set.
///
/// All vectors have one entry per simulated slot. `power_w` is the measured
/// (post-reduction) power, `demand_w` what the active jobs would draw at
/// full speed, `capacity_w` the (possibly policy-driven) capacity, and
/// `price` the market clearing price in force.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Timeline {
    /// Slot length in seconds.
    pub slot_secs: f64,
    /// Measured power per slot, watts.
    pub power_w: Vec<f64>,
    /// Full-speed demand per slot, watts.
    pub demand_w: Vec<f64>,
    /// Capacity per slot, watts.
    pub capacity_w: Vec<f64>,
    /// Total reduction in force per slot, watts.
    pub reduction_w: Vec<f64>,
    /// Clearing price in force per slot (0 outside emergencies).
    pub price: Vec<f64>,
}

impl Timeline {
    /// Serializes the timeline as CSV
    /// (`minute,demand_w,power_w,capacity_w,reduction_w,price` per slot),
    /// ready for external plotting.
    #[must_use]
    pub fn to_csv(&self) -> String {
        // The `_w` column tokens come from `Watts::SUFFIX` so header and
        // typed display can never drift apart.
        let w = mpr_core::Watts::SUFFIX.trim().to_ascii_lowercase();
        let mut out = format!("minute,demand_{w},power_{w},capacity_{w},reduction_{w},price\n");
        let rows = self
            .demand_w
            .iter()
            .zip(&self.power_w)
            .zip(&self.capacity_w)
            .zip(&self.reduction_w)
            .zip(&self.price);
        for (i, ((((demand, power), capacity), reduction), price)) in rows.enumerate() {
            out.push_str(&format!(
                "{:.2},{:.1},{:.1},{:.1},{:.1},{:.6}\n",
                i as f64 * self.slot_secs / 60.0,
                demand,
                power,
                capacity,
                reduction,
                price,
            ));
        }
        out
    }
}

/// Per-tree-level accounting of federated clearings, keyed by node name
/// inside [`FederatedStats::levels`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FederatedLevelStats {
    /// Distance of the node from the tree root.
    pub depth: usize,
    /// Subtree markets cleared at this node across the run.
    pub markets: usize,
    /// Summed initial capacity deficits (the node markets' targets), W.
    pub target_watts: f64,
    /// Summed power shed by markets run at this node, W.
    pub cleared_watts: f64,
    /// Summed residual deficit left at this node after each sweep, W.
    pub residual_watts: f64,
    /// Sweeps where this node's markets could not shed its full deficit
    /// and the residual escalated to the node's emergency path.
    pub escalations: usize,
}

/// Federated-market totals, present when the run cleared overload events
/// through a [`HierarchicalMarket`](mpr_power::HierarchicalMarket) over a
/// power-tree topology (`SimConfig::topology` + `SimConfig::federated`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FederatedStats {
    /// Overload events cleared through the federated path.
    pub events: usize,
    /// Total subtree markets cleared across all events.
    pub markets: usize,
    /// Total deepest-to-root sweep rounds across all events.
    pub rounds: usize,
    /// Summed residual deficit left at the tree after each sweep, W —
    /// the federated analogue of
    /// [`DegradationStats::residual_overload_watts`].
    pub residual_watts: f64,
    /// Events whose sweep ended with the tree still infeasible.
    pub infeasible_events: usize,
    /// Slots during which at least one infrastructure fault was in force
    /// over the power tree (grid-fault plans only).
    pub grid_fault_slots: usize,
    /// Cumulative dead (fenced) nodes observed across federated events.
    pub fenced_nodes: usize,
    /// Cumulative derated-but-alive nodes observed across federated
    /// events.
    pub derated_nodes: usize,
    /// Jobs moved off a dead rack to a surviving sibling, cumulative.
    pub reassigned_jobs: usize,
    /// Jobs stranded with no surviving rack anywhere, cumulative.
    pub quarantined_jobs: usize,
    /// Power cleared through rows assigned to dead racks, W. The
    /// grid-fencing chaos oracle requires this to stay exactly zero —
    /// any positive value means power was routed through a dead node.
    pub dead_cleared_watts: f64,
    /// Worst observed excess of a node's post-clear load over its derated
    /// capacity *beyond* its reported residual, W. The derate chaos
    /// oracle requires this to stay within tolerance — residuals account
    /// every exceedance, nothing is silently over capacity.
    pub derate_excess_watts: f64,
    /// Federated events cleared after the last scheduled repair — the
    /// post-repair window the bit-exactness oracle scrutinizes.
    pub post_repair_events: usize,
    /// Per-node accounting, keyed by node name, ordered by name.
    pub levels: BTreeMap<String, FederatedLevelStats>,
}

impl FederatedStats {
    /// Folds one sweep's per-level reports into the running totals.
    pub fn absorb(&mut self, outcome: &mpr_power::FederatedOutcome) {
        self.events += 1;
        self.markets += outcome.markets;
        self.rounds += outcome.rounds;
        self.residual_watts += outcome.residual.get();
        if !outcome.feasible() {
            self.infeasible_events += 1;
        }
        for level in &outcome.levels {
            let entry = self.levels.entry(level.name.clone()).or_default();
            entry.depth = level.depth;
            entry.markets += level.markets;
            entry.target_watts += level.target.get();
            entry.cleared_watts += level.cleared.get();
            entry.residual_watts += level.residual.get();
            entry.escalations += usize::from(level.escalated);
        }
    }
}

/// Aggregate results of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Trace the run consumed.
    pub trace_name: String,
    /// Algorithm label (`"OPT"`, `"EQL"`, `"MPR-STAT"`, `"MPR-INT"`).
    pub algorithm: String,
    /// Oversubscription level in percent.
    pub oversubscription_pct: f64,

    /// Number of simulated slots.
    pub total_slots: usize,
    /// Slots during which measured power exceeded capacity.
    pub overload_slots: usize,
    /// Number of declared emergencies.
    pub overload_events: usize,
    /// Emergencies where even best-effort capping could not meet the
    /// target (EQL on fragile apps, low participation).
    pub unmet_emergencies: usize,

    /// Jobs that started during the run.
    pub jobs_total: usize,
    /// Jobs that finished during the run.
    pub jobs_completed: usize,
    /// Jobs active during at least one overloaded slot.
    pub jobs_affected: usize,
    /// Jobs whose start was held back by an active emergency.
    pub jobs_deferred: usize,

    /// Total resource reduction, core-hours (Fig. 8(d)).
    pub reduction_core_hours: f64,
    /// Total performance-loss cost, core-hours (Fig. 9(a)).
    pub cost_core_hours: f64,
    /// Total market reward paid to users, core-hours (Fig. 11).
    pub reward_core_hours: f64,
    /// Mean runtime increase of affected completed jobs, percent
    /// (Fig. 9(b)).
    pub avg_runtime_increase_pct: f64,

    /// Extra compute gained from oversubscription, core-hours (Fig. 11(b)).
    pub extra_capacity_core_hours: f64,
    /// Infrastructure capacity, watts.
    pub capacity_watts: f64,
    /// The trace's reference peak power, watts.
    pub peak_watts: f64,

    /// Total MPR-INT iterations across all market invocations (0 for other
    /// algorithms).
    pub int_iterations_total: usize,

    /// Degradation accounting: retries, quarantines, chain levels and
    /// residual overload across the run's market clearings.
    pub degradation: DegradationStats,

    /// Per-profile breakdown, keyed by application name.
    pub per_profile: BTreeMap<String, ProfileStats>,

    /// Per-slot series, present when timeline recording was enabled.
    pub timeline: Option<Timeline>,

    /// Every emergency declare/escalate/lift, in time order.
    pub events: Vec<EmergencyEvent>,

    /// Telemetry-pipeline health counters, present when the run measured
    /// power through a sensor/estimator pipeline (`SimConfig::telemetry`).
    pub telemetry: Option<TelemetryHealth>,

    /// Message-layer totals, present when the run's market clearings went
    /// over a simulated network (`SimConfig::net_plan`).
    pub transport: Option<TransportTotals>,

    /// Crash-durability totals, present when the run journaled to a
    /// write-ahead ledger (`SimConfig::durability`). Attached by the
    /// `ledger` harness after the engine finishes.
    pub durability: Option<DurabilityTotals>,

    /// Federated-market totals, present when the run cleared overload
    /// events through a hierarchical market over a power-tree topology
    /// (`SimConfig::topology` + `SimConfig::federated`).
    pub federated: Option<FederatedStats>,
}

impl SimReport {
    /// Durations of completed emergencies (declare → lift), seconds.
    #[must_use]
    pub fn emergency_durations_secs(&self) -> Vec<f64> {
        let mut out = Vec::new();
        let mut started: Option<f64> = None;
        for e in &self.events {
            match e.kind {
                EmergencyEventKind::Declare => started = Some(e.t_secs),
                EmergencyEventKind::Lift => {
                    if let Some(s) = started.take() {
                        out.push(e.t_secs - s);
                    }
                }
                EmergencyEventKind::Escalate => {}
            }
        }
        out
    }
}

impl SimReport {
    /// Fraction of time spent overloaded, in percent (Fig. 8(a)).
    #[must_use]
    pub fn overload_time_pct(&self) -> f64 {
        if self.total_slots == 0 {
            0.0
        } else {
            100.0 * self.overload_slots as f64 / self.total_slots as f64
        }
    }

    /// Fraction of jobs affected by overloads, in percent (Fig. 8(c)).
    #[must_use]
    pub fn jobs_affected_pct(&self) -> f64 {
        if self.jobs_total == 0 {
            0.0
        } else {
            100.0 * self.jobs_affected as f64 / self.jobs_total as f64
        }
    }

    /// Reward as a percentage of the performance-loss cost (Fig. 11(a)).
    /// `None` when no cost was incurred.
    #[must_use]
    pub fn reward_pct_of_cost(&self) -> Option<f64> {
        (self.cost_core_hours > 1e-9).then(|| 100.0 * self.reward_core_hours / self.cost_core_hours)
    }

    /// The HPC manager's gain ratio: extra capacity per core-hour of
    /// reward paid (Fig. 11(b)). `None` when no reward was paid.
    #[must_use]
    pub fn gain_over_reward(&self) -> Option<f64> {
        (self.reward_core_hours > 1e-9)
            .then(|| self.extra_capacity_core_hours / self.reward_core_hours)
    }

    /// Mean MPR-INT iterations per market invocation (Fig. 10(b)).
    #[must_use]
    pub fn int_iterations_avg(&self) -> f64 {
        if self.overload_events == 0 {
            0.0
        } else {
            self.int_iterations_total as f64 / self.overload_events as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        SimReport {
            trace_name: "t".into(),
            algorithm: "MPR-STAT".into(),
            oversubscription_pct: 15.0,
            total_slots: 1000,
            overload_slots: 50,
            overload_events: 5,
            unmet_emergencies: 0,
            jobs_total: 200,
            jobs_completed: 180,
            jobs_affected: 40,
            jobs_deferred: 3,
            reduction_core_hours: 100.0,
            cost_core_hours: 20.0,
            reward_core_hours: 60.0,
            avg_runtime_increase_pct: 0.5,
            extra_capacity_core_hours: 30000.0,
            capacity_watts: 262_434.0,
            peak_watts: 301_800.0,
            int_iterations_total: 0,
            degradation: DegradationStats::default(),
            per_profile: BTreeMap::new(),
            timeline: None,
            events: Vec::new(),
            telemetry: None,
            transport: None,
            durability: None,
            federated: None,
        }
    }

    #[test]
    fn derived_percentages() {
        let r = report();
        assert!((r.overload_time_pct() - 5.0).abs() < 1e-12);
        assert!((r.jobs_affected_pct() - 20.0).abs() < 1e-12);
        assert!((r.reward_pct_of_cost().unwrap() - 300.0).abs() < 1e-9);
        assert!((r.gain_over_reward().unwrap() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn zero_denominators_are_safe() {
        let mut r = report();
        r.total_slots = 0;
        r.jobs_total = 0;
        r.cost_core_hours = 0.0;
        r.reward_core_hours = 0.0;
        r.overload_events = 0;
        assert_eq!(r.overload_time_pct(), 0.0);
        assert_eq!(r.jobs_affected_pct(), 0.0);
        assert_eq!(r.reward_pct_of_cost(), None);
        assert_eq!(r.gain_over_reward(), None);
        assert_eq!(r.int_iterations_avg(), 0.0);
    }

    #[test]
    fn emergency_durations_pair_declare_with_lift() {
        let mut r = report();
        r.events = vec![
            EmergencyEvent {
                t_secs: 60.0,
                kind: EmergencyEventKind::Declare,
                target_watts: 100.0,
                price: 0.4,
            },
            EmergencyEvent {
                t_secs: 120.0,
                kind: EmergencyEventKind::Escalate,
                target_watts: 150.0,
                price: 0.5,
            },
            EmergencyEvent {
                t_secs: 900.0,
                kind: EmergencyEventKind::Lift,
                target_watts: 0.0,
                price: 0.0,
            },
            // A dangling declare (run ended mid-emergency) contributes no
            // duration.
            EmergencyEvent {
                t_secs: 1200.0,
                kind: EmergencyEventKind::Declare,
                target_watts: 80.0,
                price: 0.3,
            },
        ];
        assert_eq!(r.emergency_durations_secs(), vec![840.0]);
    }

    #[test]
    fn timeline_csv_round_numbers() {
        let tl = Timeline {
            slot_secs: 60.0,
            power_w: vec![100.0, 200.0],
            demand_w: vec![150.0, 200.0],
            capacity_w: vec![180.0, 180.0],
            reduction_w: vec![50.0, 0.0],
            price: vec![0.5, 0.0],
        };
        let csv = tl.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("minute,"));
        assert_eq!(lines[1], "0.00,150.0,100.0,180.0,50.0,0.500000");
        assert_eq!(lines[2], "1.00,200.0,200.0,180.0,0.0,0.000000");
    }

    #[test]
    fn int_iteration_average() {
        let mut r = report();
        r.int_iterations_total = 40;
        assert!((r.int_iterations_avg() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn transport_totals_absorb_sums_counters() {
        let mut t = TransportTotals::default();
        let d = mpr_core::TransportDiagnostics {
            rounds: 5,
            announces: 15,
            retransmits: 2,
            replies_accepted: 13,
            duplicates_ignored: 1,
            straggler_rounds: 2,
            virtual_ticks: 40,
            ..mpr_core::TransportDiagnostics::default()
        };
        t.absorb(&d);
        t.absorb(&d);
        assert_eq!(t.clearings, 2);
        assert_eq!(t.rounds, 10);
        assert_eq!(t.announces, 30);
        assert_eq!(t.retransmits, 4);
        assert_eq!(t.virtual_ticks, 80);
        t.set_channel_totals(mpr_core::TransportStats {
            sent: 30,
            delivered: 25,
            dropped: 5,
            duplicated: 1,
        });
        assert_eq!(t.messages_dropped, 5);
        assert_eq!(t.messages_duplicated, 1);
    }

    #[test]
    fn degradation_stats_watermark_and_flags() {
        let mut d = DegradationStats::default();
        assert!(!d.any_degradation());
        assert_eq!(d.deepest_chain_level, None);

        d.observe_chain_level(ChainLevel::Interactive);
        assert_eq!(d.deepest_chain_level, Some(ChainLevel::Interactive));
        // Clean interactive clearings alone are not degradation.
        assert!(!d.any_degradation());

        d.observe_chain_level(ChainLevel::EqlCapping);
        assert_eq!(d.deepest_chain_level, Some(ChainLevel::EqlCapping));
        // The watermark never recedes.
        d.observe_chain_level(ChainLevel::StaticFallback);
        assert_eq!(d.deepest_chain_level, Some(ChainLevel::EqlCapping));

        d.participants_quarantined = 2;
        d.static_fallbacks = 1;
        assert!(d.any_degradation());
    }
}
