//! The 30-minute prototype experiment (Fig. 17).
//!
//! Two runs — one without MPR, one with — against a 400 W power cap. The
//! emulated cluster samples power once per second; with MPR enabled, the
//! emergency controller invokes a static market whose bids derive from each
//! application's DVFS cost model, and reductions are actuated as discrete
//! CPU-frequency changes.

use mpr_core::bidding::StaticStrategy;
use mpr_core::{Participant, StaticMarket, Watts};
use mpr_power::{EmergencyAction, EmergencyConfig, EmergencyController};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::app::{prototype_apps, DvfsApp, FREQ_MAX_GHZ};

/// Static (non-DVFS) power of the two servers, watts.
const STATIC_POWER_W: f64 = 20.0;

/// Configuration of a prototype run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// Power cap creating the overload condition (paper: 400 W).
    pub cap_watts: f64,
    /// Experiment length in seconds (paper: 30 minutes).
    pub duration_secs: f64,
    /// Whether MPR handles the overload.
    pub with_mpr: bool,
    /// Seed for the power-measurement noise.
    pub seed: u64,
}

impl Default for ExperimentConfig {
    /// The paper's setup: 400 W cap, 30 minutes, MPR on.
    fn default() -> Self {
        Self {
            cap_watts: 400.0,
            duration_secs: 1800.0,
            with_mpr: true,
            seed: 17,
        }
    }
}

/// One power sample of the timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Seconds from experiment start.
    pub t_secs: f64,
    /// Total cluster power, watts.
    pub power_watts: f64,
}

/// Per-application outcome of a run (Fig. 17(b)).
#[derive(Debug, Clone, PartialEq)]
pub struct AppOutcome {
    /// Application name.
    pub name: String,
    /// Time-average resource reduction, cores.
    pub avg_reduction_cores: f64,
    /// Time-average CPU frequency, GHz.
    pub avg_freq_ghz: f64,
    /// Total reward earned, core-seconds × price.
    pub reward: f64,
}

/// Result of a prototype run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentResult {
    /// Power timeline (1 Hz).
    pub samples: Vec<Sample>,
    /// Per-application outcomes.
    pub apps: Vec<AppOutcome>,
    /// Number of emergencies declared.
    pub emergencies: usize,
    /// Fraction of samples above the cap.
    pub overload_fraction: f64,
}

impl ExperimentResult {
    /// Mean power over the run.
    #[must_use]
    pub fn mean_power_watts(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s.power_watts).sum::<f64>() / self.samples.len() as f64
    }
}

/// The emulated prototype experiment.
#[derive(Debug, Clone)]
pub struct Experiment {
    apps: Vec<DvfsApp>,
    config: ExperimentConfig,
}

impl Experiment {
    /// Creates the experiment with the paper's four applications.
    #[must_use]
    pub fn new(config: ExperimentConfig) -> Self {
        Self {
            apps: prototype_apps(),
            config,
        }
    }

    /// Creates the experiment with custom applications.
    #[must_use]
    pub fn with_apps(apps: Vec<DvfsApp>, config: ExperimentConfig) -> Self {
        Self { apps, config }
    }

    /// Runs the experiment.
    #[must_use]
    pub fn run(&self) -> ExperimentResult {
        let cfg = &self.config;
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let n = cfg.duration_secs.max(1.0) as usize;

        let mut controller = EmergencyController::new(EmergencyConfig {
            capacity: Watts::new(cfg.cap_watts),
            buffer_frac: 0.01,
            min_overload_secs: 5.0,
            cooldown_secs: 60.0,
        });

        // Per-app state: current frequency, accumulated reduction/reward.
        let mut freqs: Vec<f64> = vec![FREQ_MAX_GHZ; self.apps.len()];
        let mut reductions: Vec<f64> = vec![0.0; self.apps.len()];
        let mut price = 0.0f64;
        let mut red_sum: Vec<f64> = vec![0.0; self.apps.len()];
        let mut freq_sum: Vec<f64> = vec![0.0; self.apps.len()];
        let mut reward: Vec<f64> = vec![0.0; self.apps.len()];
        let mut emergencies = 0usize;
        let mut over = 0usize;
        let mut samples = Vec::with_capacity(n);

        // Cooperative bids are fixed for the whole run (MPR-STAT style).
        // An invalid cost model (never the prototype apps) simply keeps the
        // app out of the market rather than aborting the run.
        let supplies: Vec<Option<_>> = self
            .apps
            .iter()
            .map(|a| StaticStrategy::Cooperative.supply_for(&a.cost_model()).ok())
            .collect();

        for step in 0..n {
            let t = step as f64;
            // Measured power: static + per-app dynamic with phase noise.
            let mut power = STATIC_POWER_W;
            for (i, (app, &f)) in self.apps.iter().zip(&freqs).enumerate() {
                let wobble =
                    1.0 + 0.02 * (t / 90.0 + i as f64).sin() + 0.01 * rng.gen_range(-1.0..1.0);
                power += app.dynamic_power_w(f) * wobble;
            }
            samples.push(Sample {
                t_secs: t,
                power_watts: power,
            });
            if power > cfg.cap_watts {
                over += 1;
            }

            if cfg.with_mpr {
                match controller.step(t, Watts::new(power)) {
                    EmergencyAction::Declare { .. } | EmergencyAction::Escalate { .. } => {
                        emergencies += 1;
                        let target = controller.active_target();
                        let participants: Vec<Participant> = self
                            .apps
                            .iter()
                            .zip(&supplies)
                            .enumerate()
                            .filter_map(|(i, (a, s))| {
                                s.map(|s| {
                                    Participant::new(i as u64, s, Watts::new(a.watts_per_unit()))
                                })
                            })
                            .collect();
                        let clearing = StaticMarket::new(participants).clear_best_effort(target);
                        price = clearing.price().get();
                        let mut delivered = 0.0;
                        for alloc in clearing.allocations() {
                            let i = alloc.id as usize;
                            let Some(app) = self.apps.get(i) else {
                                continue;
                            };
                            let f = app.freq_for_reduction(alloc.reduction);
                            if let Some(fr) = freqs.get_mut(i) {
                                *fr = f;
                            }
                            // Actual reduction after frequency snapping.
                            if let Some(r) = reductions.get_mut(i) {
                                *r = f64::from(app.cores()) * (1.0 - app.allocation(f));
                            }
                            delivered += app.power_saving_w(f);
                        }
                        controller.record_delivered(Watts::new(delivered));
                    }
                    EmergencyAction::Lift => {
                        freqs.iter_mut().for_each(|f| *f = FREQ_MAX_GHZ);
                        reductions.iter_mut().for_each(|r| *r = 0.0);
                        price = 0.0;
                    }
                    EmergencyAction::None => {}
                }
            }

            let sums = red_sum.iter_mut().zip(&mut freq_sum).zip(&mut reward);
            for (((rs, fs), rw), (&r, &f)) in sums.zip(reductions.iter().zip(&freqs)) {
                *rs += r;
                *fs += f;
                *rw += price * r / 3600.0;
            }
        }

        let totals = red_sum.iter().zip(&freq_sum).zip(&reward);
        let apps = self
            .apps
            .iter()
            .zip(totals)
            .map(|(a, ((&rs, &fs), &rw))| AppOutcome {
                name: a.name().to_owned(),
                avg_reduction_cores: rs / n as f64,
                avg_freq_ghz: fs / n as f64,
                reward: rw,
            })
            .collect();
        ExperimentResult {
            samples,
            apps,
            emergencies,
            overload_fraction: over as f64 / n as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(with_mpr: bool) -> ExperimentResult {
        Experiment::new(ExperimentConfig {
            with_mpr,
            ..ExperimentConfig::default()
        })
        .run()
    }

    #[test]
    fn without_mpr_the_cap_is_violated_throughout() {
        let r = run(false);
        assert_eq!(r.emergencies, 0);
        assert!(
            r.overload_fraction > 0.9,
            "uncapped run should sit above 400 W, fraction {}",
            r.overload_fraction
        );
        assert!(r.mean_power_watts() > 400.0);
        for a in &r.apps {
            assert_eq!(a.avg_reduction_cores, 0.0);
            assert!((a.avg_freq_ghz - FREQ_MAX_GHZ).abs() < 1e-9);
        }
    }

    #[test]
    fn mpr_brings_power_under_the_cap() {
        let r = run(true);
        assert!(r.emergencies >= 1);
        assert!(
            r.overload_fraction < 0.10,
            "MPR should mitigate quickly, overload fraction {}",
            r.overload_fraction
        );
        // Steady-state power sits below the cap (Fig. 17(a)).
        let tail: Vec<f64> = r
            .samples
            .iter()
            .skip(r.samples.len() / 2)
            .map(|s| s.power_watts)
            .collect();
        let tail_mean = tail.iter().sum::<f64>() / tail.len() as f64;
        assert!(tail_mean < 400.0, "steady-state power {tail_mean}");
    }

    #[test]
    fn mpr_reduces_power_by_tens_of_watts() {
        let without = run(false).mean_power_watts();
        let with = run(true).mean_power_watts();
        let saved = without - with;
        assert!(
            (20.0..120.0).contains(&saved),
            "expected a ~50 W reduction, got {saved:.1} W"
        );
    }

    #[test]
    fn apps_reduce_different_amounts() {
        // Fig. 17(b): reductions differ by performance impact and bids.
        let r = run(true);
        let reds: Vec<f64> = r.apps.iter().map(|a| a.avg_reduction_cores).collect();
        assert!(reds.iter().any(|&x| x > 0.0));
        let max = reds.iter().cloned().fold(0.0, f64::max);
        let min = reds.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            max > min + 0.05,
            "apps should shed different amounts: {reds:?}"
        );
        // The frequency-insensitive app (HPCCG) sheds the most; the most
        // sensitive (miniMD) sheds the least.
        let by_name = |n: &str| {
            r.apps
                .iter()
                .find(|a| a.name == n)
                .unwrap()
                .avg_reduction_cores
        };
        assert!(by_name("HPCCG") > by_name("miniMD"));
    }

    #[test]
    fn participants_earn_rewards() {
        let r = run(true);
        let total: f64 = r.apps.iter().map(|a| a.reward).sum();
        assert!(total > 0.0);
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run(true);
        let b = run(true);
        assert_eq!(a.samples.len(), b.samples.len());
        assert_eq!(a.apps, b.apps);
    }

    #[test]
    fn custom_apps_and_duration() {
        let apps = vec![DvfsApp::new("only", 40, 50.0, 300.0, 2.0, 0.7)];
        let r = Experiment::with_apps(
            apps,
            ExperimentConfig {
                duration_secs: 120.0,
                ..ExperimentConfig::default()
            },
        )
        .run();
        assert_eq!(r.samples.len(), 120);
        assert_eq!(r.apps.len(), 1);
    }
}
