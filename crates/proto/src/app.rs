//! DVFS application models: frequency → power and frequency → performance.

use mpr_core::CostModel;

/// Lowest CPU frequency the `acpi-cpufreq` driver exposes on the testbed.
pub const FREQ_MIN_GHZ: f64 = 1.0;
/// Nominal (maximum) CPU frequency.
pub const FREQ_MAX_GHZ: f64 = 2.4;
/// Discrete frequency step of the driver.
pub const FREQ_STEP_GHZ: f64 = 0.1;

/// One application running on a fixed 10-core slice of the prototype.
///
/// Power follows the classic DVFS law `P_dyn(f) = floor + span·(f/f_max)^e`
/// (the exponent differs per app: memory-bound codes have flatter curves),
/// and performance follows the CPU-boundness model
/// `perf(f) = (1−m) + m·(f/f_max)` — an application with `m = 1` scales
/// perfectly with frequency, one with `m = 0` not at all (Fig. 16(b)).
#[derive(Debug, Clone, PartialEq)]
pub struct DvfsApp {
    name: String,
    cores: u32,
    power_floor_w: f64,
    power_span_w: f64,
    power_exp: f64,
    cpu_boundness: f64,
}

impl DvfsApp {
    /// Creates an application model.
    ///
    /// # Panics
    ///
    /// Panics if `cpu_boundness` is outside `(0, 1]` or `cores` is zero.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        cores: u32,
        power_floor_w: f64,
        power_span_w: f64,
        power_exp: f64,
        cpu_boundness: f64,
    ) -> Self {
        assert!(cores > 0, "cores must be positive");
        assert!(
            cpu_boundness > 0.0 && cpu_boundness <= 1.0,
            "cpu_boundness must be in (0, 1]"
        );
        Self {
            name: name.into(),
            cores,
            power_floor_w,
            power_span_w,
            power_exp,
            cpu_boundness,
        }
    }

    /// Application name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Cores the app occupies.
    #[must_use]
    pub fn cores(&self) -> u32 {
        self.cores
    }

    /// Dynamic power (watts, whole slice) at CPU frequency `f` GHz
    /// (Fig. 16(a)).
    #[must_use]
    pub fn dynamic_power_w(&self, freq_ghz: f64) -> f64 {
        let f = freq_ghz.clamp(FREQ_MIN_GHZ, FREQ_MAX_GHZ);
        self.power_floor_w + self.power_span_w * (f / FREQ_MAX_GHZ).powf(self.power_exp)
    }

    /// Relative execution speed at frequency `f` (1.0 at nominal).
    #[must_use]
    pub fn performance(&self, freq_ghz: f64) -> f64 {
        let f = freq_ghz.clamp(FREQ_MIN_GHZ, FREQ_MAX_GHZ);
        (1.0 - self.cpu_boundness) + self.cpu_boundness * f / FREQ_MAX_GHZ
    }

    /// Execution time at frequency `f`, normalized to nominal frequency
    /// (Fig. 16(b)).
    #[must_use]
    pub fn normalized_runtime(&self, freq_ghz: f64) -> f64 {
        1.0 / self.performance(freq_ghz)
    }

    /// Resource allocation equivalent of running at `f`: `f / f_max` per
    /// core (a core at 1.2 GHz of 2.4 GHz counts as half a core).
    #[must_use]
    pub fn allocation(&self, freq_ghz: f64) -> f64 {
        freq_ghz.clamp(FREQ_MIN_GHZ, FREQ_MAX_GHZ) / FREQ_MAX_GHZ
    }

    /// Job-level maximum resource reduction: dropping from `f_max` to
    /// `f_min` on every core.
    #[must_use]
    pub fn delta_max(&self) -> f64 {
        f64::from(self.cores) * (1.0 - FREQ_MIN_GHZ / FREQ_MAX_GHZ)
    }

    /// The frequency (snapped down to the driver's 0.1 GHz grid) that
    /// realizes a job-level reduction of `delta` cores.
    #[must_use]
    pub fn freq_for_reduction(&self, delta: f64) -> f64 {
        let per_core = (delta / f64::from(self.cores)).clamp(0.0, 1.0);
        let f = (1.0 - per_core) * FREQ_MAX_GHZ;
        let snapped = (f / FREQ_STEP_GHZ + 1e-9).floor() * FREQ_STEP_GHZ;
        snapped.clamp(FREQ_MIN_GHZ, FREQ_MAX_GHZ)
    }

    /// Power saved by running at `f` instead of nominal.
    #[must_use]
    pub fn power_saving_w(&self, freq_ghz: f64) -> f64 {
        self.dynamic_power_w(FREQ_MAX_GHZ) - self.dynamic_power_w(freq_ghz)
    }

    /// Mean watts shed per core of resource reduction (secant slope across
    /// the DVFS range) — the market's `watts_per_unit` conversion.
    #[must_use]
    pub fn watts_per_unit(&self) -> f64 {
        self.power_saving_w(FREQ_MIN_GHZ) / self.delta_max()
    }

    /// The user's cost model for this app: extra execution per unit time of
    /// capping, scaled to the job's cores (same construction as the
    /// simulation, Section III-C).
    #[must_use]
    pub fn cost_model(&self) -> DvfsCost {
        DvfsCost { app: self.clone() }
    }
}

/// Extra-execution cost model derived from a [`DvfsApp`]'s performance
/// curve.
#[derive(Debug, Clone, PartialEq)]
pub struct DvfsCost {
    app: DvfsApp,
}

impl CostModel for DvfsCost {
    fn cost(&self, delta: f64) -> f64 {
        let per_core = (delta / f64::from(self.app.cores)).clamp(0.0, 1.0);
        let freq = (1.0 - per_core) * FREQ_MAX_GHZ;
        let perf = self.app.performance(freq.max(FREQ_MIN_GHZ)).max(1e-3);
        f64::from(self.app.cores) * (1.0 - perf) / perf
    }
    fn delta_max(&self) -> f64 {
        self.app.delta_max()
    }
}

/// The four testbed applications of Section V-F, each on 10 cores, with
/// curves shaped after Fig. 16: XSBench draws the most power but is
/// comparatively memory-bound; miniMD is the most frequency-sensitive;
/// HPCCG the least.
#[must_use]
pub fn prototype_apps() -> Vec<DvfsApp> {
    vec![
        DvfsApp::new("CoMD", 10, 30.0, 75.0, 2.2, 0.75),
        DvfsApp::new("HPCCG", 10, 35.0, 60.0, 1.8, 0.55),
        DvfsApp::new("miniMD", 10, 28.0, 85.0, 2.4, 0.85),
        DvfsApp::new("XSBench", 10, 40.0, 80.0, 1.6, 0.65),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn four_apps_on_forty_cores() {
        let apps = prototype_apps();
        assert_eq!(apps.len(), 4);
        let total: u32 = apps.iter().map(DvfsApp::cores).sum();
        assert_eq!(total, 40);
    }

    #[test]
    fn power_monotone_in_frequency() {
        for app in prototype_apps() {
            let mut prev = 0.0;
            let mut f = FREQ_MIN_GHZ;
            while f <= FREQ_MAX_GHZ + 1e-9 {
                let p = app.dynamic_power_w(f);
                assert!(p >= prev, "{}: power must rise with f", app.name());
                prev = p;
                f += FREQ_STEP_GHZ;
            }
        }
    }

    #[test]
    fn runtime_normalized_to_one_at_nominal() {
        for app in prototype_apps() {
            assert!((app.normalized_runtime(FREQ_MAX_GHZ) - 1.0).abs() < 1e-12);
            assert!(app.normalized_runtime(FREQ_MIN_GHZ) > 1.0);
        }
    }

    #[test]
    fn apps_differ_in_speed_sensitivity() {
        // Fig. 16(b): "the impact of CPU speed change is different for
        // different applications".
        let apps = prototype_apps();
        let at_min: Vec<f64> = apps.iter().map(|a| a.normalized_runtime(1.0)).collect();
        let minimd = apps.iter().position(|a| a.name() == "miniMD").unwrap();
        let hpccg = apps.iter().position(|a| a.name() == "HPCCG").unwrap();
        assert!(at_min[minimd] > at_min[hpccg]);
    }

    #[test]
    fn freq_snaps_to_driver_grid() {
        let app = &prototype_apps()[0];
        let f = app.freq_for_reduction(2.5);
        let steps = f / FREQ_STEP_GHZ;
        assert!((steps - steps.round()).abs() < 1e-9, "f = {f}");
        assert!((FREQ_MIN_GHZ..=FREQ_MAX_GHZ).contains(&f));
        // Zero reduction → nominal frequency.
        assert!((app.freq_for_reduction(0.0) - FREQ_MAX_GHZ).abs() < 1e-9);
        // Max reduction → min frequency.
        assert!((app.freq_for_reduction(app.delta_max()) - FREQ_MIN_GHZ).abs() < 1e-9);
    }

    #[test]
    fn cost_model_zero_at_no_reduction() {
        for app in prototype_apps() {
            let c = app.cost_model();
            assert!(c.cost(0.0).abs() < 1e-12);
            assert!(c.cost(c.delta_max()) > 0.0);
            assert!((c.delta_max() - app.delta_max()).abs() < 1e-12);
        }
    }

    #[test]
    fn watts_per_unit_positive_and_sane() {
        for app in prototype_apps() {
            let w = app.watts_per_unit();
            assert!(w > 1.0 && w < 50.0, "{}: {w}", app.name());
        }
    }

    proptest! {
        /// Cost is non-decreasing in the reduction for every app.
        #[test]
        fn cost_monotone(idx in 0usize..4, d1 in 0.0f64..5.8, dd in 0.0f64..1.0) {
            let app = &prototype_apps()[idx];
            let c = app.cost_model();
            prop_assert!(c.cost(d1 + dd) + 1e-9 >= c.cost(d1));
        }

        /// freq_for_reduction never yields more allocation than requested
        /// (snapping rounds the frequency down, i.e. reduces at least δ).
        #[test]
        fn snapping_reduces_at_least_delta(idx in 0usize..4, frac in 0.0f64..1.0) {
            let app = &prototype_apps()[idx];
            let delta = frac * app.delta_max();
            let f = app.freq_for_reduction(delta);
            let achieved = f64::from(app.cores()) * (1.0 - app.allocation(f));
            prop_assert!(achieved >= delta - 1e-9 || (f - FREQ_MIN_GHZ).abs() < 1e-9);
        }
    }
}
