//! # mpr-proto — the emulated prototype cluster (Section V-F)
//!
//! The paper validates MPR on a physical testbed: two Dell PowerEdge
//! servers, 40 Xeon cores, four applications (CoMD, HPCCG, miniMD,
//! XSBench) on 10 cores each, CPU frequency driven through the
//! `acpi-cpufreq` Linux driver from 1.0 to 2.4 GHz.
//!
//! Lacking the hardware, this crate emulates that testbed (see
//! `DESIGN.md`, "Substitutions"): per-application frequency→power and
//! frequency→slowdown curves shaped after Fig. 16, a 1-second control
//! loop, a 400 W power cap and the full MPR pipeline (emergency
//! detection → static market → DVFS actuation with discrete frequency
//! steps). It regenerates:
//!
//! * **Fig. 16** — dynamic power and normalized execution time across the
//!   DVFS range, per application ([`DvfsApp`] curves);
//! * **Fig. 17** — the 30-minute with/without-MPR power timelines and the
//!   per-application resource reductions ([`Experiment`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app;
pub mod experiment;

pub use app::{prototype_apps, DvfsApp, FREQ_MAX_GHZ, FREQ_MIN_GHZ, FREQ_STEP_GHZ};
pub use experiment::{AppOutcome, Experiment, ExperimentConfig, ExperimentResult, Sample};
