//! Property-based invariants of the WAL scanner and the faulty disk.

use proptest::prelude::*;

use mpr_durable::recover::recover;
use mpr_durable::{scan, DiskFaultConfig, FaultyDisk, FsyncPolicy, MemStorage, Wal};

/// Builds a clean WAL image with the given record payload sizes.
fn build_log(stream: u64, sizes: &[usize]) -> Vec<u8> {
    let mut wal = Wal::create(MemStorage::new(), stream, FsyncPolicy::Always).expect("create");
    for (i, &size) in sizes.iter().enumerate() {
        let payload = vec![(i % 251) as u8; size];
        wal.append((i % 250) as u8, &payload).expect("append");
    }
    wal.into_storage().bytes().to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Cutting a clean log at ANY byte position yields a scan whose
    /// recovered records are a strict prefix of the originals, with no
    /// panic and an exact valid_len/truncated_bytes split.
    #[test]
    fn arbitrary_cut_recovers_a_record_prefix(
        sizes in proptest::collection::vec(0usize..120, 1..20),
        frac in 0.0f64..1.0,
    ) {
        let bytes = build_log(11, &sizes);
        let full = scan(&bytes, Some(11));
        prop_assert_eq!(full.records.len(), sizes.len());
        let cut = ((bytes.len() as f64) * frac) as usize;
        let torn = bytes[..cut.min(bytes.len())].to_vec();
        let report = scan(&torn, Some(11));
        prop_assert!(report.records.len() <= sizes.len());
        prop_assert_eq!(report.valid_len + report.truncated_bytes, torn.len() as u64);
        // Recovered records must literally equal the original prefix.
        for (got, want) in report.records.iter().zip(full.records.iter()) {
            prop_assert_eq!(got, want);
        }
        // And the truncated log must be append-ready.
        let mut storage = MemStorage::from_bytes(torn);
        let recovered = recover(&mut storage, Some(11)).expect("recover");
        prop_assert_eq!(recovered.records.len(), report.records.len());
        // A cut inside the segment header truncates to zero bytes; the log
        // must then be re-created (fresh header), not resumed.
        let mut resumed = if recovered.stream_id.is_none() {
            prop_assert_eq!(recovered.valid_len, 0);
            Wal::create(storage, 11, FsyncPolicy::Always).expect("recreate")
        } else {
            Wal::resume(storage, FsyncPolicy::Always, recovered.next_seq)
        };
        resumed.append(200, b"fresh").expect("append after recovery");
        let rescan = scan(resumed.into_storage().bytes(), Some(11));
        prop_assert!(rescan.corruption.is_none());
        prop_assert_eq!(rescan.records.len(), report.records.len() + 1);
    }

    /// A single flipped bit anywhere in the image is always detected: the
    /// scan either reports corruption or (when the flip lands in already-
    /// truncated territory) returns fewer records — never a silently
    /// altered full set.
    #[test]
    fn single_bit_flip_never_passes_silently(
        sizes in proptest::collection::vec(1usize..60, 1..10),
        pos_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let bytes = build_log(3, &sizes);
        let clean = scan(&bytes, Some(3));
        let mut mutated = bytes.clone();
        let pos = (((mutated.len() - 1) as f64) * pos_frac) as usize;
        if let Some(b) = mutated.get_mut(pos) {
            *b ^= 1u8 << bit;
        }
        let report = scan(&mutated, Some(3));
        prop_assert!(
            report.corruption.is_some(),
            "flip at byte {} bit {} went undetected", pos, bit
        );
        // Whatever survives is an unmodified prefix.
        for (got, want) in report.records.iter().zip(clean.records.iter()) {
            prop_assert_eq!(got, want);
        }
    }

    /// Crash-then-recover over a FaultyDisk with a fault-free config:
    /// everything synced before the crash survives, recovered records are
    /// a prefix of what was appended, and all acknowledged (synced)
    /// records are present.
    #[test]
    fn faulty_disk_crash_preserves_synced_prefix(
        seed in 0u64..1_000,
        n_records in 1usize..30,
        sync_every in 1usize..5,
    ) {
        let disk = FaultyDisk::new(DiskFaultConfig::default(), seed);
        let mut wal = Wal::create(disk, 21, FsyncPolicy::Never).expect("create");
        let mut last_synced = None;
        for i in 0..n_records {
            wal.append(1, format!("r{i}").as_bytes()).expect("append");
            if i % sync_every == 0 {
                wal.sync().expect("sync");
                last_synced = Some(i as u64);
            }
        }
        let synced_seq = wal.synced_seq();
        prop_assert_eq!(synced_seq, last_synced);
        let mut disk = wal.into_storage();
        disk.crash();
        let mut image = MemStorage::from_bytes(disk.durable_bytes().to_vec());
        let report = recover(&mut image, Some(21)).expect("recover");
        // Every synced record must have survived the crash.
        if let Some(seq) = synced_seq {
            prop_assert!(
                report.records.len() as u64 > seq,
                "synced through seq {} but only {} records survived", seq, report.records.len()
            );
        }
        prop_assert!(report.records.len() <= n_records);
    }
}
