//! Scan-and-truncate recovery for WAL segments.
//!
//! After a crash the tail of a segment may hold a torn frame, flipped bits
//! or arbitrary garbage. Recovery parses the longest valid prefix — header
//! plus CRC-checked, contiguously sequenced frames — records *why* scanning
//! stopped, and truncates the device back to that prefix so appending can
//! resume. Everything after the first invalid byte is unrecoverable by
//! construction (frames are length-prefixed, so there is no resynchronising
//! past a corrupt length field).

use std::path::{Path, PathBuf};

use crate::storage::{Storage, StorageError};
use crate::wal::{
    crc32, Record, WalError, BODY_PREFIX_LEN, FRAME_HEADER_LEN, MAX_RECORD_LEN, SEGMENT_HEADER_LEN,
    WAL_MAGIC, WAL_VERSION,
};

/// Why a scan stopped before the end of the device. `None` in
/// [`ScanReport::corruption`] means the scan consumed every byte cleanly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Corruption {
    /// Fewer than [`SEGMENT_HEADER_LEN`] bytes present.
    ShortHeader,
    /// The magic prefix did not match [`WAL_MAGIC`].
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// Header stream id differs from the expected one.
    StreamMismatch {
        /// Stream id the caller expected.
        expected: u64,
        /// Stream id found in the header.
        found: u64,
    },
    /// A frame header or body extended past the end of the device (torn
    /// tail).
    ShortFrame {
        /// Byte offset where the incomplete frame starts.
        at: u64,
    },
    /// A frame length field was zero, too small or above
    /// [`MAX_RECORD_LEN`] — a flipped bit in `len` lands here.
    BadLength {
        /// Byte offset of the frame.
        at: u64,
        /// The corrupt length value.
        len: u32,
    },
    /// CRC mismatch over a frame body.
    CrcMismatch {
        /// Byte offset of the frame.
        at: u64,
    },
    /// Frame decoded cleanly but its sequence number broke contiguity.
    SeqGap {
        /// Byte offset of the frame.
        at: u64,
        /// Sequence number expected at this position.
        expected: u64,
        /// Sequence number found.
        found: u64,
    },
}

impl std::fmt::Display for Corruption {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Corruption::ShortHeader => write!(f, "segment shorter than header"),
            Corruption::BadMagic => write!(f, "bad segment magic"),
            Corruption::BadVersion(v) => write!(f, "unsupported wal version {v}"),
            Corruption::StreamMismatch { expected, found } => {
                write!(f, "stream id mismatch: expected {expected}, found {found}")
            }
            Corruption::ShortFrame { at } => write!(f, "torn frame at byte {at}"),
            Corruption::BadLength { at, len } => {
                write!(f, "corrupt frame length {len} at byte {at}")
            }
            Corruption::CrcMismatch { at } => write!(f, "crc mismatch at byte {at}"),
            Corruption::SeqGap {
                at,
                expected,
                found,
            } => {
                write!(
                    f,
                    "sequence gap at byte {at}: expected {expected}, found {found}"
                )
            }
        }
    }
}

/// Result of scanning one segment (or a whole segment directory).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanReport {
    /// All records in the valid prefix, in sequence order.
    pub records: Vec<Record>,
    /// Bytes of the valid prefix (header + intact frames). Truncating the
    /// device to this length yields an append-ready log.
    pub valid_len: u64,
    /// Bytes beyond the valid prefix that recovery discards.
    pub truncated_bytes: u64,
    /// Stream id from the segment header, when the header was intact.
    pub stream_id: Option<u64>,
    /// Why scanning stopped, or `None` for a clean end-of-log.
    pub corruption: Option<Corruption>,
    /// Sequence number the next appended record must carry.
    pub next_seq: u64,
}

fn read_u32(bytes: &[u8], at: usize) -> Option<u32> {
    let raw: [u8; 4] = bytes.get(at..at + 4)?.try_into().ok()?;
    Some(u32::from_le_bytes(raw))
}

fn read_u64(bytes: &[u8], at: usize) -> Option<u64> {
    let raw: [u8; 8] = bytes.get(at..at + 8)?.try_into().ok()?;
    Some(u64::from_le_bytes(raw))
}

/// Scans one segment image, starting sequence numbering at `first_seq`.
/// Used directly for segment 0 (`first_seq == 0`) and by [`scan_dir`] for
/// later segments.
#[must_use]
pub fn scan_from(bytes: &[u8], expect_stream: Option<u64>, first_seq: u64) -> ScanReport {
    let total = bytes.len() as u64;
    let mut report = ScanReport {
        records: Vec::new(),
        valid_len: 0,
        truncated_bytes: total,
        stream_id: None,
        corruption: None,
        next_seq: first_seq,
    };
    let header = match bytes.get(..SEGMENT_HEADER_LEN) {
        Some(h) => h,
        None => {
            report.corruption = Some(Corruption::ShortHeader);
            return report;
        }
    };
    if header.get(..8) != Some(&WAL_MAGIC[..]) {
        report.corruption = Some(Corruption::BadMagic);
        return report;
    }
    let version = read_u32(header, 8).unwrap_or(0);
    if version != WAL_VERSION {
        report.corruption = Some(Corruption::BadVersion(version));
        return report;
    }
    let stream = read_u64(header, 12).unwrap_or(0);
    if let Some(expected) = expect_stream {
        if stream != expected {
            report.corruption = Some(Corruption::StreamMismatch {
                expected,
                found: stream,
            });
            return report;
        }
    }
    report.stream_id = Some(stream);
    let mut at = SEGMENT_HEADER_LEN;
    let mut expected_seq = first_seq;
    loop {
        if at == bytes.len() {
            break; // clean end of log
        }
        let len = match read_u32(bytes, at) {
            Some(len) => len,
            None => {
                report.corruption = Some(Corruption::ShortFrame { at: at as u64 });
                break;
            }
        };
        if len < BODY_PREFIX_LEN as u32 || len > MAX_RECORD_LEN {
            report.corruption = Some(Corruption::BadLength { at: at as u64, len });
            break;
        }
        let body_start = at + FRAME_HEADER_LEN;
        let body_end = body_start + len as usize;
        let crc_expected = match read_u32(bytes, at + 4) {
            Some(crc) => crc,
            None => {
                report.corruption = Some(Corruption::ShortFrame { at: at as u64 });
                break;
            }
        };
        let body = match bytes.get(body_start..body_end) {
            Some(body) => body,
            None => {
                report.corruption = Some(Corruption::ShortFrame { at: at as u64 });
                break;
            }
        };
        if crc32(body) != crc_expected {
            report.corruption = Some(Corruption::CrcMismatch { at: at as u64 });
            break;
        }
        let seq = read_u64(body, 0).unwrap_or(0);
        if seq != expected_seq {
            report.corruption = Some(Corruption::SeqGap {
                at: at as u64,
                expected: expected_seq,
                found: seq,
            });
            break;
        }
        let kind = body.get(8).copied().unwrap_or(0);
        let payload = body.get(BODY_PREFIX_LEN..).unwrap_or(&[]).to_vec();
        report.records.push(Record { seq, kind, payload });
        expected_seq += 1;
        at = body_end;
    }
    report.valid_len = at as u64;
    report.truncated_bytes = total - report.valid_len;
    report.next_seq = expected_seq;
    report
}

/// Scans a segment image whose first record is sequence 0.
#[must_use]
pub fn scan(bytes: &[u8], expect_stream: Option<u64>) -> ScanReport {
    scan_from(bytes, expect_stream, 0)
}

/// Scans storage and truncates the corrupt tail in place, leaving the
/// device append-ready. Returns the scan report (post-truncation,
/// `truncated_bytes` reflects what was cut).
pub fn recover<S: Storage>(
    storage: &mut S,
    expect_stream: Option<u64>,
) -> Result<ScanReport, WalError> {
    let bytes = storage.read_all()?;
    let report = scan(&bytes, expect_stream);
    if report.truncated_bytes > 0 {
        storage.truncate(report.valid_len)?;
    }
    Ok(report)
}

/// Per-segment detail from a directory scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentReport {
    /// Path of the segment file.
    pub path: PathBuf,
    /// Records recovered from this segment.
    pub records: usize,
    /// First sequence number expected in this segment.
    pub first_seq: u64,
    /// Valid prefix length in bytes.
    pub valid_len: u64,
    /// Bytes discarded from this segment.
    pub truncated_bytes: u64,
    /// Why scanning stopped in this segment, if it did.
    pub corruption: Option<Corruption>,
}

/// Result of scanning a whole `DirWal` directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirScanReport {
    /// Concatenated records across all valid segment prefixes.
    pub records: Vec<Record>,
    /// Per-segment breakdown in index order.
    pub segments: Vec<SegmentReport>,
    /// Total bytes a [`recover_dir`] would discard, including whole
    /// segments after the first corrupt one.
    pub truncated_bytes: u64,
    /// First corruption encountered, if any.
    pub corruption: Option<Corruption>,
    /// Sequence number the next appended record must carry.
    pub next_seq: u64,
    /// Stream id of segment 0, when intact.
    pub stream_id: Option<u64>,
}

/// Scans every segment of a `DirWal` directory in order. Scanning stops at
/// the first corruption; later segments are counted wholly as truncatable.
pub fn scan_dir(dir: &Path, expect_stream: Option<u64>) -> Result<DirScanReport, WalError> {
    let paths = crate::wal::list_segments(dir)?;
    let mut out = DirScanReport {
        records: Vec::new(),
        segments: Vec::new(),
        truncated_bytes: 0,
        corruption: None,
        next_seq: 0,
        stream_id: None,
    };
    let mut next_seq = 0u64;
    let mut stream = expect_stream;
    let mut stopped = false;
    for path in paths {
        let bytes = std::fs::read(&path).map_err(StorageError::from)?;
        if stopped {
            // Everything after the first corrupt segment is discarded.
            out.truncated_bytes += bytes.len() as u64;
            out.segments.push(SegmentReport {
                path,
                records: 0,
                first_seq: next_seq,
                valid_len: 0,
                truncated_bytes: bytes.len() as u64,
                corruption: None,
            });
            continue;
        }
        let report = scan_from(&bytes, stream, next_seq);
        if out.stream_id.is_none() {
            out.stream_id = report.stream_id;
            // Later segments must carry the stream id segment 0 declared.
            if stream.is_none() {
                stream = report.stream_id;
            }
        }
        out.truncated_bytes += report.truncated_bytes;
        out.segments.push(SegmentReport {
            path,
            records: report.records.len(),
            first_seq: next_seq,
            valid_len: report.valid_len,
            truncated_bytes: report.truncated_bytes,
            corruption: report.corruption.clone(),
        });
        next_seq = report.next_seq;
        out.records.extend(report.records);
        if let Some(corruption) = report.corruption {
            out.corruption = Some(corruption);
            stopped = true;
        }
    }
    out.next_seq = next_seq;
    Ok(out)
}

/// Truncates a `DirWal` directory back to its valid prefix: the first
/// corrupt segment is cut at its valid length, every later segment file is
/// removed, and the directory is fsynced. Returns the (pre-truncation)
/// scan report.
pub fn recover_dir(dir: &Path, expect_stream: Option<u64>) -> Result<DirScanReport, WalError> {
    let report = scan_dir(dir, expect_stream)?;
    let mut cut = false;
    let mut removed_any = false;
    for seg in &report.segments {
        if cut {
            std::fs::remove_file(&seg.path).map_err(StorageError::from)?;
            removed_any = true;
            continue;
        }
        if seg.corruption.is_some() || seg.truncated_bytes > 0 {
            let file = std::fs::OpenOptions::new()
                .write(true)
                .open(&seg.path)
                .map_err(StorageError::from)?;
            file.set_len(seg.valid_len).map_err(StorageError::from)?;
            file.sync_data().map_err(StorageError::from)?;
            cut = true;
        }
    }
    if removed_any {
        crate::fsio::fsync_dir(dir).map_err(StorageError::from)?;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;
    use crate::wal::{FsyncPolicy, Wal};

    fn build_log(n: u64) -> Vec<u8> {
        let mut wal = Wal::create(MemStorage::new(), 7, FsyncPolicy::Always).expect("create");
        for i in 0..n {
            wal.append((i % 250) as u8, format!("payload-{i}").as_bytes())
                .expect("append");
        }
        wal.into_storage().bytes().to_vec()
    }

    #[test]
    fn clean_log_scans_fully() {
        let bytes = build_log(10);
        let report = scan(&bytes, Some(7));
        assert_eq!(report.records.len(), 10);
        assert_eq!(report.truncated_bytes, 0);
        assert_eq!(report.corruption, None);
        assert_eq!(report.next_seq, 10);
        assert_eq!(report.stream_id, Some(7));
    }

    #[test]
    fn empty_device_reports_short_header() {
        let report = scan(&[], None);
        assert_eq!(report.corruption, Some(Corruption::ShortHeader));
        assert_eq!(report.valid_len, 0);
    }

    #[test]
    fn torn_tail_is_truncated_at_frame_boundary() {
        let bytes = build_log(5);
        let full = scan(&bytes, Some(7));
        // Cut mid-way through the last frame.
        let cut = bytes.len() - 3;
        let torn = bytes.get(..cut).map(<[u8]>::to_vec).unwrap_or_default();
        let report = scan(&torn, Some(7));
        assert_eq!(report.records.len(), 4);
        assert!(matches!(
            report.corruption,
            Some(Corruption::ShortFrame { .. })
        ));
        assert!(report.valid_len < full.valid_len);
        assert_eq!(report.truncated_bytes, cut as u64 - report.valid_len);
    }

    #[test]
    fn every_single_byte_flip_is_caught() {
        // Flip each byte of a small log in turn: the scanner must never
        // return the full record set un-corrupt, and must never panic.
        let bytes = build_log(3);
        let clean = scan(&bytes, Some(7));
        assert_eq!(clean.records.len(), 3);
        for pos in 0..bytes.len() {
            let mut mutated = bytes.clone();
            if let Some(b) = mutated.get_mut(pos) {
                *b ^= 0x40;
            }
            let report = scan(&mutated, Some(7));
            assert!(
                report.corruption.is_some(),
                "flip at byte {pos} went undetected"
            );
            assert!(report.records.len() < 3 || report.corruption.is_some());
        }
    }

    #[test]
    fn recover_truncates_in_place_and_resumes() {
        let bytes = build_log(6);
        let cut = bytes.len() - 5;
        let torn = bytes.get(..cut).map(<[u8]>::to_vec).unwrap_or_default();
        let mut storage = MemStorage::from_bytes(torn);
        let report = recover(&mut storage, Some(7)).expect("recover");
        assert_eq!(report.records.len(), 5);
        assert_eq!(storage.len(), report.valid_len);
        // The truncated log is append-ready: resume and add a record.
        let mut wal = Wal::resume(storage, FsyncPolicy::Always, report.next_seq);
        wal.append(9, b"after-recovery").expect("append");
        let rescanned = scan(wal.into_storage().bytes(), Some(7));
        assert_eq!(rescanned.records.len(), 6);
        assert_eq!(rescanned.corruption, None);
        assert_eq!(
            rescanned.records.last().map(|r| r.kind),
            Some(9),
            "new record follows recovered prefix"
        );
    }

    #[test]
    fn stream_mismatch_is_rejected() {
        let bytes = build_log(2);
        let report = scan(&bytes, Some(8));
        assert_eq!(
            report.corruption,
            Some(Corruption::StreamMismatch {
                expected: 8,
                found: 7
            })
        );
        assert!(report.records.is_empty());
    }

    #[test]
    fn dir_recover_cuts_corrupt_segment_and_removes_later_ones() {
        let dir =
            std::env::temp_dir().join(format!("mpr-durable-recover-dir-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut wal = crate::wal::DirWal::create(&dir, 5, FsyncPolicy::Always, 96).expect("create");
        for i in 0..12u8 {
            wal.append(i, &[i; 24]).expect("append");
        }
        assert!(wal.segment_index() >= 2, "need at least 3 segments");
        drop(wal);
        // Corrupt the middle segment's last frame.
        let segments = crate::wal::list_segments(&dir).expect("list");
        let victim = segments.get(1).cloned().expect("second segment");
        let mut bytes = std::fs::read(&victim).expect("read victim");
        if let Some(b) = bytes.last_mut() {
            *b ^= 0xFF;
        }
        std::fs::write(&victim, &bytes).expect("write victim");
        let report = recover_dir(&dir, Some(5)).expect("recover");
        assert!(report.corruption.is_some());
        assert!(report.records.len() < 12);
        // After recovery the directory scans clean.
        let clean = scan_dir(&dir, Some(5)).expect("rescan");
        assert_eq!(clean.corruption, None);
        assert_eq!(clean.records.len(), report.records.len());
        assert_eq!(clean.truncated_bytes, 0);
        let remaining = crate::wal::list_segments(&dir).expect("list");
        assert_eq!(
            remaining.len(),
            2,
            "segments after the corrupt one are removed"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
