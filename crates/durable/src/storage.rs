//! Byte-level storage abstraction with real, in-memory and fault-injected
//! backends.
//!
//! The WAL (see [`crate::wal`]) is written against the [`Storage`] trait so
//! the same journaling code runs over a real file in production, a plain
//! `Vec<u8>` in unit tests, and a seeded [`FaultyDisk`] in the chaos
//! campaign. `FaultyDisk` models the volatile page cache explicitly: bytes
//! appended land in a *volatile* buffer and only migrate to the *durable*
//! image on a successful [`Storage::sync`]. A simulated crash
//! ([`FaultyDisk::crash`]) keeps the durable image plus a seeded prefix of
//! the volatile tail — exactly the torn state a real kernel leaves behind.

use std::fmt;
use std::fs;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Errors surfaced by [`Storage`] operations.
///
/// These model the fault classes a real disk exposes; [`FaultyDisk`]
/// injects them deterministically, [`FileStorage`] maps real `io::Error`s
/// onto them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// The device is out of space (ENOSPC): nothing was appended.
    Full,
    /// The append was torn: only the first `written` bytes of the request
    /// reached the device before the failure.
    TornWrite {
        /// Number of bytes of the request that were actually persisted.
        written: usize,
    },
    /// `fsync` failed; bytes appended since the last successful sync have
    /// unknown durability.
    SyncFailed,
    /// Any other I/O failure (real-file backend only).
    Io(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Full => write!(f, "storage full (ENOSPC)"),
            StorageError::TornWrite { written } => {
                write!(f, "torn write: only {written} bytes persisted")
            }
            StorageError::SyncFailed => write!(f, "fsync failed"),
            StorageError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(err: std::io::Error) -> Self {
        if err.kind() == std::io::ErrorKind::StorageFull {
            StorageError::Full
        } else {
            StorageError::Io(err.to_string())
        }
    }
}

/// An append-only byte device with explicit durability boundaries.
///
/// Appends are buffered ("volatile") until [`sync`](Storage::sync) returns
/// `Ok`; only then may the caller acknowledge the data as durable. This is
/// the contract the WAL's fsync policy is built on.
pub trait Storage {
    /// Appends `bytes` at the end of the device.
    fn append(&mut self, bytes: &[u8]) -> Result<(), StorageError>;

    /// Makes all previously appended bytes durable.
    fn sync(&mut self) -> Result<(), StorageError>;

    /// Total length in bytes (durable + volatile).
    fn len(&self) -> u64;

    /// True when the device holds no bytes at all.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reads the entire current contents.
    fn read_all(&mut self) -> Result<Vec<u8>, StorageError>;

    /// Truncates the device to `len` bytes and makes the truncation durable.
    fn truncate(&mut self, len: u64) -> Result<(), StorageError>;
}

/// Plain in-memory storage: a `Vec<u8>` where every append is immediately
/// "durable". Used by unit tests and the recovery scanner.
#[derive(Debug, Clone, Default)]
pub struct MemStorage {
    buf: Vec<u8>,
}

impl MemStorage {
    /// Creates an empty in-memory device.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a device pre-loaded with `bytes` (e.g. a scanned WAL image).
    #[must_use]
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        Self { buf: bytes }
    }

    /// Borrows the full contents.
    #[must_use]
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }
}

impl Storage for MemStorage {
    fn append(&mut self, bytes: &[u8]) -> Result<(), StorageError> {
        self.buf.extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&mut self) -> Result<(), StorageError> {
        Ok(())
    }

    fn len(&self) -> u64 {
        self.buf.len() as u64
    }

    fn read_all(&mut self) -> Result<Vec<u8>, StorageError> {
        Ok(self.buf.clone())
    }

    fn truncate(&mut self, len: u64) -> Result<(), StorageError> {
        let keep = usize::try_from(len)
            .unwrap_or(usize::MAX)
            .min(self.buf.len());
        self.buf.truncate(keep);
        Ok(())
    }
}

/// Real-file storage backing one WAL segment.
///
/// `sync` maps to `File::sync_data`; `truncate` to `File::set_len` followed
/// by a data sync so the shorter length is itself durable.
#[derive(Debug)]
pub struct FileStorage {
    path: PathBuf,
    file: fs::File,
    len: u64,
}

impl FileStorage {
    /// Creates (or truncates) the file at `path` for appending.
    pub fn create(path: &Path) -> Result<Self, StorageError> {
        let file = fs::OpenOptions::new()
            .create(true)
            .write(true)
            .read(true)
            .truncate(true)
            .open(path)?;
        Ok(Self {
            path: path.to_path_buf(),
            file,
            len: 0,
        })
    }

    /// Opens an existing file at `path` for appending at its current end.
    pub fn open(path: &Path) -> Result<Self, StorageError> {
        let mut file = fs::OpenOptions::new().write(true).read(true).open(path)?;
        let len = file.seek(SeekFrom::End(0))?;
        Ok(Self {
            path: path.to_path_buf(),
            file,
            len,
        })
    }

    /// The path this segment lives at.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Storage for FileStorage {
    fn append(&mut self, bytes: &[u8]) -> Result<(), StorageError> {
        self.file.seek(SeekFrom::Start(self.len))?;
        self.file.write_all(bytes)?;
        self.len += bytes.len() as u64;
        Ok(())
    }

    fn sync(&mut self) -> Result<(), StorageError> {
        self.file.sync_data()?;
        Ok(())
    }

    fn len(&self) -> u64 {
        self.len
    }

    fn read_all(&mut self) -> Result<Vec<u8>, StorageError> {
        self.file.seek(SeekFrom::Start(0))?;
        let mut out = Vec::new();
        self.file.read_to_end(&mut out)?;
        out.truncate(usize::try_from(self.len).unwrap_or(usize::MAX));
        Ok(out)
    }

    fn truncate(&mut self, len: u64) -> Result<(), StorageError> {
        let keep = len.min(self.len);
        self.file.set_len(keep)?;
        self.file.sync_data()?;
        self.len = keep;
        Ok(())
    }
}

/// Fault-injection knobs for [`FaultyDisk`]. All probabilities are per
/// operation; `Default` is a perfect disk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskFaultConfig {
    /// Probability that an append is torn: a seeded prefix of the request
    /// lands in the volatile buffer and the call fails with
    /// [`StorageError::TornWrite`].
    pub torn_write_prob: f64,
    /// Probability that an append succeeds but one seeded bit of the
    /// written bytes is flipped (silent media corruption — only the CRC
    /// catches it later).
    pub bit_flip_prob: f64,
    /// Probability that a sync fails with [`StorageError::SyncFailed`],
    /// leaving the volatile buffer volatile.
    pub fsync_fail_prob: f64,
    /// Optional capacity in bytes; appends that would exceed it fail with
    /// [`StorageError::Full`].
    pub capacity_bytes: Option<u64>,
}

impl Default for DiskFaultConfig {
    fn default() -> Self {
        Self {
            torn_write_prob: 0.0,
            bit_flip_prob: 0.0,
            fsync_fail_prob: 0.0,
            capacity_bytes: None,
        }
    }
}

impl DiskFaultConfig {
    /// True when at least one fault class can fire.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.torn_write_prob > 0.0
            || self.bit_flip_prob > 0.0
            || self.fsync_fail_prob > 0.0
            || self.capacity_bytes.is_some()
    }
}

/// Counters of injected faults, for reports and oracle context.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskFaultCounters {
    /// Appends torn mid-request.
    pub torn_writes: u64,
    /// Appends that had one bit silently flipped.
    pub bit_flips: u64,
    /// Appends rejected with ENOSPC.
    pub enospc_rejections: u64,
    /// Syncs that failed.
    pub fsync_failures: u64,
}

impl DiskFaultCounters {
    /// Total number of injected faults across all classes.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.torn_writes + self.bit_flips + self.enospc_rejections + self.fsync_failures
    }
}

/// Deterministic fault-injecting storage: the disk sibling of
/// `FaultySensor` and `SimNet`.
///
/// Maintains a durable image and a volatile buffer. Appends land in the
/// volatile buffer (possibly torn, flipped or rejected); a successful
/// [`sync`](Storage::sync) migrates volatile bytes to the durable image.
/// [`crash`](FaultyDisk::crash) simulates power loss: the durable image
/// survives, plus a seeded prefix of the volatile buffer (the pages the
/// kernel happened to write back), and everything else is gone.
#[derive(Debug, Clone)]
pub struct FaultyDisk {
    cfg: DiskFaultConfig,
    rng: ChaCha8Rng,
    durable: Vec<u8>,
    volatile: Vec<u8>,
    counters: DiskFaultCounters,
}

impl FaultyDisk {
    /// Creates an empty faulty disk. The RNG is seeded with
    /// `seed ^ DISK_SEED_XOR` by convention (callers apply the XOR).
    #[must_use]
    pub fn new(cfg: DiskFaultConfig, seed: u64) -> Self {
        Self {
            cfg,
            rng: ChaCha8Rng::seed_from_u64(seed),
            durable: Vec::new(),
            volatile: Vec::new(),
            counters: DiskFaultCounters::default(),
        }
    }

    /// Creates a faulty disk whose durable image is pre-loaded with
    /// `bytes` (e.g. the surviving image from a previous crash).
    #[must_use]
    pub fn with_image(cfg: DiskFaultConfig, seed: u64, bytes: Vec<u8>) -> Self {
        let mut disk = Self::new(cfg, seed);
        disk.durable = bytes;
        disk
    }

    /// Simulates power loss: keeps the durable image plus a seeded prefix
    /// of the volatile buffer, discards the rest. Returns the number of
    /// volatile bytes lost.
    pub fn crash(&mut self) -> u64 {
        let pending = self.volatile.len();
        let survived = if pending == 0 {
            0
        } else {
            self.rng.gen_range(0..=pending)
        };
        let mut tail = std::mem::take(&mut self.volatile);
        tail.truncate(survived);
        self.durable.extend_from_slice(&tail);
        (pending - survived) as u64
    }

    /// The durable image — what a post-crash reader would see.
    #[must_use]
    pub fn durable_bytes(&self) -> &[u8] {
        &self.durable
    }

    /// Length of the durable image in bytes.
    #[must_use]
    pub fn durable_len(&self) -> u64 {
        self.durable.len() as u64
    }

    /// Injected-fault counters so far.
    #[must_use]
    pub fn counters(&self) -> DiskFaultCounters {
        self.counters
    }

    /// Flips one seeded bit somewhere in `bytes`.
    fn flip_one_bit(&mut self, bytes: &mut [u8]) {
        if bytes.is_empty() {
            return;
        }
        let pos = self.rng.gen_range(0..bytes.len());
        let bit = self.rng.gen_range(0..8u32);
        if let Some(target) = bytes.get_mut(pos) {
            *target ^= 1u8 << bit;
        }
    }
}

impl Storage for FaultyDisk {
    fn append(&mut self, bytes: &[u8]) -> Result<(), StorageError> {
        if let Some(cap) = self.cfg.capacity_bytes {
            let used = self.durable.len() as u64 + self.volatile.len() as u64;
            if used + bytes.len() as u64 > cap {
                self.counters.enospc_rejections += 1;
                return Err(StorageError::Full);
            }
        }
        // Draw order is fixed (torn, then flip) so fault streams are stable
        // across config changes that only adjust probabilities.
        let torn = self.cfg.torn_write_prob > 0.0 && self.rng.gen_bool(self.cfg.torn_write_prob);
        if torn {
            let written = if bytes.is_empty() {
                0
            } else {
                self.rng.gen_range(0..bytes.len())
            };
            let prefix = bytes.get(..written).unwrap_or(&[]);
            self.volatile.extend_from_slice(prefix);
            self.counters.torn_writes += 1;
            return Err(StorageError::TornWrite { written });
        }
        let flip = self.cfg.bit_flip_prob > 0.0 && self.rng.gen_bool(self.cfg.bit_flip_prob);
        if flip {
            let mut copy = bytes.to_vec();
            self.flip_one_bit(&mut copy);
            self.volatile.extend_from_slice(&copy);
            self.counters.bit_flips += 1;
        } else {
            self.volatile.extend_from_slice(bytes);
        }
        Ok(())
    }

    fn sync(&mut self) -> Result<(), StorageError> {
        let fail = self.cfg.fsync_fail_prob > 0.0 && self.rng.gen_bool(self.cfg.fsync_fail_prob);
        if fail {
            self.counters.fsync_failures += 1;
            return Err(StorageError::SyncFailed);
        }
        let pending = std::mem::take(&mut self.volatile);
        self.durable.extend_from_slice(&pending);
        Ok(())
    }

    fn len(&self) -> u64 {
        (self.durable.len() + self.volatile.len()) as u64
    }

    fn read_all(&mut self) -> Result<Vec<u8>, StorageError> {
        let mut out = self.durable.clone();
        out.extend_from_slice(&self.volatile);
        Ok(out)
    }

    fn truncate(&mut self, len: u64) -> Result<(), StorageError> {
        let keep = usize::try_from(len).unwrap_or(usize::MAX);
        if keep <= self.durable.len() {
            self.durable.truncate(keep);
            self.volatile.clear();
        } else {
            let extra = keep - self.durable.len();
            self.volatile.truncate(extra);
            let pending = std::mem::take(&mut self.volatile);
            self.durable.extend_from_slice(&pending);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_storage_append_and_truncate() {
        let mut s = MemStorage::new();
        s.append(b"hello").expect("append");
        s.append(b" world").expect("append");
        assert_eq!(s.len(), 11);
        assert_eq!(s.read_all().expect("read"), b"hello world");
        s.truncate(5).expect("truncate");
        assert_eq!(s.read_all().expect("read"), b"hello");
        // Truncate beyond the end is a no-op.
        s.truncate(100).expect("truncate");
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn file_storage_round_trips_and_truncates() {
        let dir = std::env::temp_dir().join(format!("mpr-durable-storage-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("seg.log");
        {
            let mut s = FileStorage::create(&path).expect("create");
            s.append(b"abcdef").expect("append");
            s.sync().expect("sync");
            assert_eq!(s.len(), 6);
        }
        {
            let mut s = FileStorage::open(&path).expect("open");
            assert_eq!(s.len(), 6);
            s.append(b"ghi").expect("append");
            assert_eq!(s.read_all().expect("read"), b"abcdefghi");
            s.truncate(4).expect("truncate");
            assert_eq!(s.read_all().expect("read"), b"abcd");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn perfect_faulty_disk_behaves_like_mem() {
        let mut disk = FaultyDisk::new(DiskFaultConfig::default(), 7);
        disk.append(b"aaa").expect("append");
        assert_eq!(disk.durable_len(), 0, "pre-sync bytes are volatile");
        disk.sync().expect("sync");
        assert_eq!(disk.durable_len(), 3);
        assert_eq!(disk.read_all().expect("read"), b"aaa");
        assert_eq!(disk.counters().total(), 0);
    }

    #[test]
    fn crash_loses_unsynced_tail() {
        let mut disk = FaultyDisk::new(DiskFaultConfig::default(), 11);
        disk.append(b"synced").expect("append");
        disk.sync().expect("sync");
        disk.append(b"volatile-tail").expect("append");
        disk.crash();
        let after = disk.read_all().expect("read");
        assert!(after.starts_with(b"synced"));
        assert!(after.len() <= b"synced".len() + b"volatile-tail".len());
        // The surviving prefix of the volatile tail is a *prefix*.
        let tail = after.get(6..).unwrap_or(&[]);
        assert!(b"volatile-tail".starts_with(tail));
    }

    #[test]
    fn crash_is_seed_deterministic() {
        let run = |seed: u64| {
            let mut disk = FaultyDisk::new(DiskFaultConfig::default(), seed);
            disk.append(b"0123456789").expect("append");
            disk.crash();
            disk.read_all().expect("read")
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn enospc_fires_at_capacity() {
        let cfg = DiskFaultConfig {
            capacity_bytes: Some(8),
            ..DiskFaultConfig::default()
        };
        let mut disk = FaultyDisk::new(cfg, 1);
        disk.append(b"12345678").expect("fits exactly");
        assert_eq!(disk.append(b"x"), Err(StorageError::Full));
        assert_eq!(disk.counters().enospc_rejections, 1);
    }

    #[test]
    fn torn_write_persists_only_a_prefix() {
        let cfg = DiskFaultConfig {
            torn_write_prob: 1.0,
            ..DiskFaultConfig::default()
        };
        let mut disk = FaultyDisk::new(cfg, 3);
        let err = disk.append(b"abcdefgh").expect_err("always torn");
        match err {
            StorageError::TornWrite { written } => {
                assert!(written < 8);
                disk.sync().expect("sync");
                let img = disk.read_all().expect("read");
                assert_eq!(img.len(), written);
                assert!(b"abcdefgh".starts_with(&img[..]));
            }
            other => panic!("expected torn write, got {other:?}"),
        }
        assert_eq!(disk.counters().torn_writes, 1);
    }

    #[test]
    fn bit_flip_changes_exactly_one_bit() {
        let cfg = DiskFaultConfig {
            bit_flip_prob: 1.0,
            ..DiskFaultConfig::default()
        };
        let mut disk = FaultyDisk::new(cfg, 5);
        let original = [0u8; 16];
        disk.append(&original).expect("append");
        disk.sync().expect("sync");
        let stored = disk.read_all().expect("read");
        let differing_bits: u32 = stored.iter().map(|b| b.count_ones()).sum();
        assert_eq!(differing_bits, 1, "exactly one bit flipped");
        assert_eq!(disk.counters().bit_flips, 1);
    }

    #[test]
    fn fsync_failure_keeps_bytes_volatile() {
        let cfg = DiskFaultConfig {
            fsync_fail_prob: 1.0,
            ..DiskFaultConfig::default()
        };
        let mut disk = FaultyDisk::new(cfg, 9);
        disk.append(b"data").expect("append");
        assert_eq!(disk.sync(), Err(StorageError::SyncFailed));
        assert_eq!(disk.durable_len(), 0);
        assert_eq!(disk.counters().fsync_failures, 1);
    }
}
