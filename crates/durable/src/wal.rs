//! Append-only, CRC-framed, versioned write-ahead log.
//!
//! # On-disk format
//!
//! A segment starts with a 20-byte header:
//!
//! ```text
//! magic   8 bytes   b"MPRWAL1\0"
//! version 4 bytes   u32 LE (WAL_VERSION)
//! stream  8 bytes   u64 LE stream id (ties segments to one run)
//! ```
//!
//! followed by zero or more record frames:
//!
//! ```text
//! len     4 bytes   u32 LE, length of body (seq + kind + payload)
//! crc     4 bytes   u32 LE, CRC-32 (IEEE) of body
//! body:
//!   seq     8 bytes u64 LE, contiguous from the segment's first record
//!   kind    1 byte
//!   payload len-9 bytes
//! ```
//!
//! Each frame is appended with a single [`Storage::append`] call, so a torn
//! write tears *inside* one frame and the recovery scanner
//! ([`crate::recover`]) can always identify the longest valid prefix.
//!
//! # Acknowledgement contract
//!
//! [`Wal::acked_seq`] is the highest record sequence the ledger may report
//! as durable to the outside world. Under [`FsyncPolicy::Always`] and
//! [`FsyncPolicy::EveryRecords`] it advances only on successful sync. Under
//! [`FsyncPolicy::Never`] it advances on append — which is precisely the
//! misconfiguration the chaos campaign's `durability-commit` oracle exists
//! to catch: a crash then loses acknowledged records.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use crate::fsio;
use crate::storage::{FileStorage, Storage, StorageError};

/// Magic prefix of every WAL segment.
pub const WAL_MAGIC: [u8; 8] = *b"MPRWAL1\0";

/// Current on-disk format version.
pub const WAL_VERSION: u32 = 1;

/// Segment header length in bytes: magic + version + stream id.
pub const SEGMENT_HEADER_LEN: usize = 8 + 4 + 8;

/// Frame header length in bytes: len + crc.
pub const FRAME_HEADER_LEN: usize = 4 + 4;

/// Body bytes preceding the payload: seq + kind.
pub const BODY_PREFIX_LEN: usize = 8 + 1;

/// Upper bound on a record body; larger `len` fields are treated as
/// corruption by the scanner (a single flipped bit in `len` must not make
/// recovery attempt a multi-gigabyte read).
pub const MAX_RECORD_LEN: u32 = 1 << 26;

/// CRC-32 (IEEE 802.3, reflected, init/xorout `0xFFFFFFFF`) — bitwise
/// implementation, no lookup table, deterministic everywhere.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFF_u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// When the WAL calls [`Storage::sync`] relative to appends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Sync after every record: strongest durability, every append is
    /// acknowledged only once durable.
    Always,
    /// Sync after every `n` records (group commit): bounded-loss window of
    /// at most `n-1` records, acknowledgement lags to the last sync.
    EveryRecords(u32),
    /// Never sync, yet acknowledge on append. This is an intentionally
    /// unsound policy kept for the chaos campaign's planted-bug self-test:
    /// a crash loses acknowledged records and the `durability-commit`
    /// oracle must catch it.
    Never,
}

impl FsyncPolicy {
    /// Parses the CLI spelling: `always`, `never` or `every=<n>`.
    pub fn parse(text: &str) -> Result<Self, String> {
        match text {
            "always" => Ok(FsyncPolicy::Always),
            "never" => Ok(FsyncPolicy::Never),
            other => match other.strip_prefix("every=") {
                Some(n) => match n.parse::<u32>() {
                    Ok(count) if count > 0 => Ok(FsyncPolicy::EveryRecords(count)),
                    _ => Err(format!("invalid fsync group size: {n}")),
                },
                None => Err(format!(
                    "unknown fsync policy '{other}' (expected always, never or every=<n>)"
                )),
            },
        }
    }
}

impl fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsyncPolicy::Always => write!(f, "always"),
            FsyncPolicy::EveryRecords(n) => write!(f, "every={n}"),
            FsyncPolicy::Never => write!(f, "never"),
        }
    }
}

/// One decoded WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Sequence number, contiguous from 0 within a stream.
    pub seq: u64,
    /// Application-defined record kind tag.
    pub kind: u8,
    /// Opaque payload bytes.
    pub payload: Vec<u8>,
}

/// Errors surfaced by WAL operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalError {
    /// The underlying storage failed; the WAL is wedged afterwards.
    Storage(StorageError),
    /// Record payload exceeds [`MAX_RECORD_LEN`].
    RecordTooLarge(usize),
    /// The WAL is wedged by an earlier storage fault; no further appends
    /// or acknowledgements are possible until recovery.
    Wedged,
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Storage(err) => write!(f, "wal storage error: {err}"),
            WalError::RecordTooLarge(n) => write!(f, "record payload too large: {n} bytes"),
            WalError::Wedged => write!(f, "wal is wedged by an earlier storage fault"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<StorageError> for WalError {
    fn from(err: StorageError) -> Self {
        WalError::Storage(err)
    }
}

/// Encodes one record frame (header + body) into a contiguous buffer.
#[must_use]
pub fn encode_frame(seq: u64, kind: u8, payload: &[u8]) -> Vec<u8> {
    let body_len = BODY_PREFIX_LEN + payload.len();
    let mut body = Vec::with_capacity(body_len);
    body.extend_from_slice(&seq.to_le_bytes());
    body.push(kind);
    body.extend_from_slice(payload);
    let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + body_len);
    frame.extend_from_slice(&(body_len as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&body).to_le_bytes());
    frame.extend_from_slice(&body);
    frame
}

/// Encodes a segment header for `stream_id`.
#[must_use]
pub fn encode_segment_header(stream_id: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(SEGMENT_HEADER_LEN);
    out.extend_from_slice(&WAL_MAGIC);
    out.extend_from_slice(&WAL_VERSION.to_le_bytes());
    out.extend_from_slice(&stream_id.to_le_bytes());
    out
}

/// A single-segment write-ahead log over any [`Storage`].
///
/// The simulator's crash/recover harness runs this over a
/// [`FaultyDisk`](crate::storage::FaultyDisk); `DirWal` composes it over
/// [`FileStorage`] segments for real deployments.
#[derive(Debug)]
pub struct Wal<S: Storage> {
    storage: S,
    policy: FsyncPolicy,
    next_seq: u64,
    appended_seq: Option<u64>,
    synced_seq: Option<u64>,
    since_sync: u32,
    wedged: Option<StorageError>,
}

impl<S: Storage> Wal<S> {
    /// Creates a fresh WAL on empty storage: writes and syncs the segment
    /// header so even a zero-record log is recognisable.
    pub fn create(mut storage: S, stream_id: u64, policy: FsyncPolicy) -> Result<Self, WalError> {
        storage.append(&encode_segment_header(stream_id))?;
        storage.sync()?;
        Ok(Self {
            storage,
            policy,
            next_seq: 0,
            appended_seq: None,
            synced_seq: None,
            since_sync: 0,
            wedged: None,
        })
    }

    /// Creates a fresh WAL, *wedging* instead of failing when the segment
    /// header cannot be made durable (a torn header write or ENOSPC at
    /// birth on a faulty device): the returned WAL refuses every append
    /// but the caller keeps running without durability — exactly the
    /// degraded mode a mid-run storage fault produces.
    pub fn create_or_wedge(mut storage: S, stream_id: u64, policy: FsyncPolicy) -> Self {
        let wedged = storage
            .append(&encode_segment_header(stream_id))
            .and_then(|()| storage.sync())
            .err();
        Self {
            storage,
            policy,
            next_seq: 0,
            appended_seq: None,
            synced_seq: None,
            since_sync: 0,
            wedged,
        }
    }

    /// Resumes appending to storage that already holds a valid prefix
    /// (header + records `0..next_seq`), e.g. after recovery truncated the
    /// corrupt tail. The existing prefix is treated as durable.
    pub fn resume(storage: S, policy: FsyncPolicy, next_seq: u64) -> Self {
        let last = next_seq.checked_sub(1);
        Self {
            storage,
            policy,
            next_seq,
            appended_seq: last,
            synced_seq: last,
            since_sync: 0,
            wedged: None,
        }
    }

    /// Appends one record, returning its sequence number. Depending on the
    /// fsync policy this may also sync. Any storage fault wedges the WAL:
    /// journaling stops, the caller keeps running without durability and
    /// recovery replays up to the last durable acknowledgement.
    pub fn append(&mut self, kind: u8, payload: &[u8]) -> Result<u64, WalError> {
        if self.wedged.is_some() {
            return Err(WalError::Wedged);
        }
        if payload.len() > MAX_RECORD_LEN as usize - BODY_PREFIX_LEN {
            return Err(WalError::RecordTooLarge(payload.len()));
        }
        let seq = self.next_seq;
        let frame = encode_frame(seq, kind, payload);
        if let Err(err) = self.storage.append(&frame) {
            self.wedged = Some(err.clone());
            return Err(WalError::Storage(err));
        }
        self.next_seq += 1;
        self.appended_seq = Some(seq);
        self.since_sync += 1;
        match self.policy {
            FsyncPolicy::Always => self.sync()?,
            FsyncPolicy::EveryRecords(n) => {
                if self.since_sync >= n {
                    self.sync()?;
                }
            }
            FsyncPolicy::Never => {}
        }
        Ok(seq)
    }

    /// Forces a sync now regardless of policy, advancing the durable
    /// acknowledgement to the last appended record on success.
    pub fn sync(&mut self) -> Result<(), WalError> {
        if self.wedged.is_some() {
            return Err(WalError::Wedged);
        }
        if let Err(err) = self.storage.sync() {
            self.wedged = Some(err.clone());
            return Err(WalError::Storage(err));
        }
        self.synced_seq = self.appended_seq;
        self.since_sync = 0;
        Ok(())
    }

    /// Highest sequence number the ledger may *acknowledge* as durable.
    ///
    /// `Always`/`EveryRecords`: the last successfully synced record.
    /// `Never`: the last appended record — the unsound acknowledgement that
    /// the planted-bug self-test relies on.
    #[must_use]
    pub fn acked_seq(&self) -> Option<u64> {
        match self.policy {
            FsyncPolicy::Never => self.appended_seq,
            _ => self.synced_seq,
        }
    }

    /// Highest sequence number known durable (post-sync), independent of
    /// policy.
    #[must_use]
    pub fn synced_seq(&self) -> Option<u64> {
        self.synced_seq
    }

    /// Sequence number the next append will get.
    #[must_use]
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The storage fault that wedged this WAL, if any.
    #[must_use]
    pub fn wedge_cause(&self) -> Option<&StorageError> {
        self.wedged.as_ref()
    }

    /// True once a storage fault has stopped journaling.
    #[must_use]
    pub fn is_wedged(&self) -> bool {
        self.wedged.is_some()
    }

    /// Borrows the underlying storage immutably (e.g. to read fault
    /// counters off a `FaultyDisk`).
    pub fn storage(&self) -> &S {
        &self.storage
    }

    /// Borrows the underlying storage (e.g. to crash a `FaultyDisk`).
    pub fn storage_mut(&mut self) -> &mut S {
        &mut self.storage
    }

    /// Consumes the WAL, returning the underlying storage.
    pub fn into_storage(self) -> S {
        self.storage
    }
}

/// File-backed multi-segment WAL with atomic rotation.
///
/// Segments are named `wal-NNNNNNNN.log` inside one directory. Rotation
/// syncs the active segment, creates the next one (header synced), then
/// fsyncs the directory so the new segment's existence is itself durable —
/// the same parent-directory discipline as [`fsio::atomic_replace`].
#[derive(Debug)]
pub struct DirWal {
    dir: PathBuf,
    stream_id: u64,
    max_segment_bytes: u64,
    seg_index: u64,
    inner: Wal<FileStorage>,
}

/// Formats the file name of segment `index`.
#[must_use]
pub fn segment_file_name(index: u64) -> String {
    format!("wal-{index:08}.log")
}

/// Lists the segment paths in a WAL directory in ascending index order.
pub fn list_segments(dir: &Path) -> Result<Vec<PathBuf>, WalError> {
    let mut names: Vec<String> = Vec::new();
    let entries = fs::read_dir(dir).map_err(StorageError::from)?;
    for entry in entries {
        let entry = entry.map_err(StorageError::from)?;
        if let Some(name) = entry.file_name().to_str() {
            if name.starts_with("wal-") && name.ends_with(".log") {
                names.push(name.to_string());
            }
        }
    }
    names.sort();
    Ok(names.iter().map(|n| dir.join(n)).collect())
}

impl DirWal {
    /// Creates a fresh WAL directory (must be empty of segments) with
    /// segment 0 initialised and durable.
    pub fn create(
        dir: &Path,
        stream_id: u64,
        policy: FsyncPolicy,
        max_segment_bytes: u64,
    ) -> Result<Self, WalError> {
        fs::create_dir_all(dir).map_err(StorageError::from)?;
        let existing = list_segments(dir)?;
        if let Some(first) = existing.first() {
            return Err(WalError::Storage(StorageError::Io(format!(
                "wal directory not empty: {} already exists",
                first.display()
            ))));
        }
        let seg_path = dir.join(segment_file_name(0));
        let storage = FileStorage::create(&seg_path)?;
        let inner = Wal::create(storage, stream_id, policy)?;
        fsio::fsync_dir(dir).map_err(StorageError::from)?;
        Ok(Self {
            dir: dir.to_path_buf(),
            stream_id,
            max_segment_bytes,
            seg_index: 0,
            inner,
        })
    }

    /// Appends one record, rotating to a new segment first when the active
    /// one has reached the size threshold.
    pub fn append(&mut self, kind: u8, payload: &[u8]) -> Result<u64, WalError> {
        if self.inner.storage_mut().len() >= self.max_segment_bytes {
            self.rotate()?;
        }
        self.inner.append(kind, payload)
    }

    /// Forces a sync of the active segment.
    pub fn sync(&mut self) -> Result<(), WalError> {
        self.inner.sync()
    }

    /// Highest acknowledged sequence (see [`Wal::acked_seq`]).
    #[must_use]
    pub fn acked_seq(&self) -> Option<u64> {
        self.inner.acked_seq()
    }

    /// Sequence number the next append will get.
    #[must_use]
    pub fn next_seq(&self) -> u64 {
        self.inner.next_seq()
    }

    /// Number of the active segment.
    #[must_use]
    pub fn segment_index(&self) -> u64 {
        self.seg_index
    }

    /// The WAL directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Seals the active segment and starts the next one atomically: old
    /// segment synced, new segment created with a synced header, directory
    /// fsynced so the rotation survives power loss.
    fn rotate(&mut self) -> Result<(), WalError> {
        self.inner.sync()?;
        let next_index = self.seg_index + 1;
        let seg_path = self.dir.join(segment_file_name(next_index));
        let storage = FileStorage::create(&seg_path)?;
        let policy = self.policy();
        let next_seq = self.inner.next_seq();
        let mut fresh = Wal::create(storage, self.stream_id, policy)?;
        fresh.next_seq = next_seq;
        fresh.appended_seq = next_seq.checked_sub(1);
        fresh.synced_seq = fresh.appended_seq;
        fsio::fsync_dir(&self.dir).map_err(StorageError::from)?;
        self.inner = fresh;
        self.seg_index = next_index;
        Ok(())
    }

    fn policy(&self) -> FsyncPolicy {
        self.inner.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn fsync_policy_parse_round_trips() {
        for text in ["always", "never", "every=16"] {
            let policy = FsyncPolicy::parse(text).expect("parse");
            assert_eq!(policy.to_string(), text);
        }
        assert!(FsyncPolicy::parse("every=0").is_err());
        assert!(FsyncPolicy::parse("sometimes").is_err());
    }

    #[test]
    fn wal_appends_sequenced_records() {
        let mut wal = Wal::create(MemStorage::new(), 42, FsyncPolicy::Always).expect("create");
        assert_eq!(wal.append(1, b"alpha").expect("append"), 0);
        assert_eq!(wal.append(2, b"beta").expect("append"), 1);
        assert_eq!(wal.acked_seq(), Some(1));
        let bytes = wal.into_storage();
        let report = crate::recover::scan(bytes.bytes(), Some(42));
        assert_eq!(report.records.len(), 2);
        assert_eq!(report.truncated_bytes, 0);
    }

    #[test]
    fn never_policy_acks_without_durability() {
        let mut wal = Wal::create(MemStorage::new(), 1, FsyncPolicy::Never).expect("create");
        wal.append(1, b"x").expect("append");
        assert_eq!(wal.acked_seq(), Some(0), "Never acks on append");
        assert_eq!(wal.synced_seq(), None, "but nothing is durable");
    }

    #[test]
    fn group_commit_acks_lag_to_sync_boundaries() {
        let mut wal =
            Wal::create(MemStorage::new(), 1, FsyncPolicy::EveryRecords(3)).expect("create");
        wal.append(1, b"a").expect("append");
        wal.append(1, b"b").expect("append");
        assert_eq!(wal.acked_seq(), None);
        wal.append(1, b"c").expect("append");
        assert_eq!(wal.acked_seq(), Some(2), "third append triggers group sync");
    }

    #[test]
    fn storage_fault_wedges_the_wal() {
        use crate::storage::{DiskFaultConfig, FaultyDisk};
        let cfg = DiskFaultConfig {
            capacity_bytes: Some(64),
            ..DiskFaultConfig::default()
        };
        let disk = FaultyDisk::new(cfg, 1);
        let mut wal = Wal::create(disk, 7, FsyncPolicy::Always).expect("create");
        let mut wedged_at = None;
        for i in 0..100u64 {
            if wal.append(1, b"0123456789abcdef").is_err() {
                wedged_at = Some(i);
                break;
            }
        }
        assert!(
            wedged_at.is_some(),
            "capacity must wedge the wal eventually"
        );
        assert!(wal.is_wedged());
        assert_eq!(wal.append(1, b"more"), Err(WalError::Wedged));
        assert_eq!(wal.sync(), Err(WalError::Wedged));
    }

    #[test]
    fn dir_wal_rotates_and_scans_across_segments() {
        let dir = std::env::temp_dir().join(format!("mpr-durable-dirwal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut wal = DirWal::create(&dir, 99, FsyncPolicy::Always, 128).expect("create");
        for i in 0..20u8 {
            wal.append(i, &[i; 16]).expect("append");
        }
        assert!(
            wal.segment_index() > 0,
            "small threshold must force rotation"
        );
        assert_eq!(wal.acked_seq(), Some(19));
        let report = crate::recover::scan_dir(&dir, Some(99)).expect("scan");
        assert_eq!(report.records.len(), 20);
        assert_eq!(report.next_seq, 20);
        assert_eq!(report.truncated_bytes, 0);
        let kinds: Vec<u8> = report.records.iter().map(|r| r.kind).collect();
        let expect: Vec<u8> = (0..20u8).collect();
        assert_eq!(kinds, expect);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dir_wal_refuses_nonempty_directory() {
        let dir =
            std::env::temp_dir().join(format!("mpr-durable-dirwal-refuse-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let _wal = DirWal::create(&dir, 1, FsyncPolicy::Always, 1024).expect("create");
        }
        assert!(DirWal::create(&dir, 1, FsyncPolicy::Always, 1024).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
