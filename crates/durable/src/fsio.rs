//! Crash-durable filesystem helpers shared by the WAL and the simulator's
//! checkpoint writer.
//!
//! The classic atomic-replace recipe is: write the bytes to a temp file,
//! `fsync` the temp file, `rename` it over the destination, then `fsync`
//! the **parent directory** so the rename itself is durable. Omitting the
//! final directory fsync (the pre-PR-7 checkpoint bug) lets the whole file
//! vanish on power loss even though `rename` already returned.

use std::fs;
use std::io::{self, Write};
use std::path::Path;

/// Fsyncs a directory so that recent renames/creations/removals inside it
/// survive power loss.
///
/// On Unix a directory can be opened read-only and `fsync`ed like a file.
/// On platforms where opening a directory fails, this degrades to a no-op:
/// the data fsyncs still hold, only the rename durability window widens,
/// which matches the pre-fix behaviour rather than erroring out.
pub fn fsync_dir(dir: &Path) -> io::Result<()> {
    match fs::File::open(dir) {
        Ok(handle) => handle.sync_all(),
        Err(err) if err.kind() == io::ErrorKind::NotFound => Err(err),
        Err(_) => Ok(()),
    }
}

/// Atomically replaces `path` with `bytes`, durable across power loss.
///
/// Writes to `<path>.tmp`, fsyncs the file, renames over `path`, then
/// fsyncs the parent directory. Readers therefore observe either the old
/// complete file or the new complete file, never a partial write — and the
/// new file cannot disappear after this function returns `Ok`.
pub fn atomic_replace(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = tmp_sibling(path);
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fsync_dir(parent)?;
        }
    }
    Ok(())
}

/// Builds the temp-file path used by [`atomic_replace`]: `<path>.tmp` in the
/// same directory, so the final `rename` never crosses a filesystem.
fn tmp_sibling(path: &Path) -> std::path::PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    std::path::PathBuf::from(os)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mpr-durable-fsio-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create tmpdir");
        dir
    }

    #[test]
    fn atomic_replace_round_trips() {
        let dir = tmpdir("round-trip");
        let path = dir.join("ledger.bin");
        atomic_replace(&path, b"first").expect("first write");
        assert_eq!(fs::read(&path).expect("read back"), b"first");
        atomic_replace(&path, b"second-longer-content").expect("replace");
        assert_eq!(
            fs::read(&path).expect("read back"),
            b"second-longer-content"
        );
        // The temp sibling must not linger after a successful replace.
        assert!(!dir.join("ledger.bin.tmp").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsync_dir_on_missing_dir_is_an_error() {
        let dir = tmpdir("missing").join("does-not-exist");
        assert!(fsync_dir(&dir).is_err());
    }

    #[test]
    fn fsync_dir_on_real_dir_succeeds() {
        let dir = tmpdir("real");
        fsync_dir(&dir).expect("fsync dir");
        let _ = fs::remove_dir_all(&dir);
    }
}
