//! Process-level self-healing: run the engine under `catch_unwind`, retry
//! with capped exponential backoff, escalate to safe mode after a bounded
//! number of failed recoveries.
//!
//! This extends PR 1's *mechanism-level* degradation ladder (MPR-INT →
//! MPR-STAT → EQL capping) to the *process* level: a crash of the manager
//! itself triggers restart-with-recovery, and repeated failure escalates to
//! the same terminal safe mode the ladder bottoms out in — EQL capping with
//! admission hold — rather than crash-looping forever.
//!
//! Backoff is computed, not slept: the simulator runs in virtual time, so
//! the supervisor reports the per-attempt backoff schedule it *would* apply
//! and callers account for it (the chaos `durability-replay` oracle bounds
//! total restarts, which bounds recovery time).

use std::panic::{catch_unwind, AssertUnwindSafe};

/// Restart policy for a supervised engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Maximum number of restarts before escalating to safe mode.
    pub max_restarts: u32,
    /// Backoff before restart 1, in milliseconds.
    pub backoff_base_ms: u64,
    /// Upper bound on any single backoff, in milliseconds.
    pub backoff_cap_ms: u64,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            max_restarts: 3,
            backoff_base_ms: 50,
            backoff_cap_ms: 2_000,
        }
    }
}

/// Backoff before restart number `attempt` (1-based):
/// `base * 2^(attempt-1)`, capped. Attempt 0 (the initial run) has no
/// backoff.
#[must_use]
pub fn backoff_ms(cfg: &SupervisorConfig, attempt: u32) -> u64 {
    if attempt == 0 {
        return 0;
    }
    let exp = attempt.saturating_sub(1).min(63);
    let factor = 1u64.checked_shl(exp).unwrap_or(u64::MAX);
    cfg.backoff_base_ms
        .saturating_mul(factor)
        .min(cfg.backoff_cap_ms)
}

/// Outcome of a supervised run.
#[derive(Debug, Clone, PartialEq)]
pub enum Supervised<T> {
    /// An attempt completed; `restarts` counts how many recoveries it took.
    Completed {
        /// The successful attempt's result.
        value: T,
        /// Number of restarts consumed before success (0 = first try).
        restarts: u32,
        /// Backoff applied before each restart, in order.
        backoff_schedule_ms: Vec<u64>,
        /// Human-readable failure causes of the unsuccessful attempts.
        failures: Vec<String>,
    },
    /// All `1 + max_restarts` attempts failed: the caller must fall to
    /// safe mode (EQL capping, admission hold).
    Escalated {
        /// Number of restarts consumed (== `max_restarts`).
        restarts: u32,
        /// Backoff applied before each restart, in order.
        backoff_schedule_ms: Vec<u64>,
        /// Human-readable failure causes, one per attempt.
        failures: Vec<String>,
    },
}

impl<T> Supervised<T> {
    /// Number of restarts consumed, successful or not.
    #[must_use]
    pub fn restarts(&self) -> u32 {
        match self {
            Supervised::Completed { restarts, .. } | Supervised::Escalated { restarts, .. } => {
                *restarts
            }
        }
    }

    /// True when the supervisor gave up and escalated to safe mode.
    #[must_use]
    pub fn escalated(&self) -> bool {
        matches!(self, Supervised::Escalated { .. })
    }
}

/// Extracts a human-readable message from a panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".to_string()
    }
}

/// Runs `attempt` up to `1 + cfg.max_restarts` times, each attempt guarded
/// by `catch_unwind` so engine panics become restartable failures instead
/// of process aborts.
///
/// `attempt(n)` receives the attempt number (0 = initial run, 1.. =
/// recoveries) so the closure can reload state from the WAL on retries. It
/// returns `Ok(value)` to finish or `Err(reason)` to request a restart.
pub fn supervise<T, F>(cfg: &SupervisorConfig, mut attempt: F) -> Supervised<T>
where
    F: FnMut(u32) -> Result<T, String>,
{
    let mut failures: Vec<String> = Vec::new();
    let mut backoff_schedule_ms: Vec<u64> = Vec::new();
    let mut n = 0u32;
    loop {
        let outcome = catch_unwind(AssertUnwindSafe(|| attempt(n)));
        match outcome {
            Ok(Ok(value)) => {
                return Supervised::Completed {
                    value,
                    restarts: n,
                    backoff_schedule_ms,
                    failures,
                };
            }
            Ok(Err(reason)) => failures.push(reason),
            Err(payload) => failures.push(panic_message(payload)),
        }
        if n >= cfg.max_restarts {
            return Supervised::Escalated {
                restarts: n,
                backoff_schedule_ms,
                failures,
            };
        }
        n += 1;
        backoff_schedule_ms.push(backoff_ms(cfg, n));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_try_success_needs_no_restarts() {
        let out = supervise(&SupervisorConfig::default(), |_| Ok::<_, String>(42));
        match out {
            Supervised::Completed {
                value,
                restarts,
                backoff_schedule_ms,
                failures,
            } => {
                assert_eq!(value, 42);
                assert_eq!(restarts, 0);
                assert!(backoff_schedule_ms.is_empty());
                assert!(failures.is_empty());
            }
            other => panic!("expected completion, got {other:?}"),
        }
    }

    #[test]
    fn panicking_attempts_are_retried_then_succeed() {
        let cfg = SupervisorConfig {
            max_restarts: 3,
            ..SupervisorConfig::default()
        };
        let out = supervise(&cfg, |n| {
            if n < 2 {
                panic!("engine crashed on attempt {n}");
            }
            Ok::<_, String>("recovered")
        });
        match out {
            Supervised::Completed {
                value,
                restarts,
                backoff_schedule_ms,
                failures,
            } => {
                assert_eq!(value, "recovered");
                assert_eq!(restarts, 2);
                assert_eq!(backoff_schedule_ms, vec![50, 100]);
                assert_eq!(failures.len(), 2);
                assert!(failures.iter().all(|f| f.starts_with("panic:")));
            }
            other => panic!("expected completion, got {other:?}"),
        }
    }

    #[test]
    fn escalates_after_max_restarts() {
        let cfg = SupervisorConfig {
            max_restarts: 2,
            ..SupervisorConfig::default()
        };
        let out = supervise::<(), _>(&cfg, |n| Err(format!("attempt {n} failed")));
        assert!(out.escalated());
        match out {
            Supervised::Escalated {
                restarts,
                backoff_schedule_ms,
                failures,
            } => {
                assert_eq!(restarts, 2);
                assert_eq!(backoff_schedule_ms, vec![50, 100]);
                assert_eq!(failures.len(), 3, "initial try + 2 restarts all recorded");
            }
            other => panic!("expected escalation, got {other:?}"),
        }
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let cfg = SupervisorConfig {
            max_restarts: 10,
            backoff_base_ms: 100,
            backoff_cap_ms: 750,
        };
        assert_eq!(backoff_ms(&cfg, 0), 0);
        assert_eq!(backoff_ms(&cfg, 1), 100);
        assert_eq!(backoff_ms(&cfg, 2), 200);
        assert_eq!(backoff_ms(&cfg, 3), 400);
        assert_eq!(backoff_ms(&cfg, 4), 750, "capped");
        assert_eq!(backoff_ms(&cfg, 63), 750, "no overflow at large attempts");
    }
}
