//! Crash-durability layer for the MPR market manager.
//!
//! The paper's manager is the single party that announces prices, collects
//! bids and pays users in core-hours. If it crashes mid-overload, every
//! acknowledged payment and clearing decision must survive the restart and
//! must never be applied twice. This crate provides the storage-level
//! building blocks for that guarantee:
//!
//! * [`storage`] — a byte-level [`Storage`](storage::Storage) trait with a
//!   real file backend ([`FileStorage`](storage::FileStorage)), an in-memory
//!   backend ([`MemStorage`](storage::MemStorage)) and a deterministic,
//!   ChaCha8-seeded [`FaultyDisk`](storage::FaultyDisk) that injects torn
//!   writes, short writes, bit flips, ENOSPC and failed fsyncs — the storage
//!   sibling of `FaultySensor` (mpr-power) and `SimNet` (mpr-core).
//! * [`wal`] — an append-only, CRC-framed, versioned write-ahead log
//!   ([`Wal`](wal::Wal)) with a configurable
//!   [`FsyncPolicy`](wal::FsyncPolicy), plus a file-backed multi-segment
//!   variant ([`DirWal`](wal::DirWal)) with atomic segment rotation.
//! * [`recover`] — scan-and-truncate recovery: parse the longest valid
//!   record prefix, report why scanning stopped, and truncate the corrupt
//!   tail so the log is append-ready again.
//! * [`supervisor`] — run a fallible engine closure under `catch_unwind`
//!   with capped exponential backoff and escalate to a safe mode after a
//!   bounded number of failed recoveries.
//! * [`fsio`] — the shared crash-durable filesystem helpers (temp file +
//!   fsync + rename + parent-directory fsync) also used by the simulator's
//!   checkpoint writer.
//!
//! The crate is deliberately market-agnostic: records are `(seq, kind,
//! payload)` byte frames. The typed market ledger events live in
//! `mpr-sim::ledger`, which encodes them with the same little-endian codec
//! used by checkpoints.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fsio;
pub mod recover;
pub mod storage;
pub mod supervisor;
pub mod wal;

pub use recover::{scan, Corruption, ScanReport};
pub use storage::{
    DiskFaultConfig, DiskFaultCounters, FaultyDisk, FileStorage, MemStorage, Storage, StorageError,
};
pub use supervisor::{backoff_ms, supervise, Supervised, SupervisorConfig};
pub use wal::{DirWal, FsyncPolicy, Record, Wal, WalError, MAX_RECORD_LEN, WAL_VERSION};

/// Seed-domain separator for [`FaultyDisk`](storage::FaultyDisk) RNGs, the
/// disk-fault sibling of `SENSOR_SEED_XOR` / `NET_SEED_XOR` /
/// `SCENARIO_SEED_XOR`. XORing the simulation seed with this constant keeps
/// the disk fault stream statistically independent of every other seeded
/// subsystem while remaining fully reproducible.
pub const DISK_SEED_XOR: u64 = 0x6469_736b_0bad_5eed;
