//! v2 engine tests: the L6/L7/L8 fixture corpora, the incremental cache's
//! invalidation contract, byte-identical double runs, and the planted-
//! violation gate proving each new rule fails the real binary with a
//! `file:line` diagnostic and a nonzero exit.

use std::path::PathBuf;

use mpr_lint::{
    analyze_source_with, analyze_workspace_cached, to_json, to_sarif, Rule, RuleSet,
    RULESET_VERSION,
};

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn lines_of(violations: &[mpr_lint::Violation], rule: Rule) -> Vec<u32> {
    violations
        .iter()
        .filter(|v| v.rule == rule)
        .map(|v| v.line)
        .collect()
}

#[test]
fn l6_unit_flow_fixture_counts() {
    let src = fixture("unit_flow.rs");
    let rules = RuleSet {
        unit_flow: true,
        ..RuleSet::default()
    };
    let a = analyze_source_with("crates/core/src/fixture.rs", &src, rules);
    assert_eq!(
        lines_of(&a.violations, Rule::UnitFlow),
        vec![7, 13, 17],
        "{:?}",
        a.violations
    );
    assert_eq!(a.violations.len(), 3);
}

#[test]
fn l7_error_swallowing_fixture_counts() {
    let src = fixture("error_swallowing.rs");
    let rules = RuleSet {
        error_swallowing: true,
        ..RuleSet::default()
    };
    let a = analyze_source_with("crates/core/src/fixture.rs", &src, rules);
    assert_eq!(
        lines_of(&a.violations, Rule::ErrorSwallowing),
        vec![17, 18, 19, 22],
        "{:?}",
        a.violations
    );
    assert_eq!(a.violations.len(), 4);
}

#[test]
fn l8_parallel_determinism_fixture_counts() {
    let src = fixture("parallel_determinism.rs");
    let rules = RuleSet {
        parallel_determinism: true,
        ..RuleSet::default()
    };
    let a = analyze_source_with("crates/core/src/fixture.rs", &src, rules);
    assert_eq!(
        lines_of(&a.violations, Rule::ParallelDeterminism),
        vec![8, 10, 12],
        "{:?}",
        a.violations
    );
    assert_eq!(a.violations.len(), 3);
}

/// Creates a throwaway mini-workspace under the system temp dir.
fn mk_ws(name: &str, files: &[(&str, &str)]) -> PathBuf {
    let root = std::env::temp_dir().join(format!("mpr-lint-v2-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(root.join("crates/core/src")).expect("mkdir");
    std::fs::write(root.join("Cargo.toml"), "[workspace]\n").expect("manifest");
    for (rel, text) in files {
        let p = root.join(rel);
        if let Some(parent) = p.parent() {
            std::fs::create_dir_all(parent).expect("mkdir");
        }
        std::fs::write(p, text).expect("write");
    }
    root
}

const CLEAN_A: &str = "pub fn cap(w: Watts) -> Watts {\n    w\n}\n";
const CLEAN_B: &str = "pub fn half(p: Price) -> Price {\n    p\n}\n";

#[test]
fn cache_cold_then_warm_is_bit_identical() {
    let root = mk_ws(
        "warm",
        &[
            ("crates/core/src/a.rs", CLEAN_A),
            ("crates/core/src/b.rs", CLEAN_B),
        ],
    );
    let cache = root.join("target/mpr-lint.cache");
    let (cold, cs) = analyze_workspace_cached(&root, Some(&cache)).expect("cold");
    assert_eq!(cs.analyzed, 2);
    assert_eq!(cs.reused, 0);
    let (warm, ws) = analyze_workspace_cached(&root, Some(&cache)).expect("warm");
    assert_eq!(ws.reused, 2, "warm run must serve every file from cache");
    assert_eq!(ws.analyzed, 0);
    assert_eq!(to_json(&cold), to_json(&warm), "reports must be byte-equal");
    assert_eq!(to_sarif(&cold), to_sarif(&warm));
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn cache_invalidates_on_file_edit() {
    let root = mk_ws(
        "edit",
        &[
            ("crates/core/src/a.rs", CLEAN_A),
            ("crates/core/src/b.rs", CLEAN_B),
        ],
    );
    let cache = root.join("target/mpr-lint.cache");
    analyze_workspace_cached(&root, Some(&cache)).expect("cold");
    // A comment-only edit leaves the exported symbols (and hence the
    // symbol-table digest) unchanged: only the edited file re-analyzes.
    std::fs::write(
        root.join("crates/core/src/a.rs"),
        format!("// touched\n{CLEAN_A}"),
    )
    .expect("edit");
    let (_, stats) = analyze_workspace_cached(&root, Some(&cache)).expect("after edit");
    assert_eq!(stats.analyzed, 1, "only the edited file re-analyzes");
    assert_eq!(stats.reused, 1);
    // An edit that changes exported signatures shifts the symbol-table
    // digest, which invalidates every file's diagnostics (cross-file rules
    // may now fire differently).
    std::fs::write(
        root.join("crates/core/src/a.rs"),
        "pub fn cap(w: Watts) -> Result<Watts, CapError> {\n    Ok(w)\n}\n",
    )
    .expect("edit");
    let (_, stats) = analyze_workspace_cached(&root, Some(&cache)).expect("after sig edit");
    assert_eq!(stats.analyzed, 2, "signature change invalidates everything");
    assert_eq!(stats.reused, 0);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn cache_invalidates_on_ruleset_version_bump() {
    let root = mk_ws("version", &[("crates/core/src/a.rs", CLEAN_A)]);
    let cache = root.join("target/mpr-lint.cache");
    analyze_workspace_cached(&root, Some(&cache)).expect("cold");
    // Simulate a ruleset bump by rewriting the header the way an older or
    // newer binary would have.
    let text = std::fs::read_to_string(&cache).expect("cache file");
    let tampered = text.replace(
        &format!("mpr-lint-cache v{RULESET_VERSION}"),
        "mpr-lint-cache v1",
    );
    assert_ne!(text, tampered, "header must carry the ruleset version");
    std::fs::write(&cache, tampered).expect("tamper");
    let (_, stats) = analyze_workspace_cached(&root, Some(&cache)).expect("after bump");
    assert_eq!(stats.analyzed, 1, "other-version cache must be cold");
    assert_eq!(stats.reused, 0);
    let _ = std::fs::remove_dir_all(&root);
}

fn run_binary(root: &std::path::Path) -> (Option<i32>, String) {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_mpr-lint"))
        .args(["check", "--no-cache", "--root"])
        .arg(root)
        .output()
        .expect("run mpr-lint");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

#[test]
fn planted_unit_flow_fails_the_binary() {
    let root = mk_ws(
        "plant-l6",
        &[(
            "crates/core/src/planted.rs",
            "pub fn cross(p: Price) -> Watts {\n    Watts::new(p.get())\n}\n",
        )],
    );
    let (code, stdout) = run_binary(&root);
    assert_eq!(code, Some(1), "planted L6 must fail the build:\n{stdout}");
    assert!(
        stdout.contains("crates/core/src/planted.rs:2") && stdout.contains("[unit-flow]"),
        "diagnostic must carry file:line and rule:\n{stdout}"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn planted_error_swallowing_fails_the_binary() {
    let root = mk_ws(
        "plant-l7",
        &[(
            "crates/core/src/planted.rs",
            "pub fn persist() -> Result<(), Corruption> {\n    Ok(())\n}\n\
             pub fn tick() {\n    let _ = persist();\n}\n",
        )],
    );
    let (code, stdout) = run_binary(&root);
    assert_eq!(code, Some(1), "planted L7 must fail the build:\n{stdout}");
    assert!(
        stdout.contains("crates/core/src/planted.rs:5") && stdout.contains("[error-swallowing]"),
        "diagnostic must carry file:line and rule:\n{stdout}"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn planted_parallel_determinism_fails_the_binary() {
    let root = mk_ws(
        "plant-l8",
        &[(
            "crates/core/src/planted.rs",
            "pub fn tally(v: &[f64]) -> f64 {\n    v.par_iter().map(|x| x * 2.0).sum()\n}\n",
        )],
    );
    let (code, stdout) = run_binary(&root);
    assert_eq!(code, Some(1), "planted L8 must fail the build:\n{stdout}");
    assert!(
        stdout.contains("crates/core/src/planted.rs:2")
            && stdout.contains("[parallel-determinism]"),
        "diagnostic must carry file:line and rule:\n{stdout}"
    );
    let _ = std::fs::remove_dir_all(&root);
}

/// Double-run over the real workspace through a fresh cache: the warm
/// report must be byte-identical to the cold one, with every file reused.
#[test]
fn real_workspace_double_run_is_byte_identical() {
    let manifest = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = mpr_lint::find_workspace_root(manifest).expect("workspace root");
    let cache = std::env::temp_dir().join(format!(
        "mpr-lint-v2-{}-real-double-run.cache",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&cache);
    let (cold, _) = analyze_workspace_cached(&root, Some(&cache)).expect("cold");
    let (warm, stats) = analyze_workspace_cached(&root, Some(&cache)).expect("warm");
    assert_eq!(stats.analyzed, 0, "nothing changed, nothing re-analyzes");
    assert_eq!(stats.reused, warm.files_scanned);
    assert_eq!(to_json(&cold), to_json(&warm));
    assert_eq!(to_sarif(&cold), to_sarif(&warm));
    assert!(
        !to_sarif(&cold).contains(&root.display().to_string()),
        "SARIF must not leak absolute paths"
    );
    let _ = std::fs::remove_file(&cache);
}
