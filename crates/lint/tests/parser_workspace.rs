//! The parser must swallow every real workspace source file: each token
//! either lands in the AST or in an opaque fallback region, and opaque
//! regions (macro bodies, enums, `use` items, recovery spans) must stay a
//! bounded minority — a regression here means the AST rules silently lose
//! coverage to the token fallback.

use mpr_lint::find_workspace_root;
use mpr_lint::parser::parse;
use std::fs;
use std::path::{Path, PathBuf};

fn collect(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in fs::read_dir(dir).expect("read_dir") {
        let path = entry.expect("entry").path();
        if path.is_dir() {
            collect(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Golden snapshot: the AST of a representative fixture must not drift.
/// Structural parser changes must update the `.ast.snap` file deliberately
/// (regenerate with `parse(&src).file.dump()`), never by accident.
#[test]
fn ast_golden_snapshot_is_stable() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let src = fs::read_to_string(dir.join("error_swallowing.rs")).expect("fixture");
    let golden = fs::read_to_string(dir.join("error_swallowing.ast.snap")).expect("snapshot");
    let actual = parse(&src).file.dump();
    assert_eq!(
        actual, golden,
        "AST drifted from the golden snapshot; if intended, regenerate the .ast.snap file"
    );
}

#[test]
fn workspace_parses_with_bounded_opaque_fraction() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("root");
    let mut files = Vec::new();
    for entry in fs::read_dir(root.join("crates")).expect("crates dir") {
        let dir = entry.expect("entry").path();
        let src = dir.join("src");
        if src.is_dir() {
            collect(&src, &mut files);
        }
    }
    files.sort();
    assert!(
        files.len() > 50,
        "expected a real workspace, got {} files",
        files.len()
    );

    let mut total_toks = 0usize;
    let mut opaque_toks = 0usize;
    let mut worst: Vec<(String, f64, usize)> = Vec::new();
    for file in &files {
        let Ok(text) = fs::read_to_string(file) else {
            continue;
        };
        let parsed = parse(&text);
        // dump() must never panic on real input.
        let _ = parsed.file.dump();
        let o: usize = parsed.opaque.iter().map(|(a, b)| b - a).sum();
        let n = parsed.toks.len().max(1);
        total_toks += parsed.toks.len();
        opaque_toks += o;
        let frac = o as f64 / n as f64;
        worst.push((file.display().to_string(), frac, parsed.toks.len()));
    }
    worst.sort_by(|a, b| b.1.total_cmp(&a.1));
    let overall = opaque_toks as f64 / total_toks.max(1) as f64;
    eprintln!(
        "parsed {} files, {} tokens, opaque fraction {:.1}%",
        files.len(),
        total_toks,
        overall * 100.0
    );
    for (f, frac, n) in worst.iter().take(10) {
        eprintln!("  {:>6.1}%  {n:>6} toks  {f}", frac * 100.0);
    }
    assert!(
        overall < 0.30,
        "opaque fallback covers {:.1}% of workspace tokens — parser coverage regressed",
        overall * 100.0
    );
}
