//! Fixture tests: each file under `tests/fixtures/` carries a known number
//! of violations for one rule family; the lint must find exactly those, at
//! exactly those lines, and the allowlist must suppress exactly what it
//! claims to. The final test runs the real workspace pass end to end.

use mpr_lint::{analyze_source_with, analyze_workspace, Rule, RuleSet, MAX_EXEMPTIONS};

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn lines_of(violations: &[mpr_lint::Violation], rule: Rule) -> Vec<u32> {
    violations
        .iter()
        .filter(|v| v.rule == rule)
        .map(|v| v.line)
        .collect()
}

#[test]
fn l1_unit_hygiene_fixture_counts() {
    let src = fixture("unit_hygiene.rs");
    let rules = RuleSet {
        unit_hygiene: true,
        ..RuleSet::default()
    };
    let a = analyze_source_with("crates/core/src/fixture.rs", &src, rules);
    assert_eq!(
        lines_of(&a.violations, Rule::UnitHygiene),
        vec![8, 13, 19],
        "{:?}",
        a.violations
    );
    assert_eq!(a.violations.len(), 3);
    assert!(a.exemptions_used.is_empty());
}

#[test]
fn l2_nan_safety_fixture_counts() {
    let src = fixture("nan_safety.rs");
    let rules = RuleSet {
        nan_safety: true,
        ..RuleSet::default()
    };
    let a = analyze_source_with("crates/core/src/fixture.rs", &src, rules);
    assert_eq!(
        lines_of(&a.violations, Rule::NanSafety),
        vec![6, 11, 16],
        "{:?}",
        a.violations
    );
    assert_eq!(a.violations.len(), 3);
}

#[test]
fn l3_panic_freedom_fixture_counts() {
    let src = fixture("panic_freedom.rs");
    let rules = RuleSet {
        panic_freedom: true,
        ..RuleSet::default()
    };
    let a = analyze_source_with("crates/core/src/fixture.rs", &src, rules);
    assert_eq!(
        lines_of(&a.violations, Rule::PanicFreedom),
        vec![6, 11, 16, 21],
        "{:?}",
        a.violations
    );
    assert_eq!(a.violations.len(), 4);
}

#[test]
fn l4_determinism_fixture_counts() {
    let src = fixture("determinism.rs");
    let rules = RuleSet {
        determinism_time: true,
        determinism_hash: true,
        ..RuleSet::default()
    };
    let a = analyze_source_with("crates/sim/src/report_fixture.rs", &src, rules);
    assert_eq!(
        lines_of(&a.violations, Rule::Determinism),
        vec![7, 13, 18],
        "{:?}",
        a.violations
    );
    assert_eq!(a.violations.len(), 3);
}

#[test]
fn l5_layering_fixture_counts() {
    let src = fixture("layering.rs");
    let rules = RuleSet {
        layering: true,
        ..RuleSet::default()
    };
    // Scoped as if the file lived in the sim crate (the orchestration layer).
    let a = analyze_source_with("crates/sim/src/fixture.rs", &src, rules);
    assert_eq!(
        lines_of(&a.violations, Rule::Layering),
        vec![5, 9, 10, 14, 18],
        "{:?}",
        a.violations
    );
    assert_eq!(a.violations.len(), 5);
    // The trait-dispatch tail of the fixture must not be flagged.
    assert!(
        a.violations.iter().all(|v| v.line < 21),
        "{:?}",
        a.violations
    );
}

#[test]
fn allowlist_suppresses_and_records() {
    let src = fixture("allowlist.rs");
    let rules = RuleSet {
        unit_hygiene: true,
        nan_safety: true,
        ..RuleSet::default()
    };
    let a = analyze_source_with("crates/core/src/fixture.rs", &src, rules);
    assert!(a.violations.is_empty(), "{:?}", a.violations);
    assert_eq!(a.exemptions_used.len(), 2, "{:?}", a.exemptions_used);
    // Comment-above style covers the `pub fn ingest` line.
    assert_eq!(a.exemptions_used[0].rule, Rule::UnitHygiene);
    assert_eq!(a.exemptions_used[0].line, 7);
    // Same-line style covers the float equality.
    assert_eq!(a.exemptions_used[1].rule, Rule::NanSafety);
    assert_eq!(a.exemptions_used[1].line, 13);
    for e in &a.exemptions_used {
        assert!(!e.reason.is_empty(), "every suppression carries a reason");
    }
}

#[test]
fn malformed_allowlist_suppresses_nothing() {
    let src = fixture("bad_allowlist.rs");
    let rules = RuleSet {
        unit_hygiene: true,
        ..RuleSet::default()
    };
    let a = analyze_source_with("crates/core/src/fixture.rs", &src, rules);
    assert!(a.exemptions_used.is_empty(), "{:?}", a.exemptions_used);
    // The reason-less `raw-f64-ok` (line 5) fails to suppress the original
    // violation (line 6), and the unknown rule name (line 11) is flagged.
    assert_eq!(lines_of(&a.violations, Rule::Exemption), vec![5, 11]);
    assert_eq!(lines_of(&a.violations, Rule::UnitHygiene), vec![6]);
    assert_eq!(a.violations.len(), 3);
}

/// The acceptance gate as a test: the real workspace lints clean, within the
/// exemption budget. Running it here means `cargo test` fails the moment a
/// violation lands, not just the CI lint job.
#[test]
fn workspace_lints_clean_within_budget() {
    let manifest = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = mpr_lint::find_workspace_root(manifest).expect("workspace root");
    let report = analyze_workspace(&root).expect("workspace scan");
    assert!(
        report.violations.is_empty(),
        "workspace violations:\n{}",
        report
            .violations
            .iter()
            .map(|v| format!("{}:{} [{}] {}", v.file, v.line, v.rule, v.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.exemptions_used.len() <= MAX_EXEMPTIONS,
        "exemption budget exceeded: {} > {MAX_EXEMPTIONS}",
        report.exemptions_used.len()
    );
    assert!(report.files_scanned > 50, "scan looks truncated");
    assert!(report.ok());
}
