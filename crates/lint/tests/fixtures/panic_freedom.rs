//! L3 fixture: exactly four panic-freedom violations (lines 6, 11, 16, 21),
//! one clean accessor. Not compiled — lexed by `fixture_tests.rs`.

/// `.unwrap()` in library code.
pub fn first(v: &[f64]) -> f64 {
    *v.first().unwrap()
}

/// `.expect()` in library code.
pub fn second(v: &[f64]) -> f64 {
    *v.get(1).expect("has two")
}

/// `panic!` macro.
pub fn boom() {
    panic!("no");
}

/// Unchecked indexing.
pub fn third(v: &[f64]) -> f64 {
    v[2]
}

/// Clean: full-range slicing cannot panic, `.get()` is checked.
pub fn safe(v: &[f64]) -> Option<f64> {
    let whole = &v[..];
    whole.get(0).copied()
}
