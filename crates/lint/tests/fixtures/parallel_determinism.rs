//! L8 fixture: order-nondeterministic parallelism. Expected violations at
//! lines 8, 10, 12; the collect-then-sequential reduction is the fix.

use std::sync::atomic::Ordering;

pub fn nondeterministic(v: &[f64], flag: &AtomicBool) -> f64 {
    // Parallel float reduction: summation order varies run to run.
    let x: f64 = v.par_iter().map(|x| x * 2.0).sum();
    // Relaxed atomics give no cross-thread ordering guarantee.
    let seen = flag.load(Ordering::Relaxed);
    // Thread-count introspection makes results depend on the machine.
    let n = rayon::current_num_threads();
    x + f64::from(u32::from(seen)) + n as f64
}

pub fn deterministic(v: &[f64]) -> f64 {
    let doubled: Vec<f64> = v.par_iter().map(|x| x * 2.0).collect();
    doubled.iter().sum()
}
