//! L7 fixture: fallible results silently discarded. Expected violations at
//! lines 17, 18, 19, 22; the handled patterns from line 26 on are clean.

pub struct Wal;

impl Wal {
    pub fn sync(&mut self) -> Result<(), Corruption> {
        Ok(())
    }
}

pub fn persist() -> Result<(), Corruption> {
    Ok(())
}

fn swallows(w: &mut Wal) {
    let _ = w.sync();
    let _ = persist();
    w.sync().ok();
    match w.sync() {
        Ok(()) => {}
        Err(_) => {}
    }
}

fn handles(w: &mut Wal) -> Result<(), Corruption> {
    persist()?;
    let r = w.sync();
    match persist() {
        Ok(()) => {}
        Err(e) => log(e),
    }
    r
}
