//! L2 fixture: exactly three NaN-safety violations (lines 6, 11, 16),
//! one clean sort. Not compiled — lexed by `fixture_tests.rs`.

/// `partial_cmp` panics (or mis-orders) when a NaN reaches the sort.
pub fn sort_floats(v: &mut [f64]) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

/// Direct `==` against a float literal.
pub fn is_zero(x: f64) -> bool {
    x == 0.0
}

/// Direct `!=` against a float literal.
pub fn not_one(x: f64) -> bool {
    x != 1.0
}

/// Clean: `total_cmp` is total over NaN.
pub fn sort_total(v: &mut [f64]) {
    v.sort_by(f64::total_cmp);
}
