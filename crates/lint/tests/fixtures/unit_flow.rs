//! L6 fixture: raw `f64` values with unit provenance crossing unit
//! boundaries. Expected violations at lines 7, 13, 17; clean from 20 on.

use mpr_core::units::{Price, Watts};

pub fn price_as_power(p: Price) -> Watts {
    Watts::new(p.get())
}

pub fn laundered_through_local(p: Price) -> Watts {
    let x = p.get();
    let y = x * 2.0;
    Watts::new(y)
}

pub fn mixed_dimension_sum(p: Price, w: Watts) -> f64 {
    p.get() + w.get()
}

pub fn rewrap_same_unit(w: Watts) -> Watts {
    Watts::new(w.get() * 1.1)
}

pub fn fresh_from_anonymous(x: f64) -> Watts {
    Watts::new(x)
}

pub fn ratio_cancels(w: Watts, cap: Watts) -> f64 {
    w.get() / cap.get()
}

pub fn closed_form(a: Watts, price: Price) -> Watts {
    let q = price.get();
    Watts::new((a.get() - 2.0 / q).max(0.0))
}
