//! Allowlist fixture: every violation carries a justified exemption, so the
//! file lints clean with two recorded suppressions. Not compiled — lexed by
//! `fixture_tests.rs`.

/// Comment-above style: the exemption covers the line below it.
// lint: raw-f64-ok boundary API kept raw for the external telemetry feed
pub fn ingest(power_w: f64) -> f64 {
    power_w
}

/// Same-line style.
pub fn anomaly(x: f64) -> bool {
    x == 0.25 // lint: allow(nan-safety) sentinel value is exactly representable
}
