//! L1 fixture: exactly three unit-hygiene violations (lines 8, 13, 19),
//! two clean functions. Not compiled — lexed by `fixture_tests.rs`.

pub struct Controller;

impl Controller {
    /// Quantity-named parameter typed as bare `f64`.
    pub fn set_target(&mut self, target_watts: f64) {
        let _ = target_watts;
    }

    /// Quantity-named method returning bare `f64`.
    pub fn power_budget(&self) -> f64 {
        0.0
    }
}

/// `price` parameter as bare `f64`.
pub fn quote(price: f64) -> bool {
    price > 0.0
}

/// Clean: non-quantity names may stay `f64`.
pub fn lerp(a: f64, b: f64, t: f64) -> f64 {
    a + (b - a) * t
}

/// Clean: private functions are out of scope for L1.
fn internal_power(power: f64) -> f64 {
    power
}
