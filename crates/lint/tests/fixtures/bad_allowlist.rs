//! Malformed-allowlist fixture: exemptions without justification or with an
//! unknown rule name suppress nothing and are themselves violations.
//! Not compiled — lexed by `fixture_tests.rs`.

// lint: raw-f64-ok
pub fn leak(power_w: f64) {
    let _ = power_w;
}

pub fn off(x: f64) -> f64 {
    x // lint: allow(made-up-rule) nonsense
}
