//! L5 layering fixture: orchestration-layer code calling solver modules
//! directly instead of dispatching through `mpr_core::mechanism`.

pub fn stat(target: Watts) {
    let _ = mclr::clear_best_effort(&participants, target);
}

pub fn central(target: Watts) {
    let jobs: Vec<opt::OptJob<'_>> = Vec::new();
    let _ = opt::solve(&jobs, target, opt::OptMethod::Auto);
}

pub fn uniform(target: Watts) {
    let _ = eql::reduce(&jobs, target);
}

pub fn auction(target: Watts) {
    let _ = vcg::auction(&jobs, target, method);
}

pub fn through_the_trait(target: Watts) {
    let mut mech = MclrMechanism::best_effort();
    let _ = mech.clear(&instance, target);
}
