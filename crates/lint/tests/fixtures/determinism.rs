//! L4 fixture: exactly three determinism violations (lines 7, 13, 18).
//! Not compiled — lexed by `fixture_tests.rs`.

/// `HashMap` in a module that feeds report/CSV output (both mentions sit on
/// one line, so they dedupe to a single diagnostic).
pub fn tally() -> usize {
    let m: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    m.len()
}

/// `Instant` reads the wall clock inside the simulator.
pub fn stamp() {
    let _ = std::time::Instant::now();
}

/// So does `SystemTime`.
pub fn stale() {
    let _ = std::time::SystemTime::now();
}
