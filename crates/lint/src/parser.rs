//! Tolerant recursive-descent parser for the Rust subset the workspace
//! uses, built on the exact lexer in [`crate::lexer`].
//!
//! Design rule: **never lose coverage**. Every token of a file is either
//! represented in the produced [`File`] AST or lies inside an *opaque
//! region* — a token-index range the parser could not (or chose not to)
//! structure: `macro_rules!` bodies, macro invocation arguments, `use`/
//! `type`/`const`/`static`/`enum` items, and any parse-failure recovery
//! span. The legacy token-pattern rules are re-run over opaque regions by
//! [`crate::rules`], so a parse failure can only ever degrade precision,
//! never recall, relative to the lexer-only engine this replaces.
//!
//! The parser is deliberately approximate where the rules do not care:
//! generic parameters are skipped, type text is normalized to a spaceless
//! string, patterns keep just enough shape for wildcard/`Err`-dropping
//! detection.

use crate::ast::{
    Arm, Block, Expr, ExprKind, File, FnItem, Item, ItemKind, Param, Pat, PatKind, Stmt, TypeRepr,
    Vis,
};
use crate::lexer::{lex, ExemptionComment, Tok, TokKind};

/// Result of parsing one source file.
#[derive(Debug, Default)]
pub struct Parsed {
    /// The item tree.
    pub file: File,
    /// The full token stream (owned; opaque ranges index into it).
    pub toks: Vec<Tok>,
    /// Opaque token-index ranges `[start, end)`, sorted and disjoint.
    pub opaque: Vec<(usize, usize)>,
    /// `// lint:` exemption comments, in source order.
    pub exemptions: Vec<ExemptionComment>,
}

impl Parsed {
    /// Iterates the opaque regions as token slices.
    pub fn opaque_slices(&self) -> impl Iterator<Item = &[Tok]> {
        self.opaque.iter().map(|&(a, b)| &self.toks[a..b])
    }
}

/// Parses `src` into an AST plus opaque fallback regions.
#[must_use]
pub fn parse(src: &str) -> Parsed {
    let lexed = lex(src);
    let items;
    let mut opaque;
    {
        let mut p = Parser {
            toks: &lexed.toks,
            pos: 0,
            opaque: Vec::new(),
        };
        items = p.items_until(false, false);
        opaque = std::mem::take(&mut p.opaque);
    }
    opaque.sort_unstable();
    // Merge overlapping/adjacent ranges so the fallback scans each token once.
    let mut merged: Vec<(usize, usize)> = Vec::with_capacity(opaque.len());
    for (a, b) in opaque {
        if a >= b {
            continue;
        }
        match merged.last_mut() {
            Some((_, e)) if a <= *e => *e = (*e).max(b),
            _ => merged.push((a, b)),
        }
    }
    Parsed {
        file: File { items },
        toks: lexed.toks,
        opaque: merged,
        exemptions: lexed.exemptions,
    }
}

/// Item-starter keywords recognized in statement position.
const ITEM_STARTERS: &[&str] = &[
    "fn",
    "struct",
    "enum",
    "impl",
    "trait",
    "mod",
    "use",
    "type",
    "static",
    "macro_rules",
    "extern",
    "union",
    "pub",
];

struct Parser<'a> {
    toks: &'a [Tok],
    pos: usize,
    opaque: Vec<(usize, usize)>,
}

impl<'a> Parser<'a> {
    // -- token helpers ------------------------------------------------------

    fn peek(&self) -> Option<&'a Tok> {
        self.toks.get(self.pos)
    }

    fn peek_at(&self, k: usize) -> Option<&'a Tok> {
        self.toks.get(self.pos + k)
    }

    fn txt(&self, k: usize) -> &'a str {
        self.peek_at(k).map_or("", |t| t.text.as_str())
    }

    /// True at end of input. NOTE: `txt(0) == ""` is NOT an end-of-input
    /// test — string/char literal tokens carry empty text.
    fn eof(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn kind(&self, k: usize) -> Option<TokKind> {
        self.peek_at(k).map(|t| t.kind)
    }

    fn line(&self) -> u32 {
        self.peek()
            .or_else(|| self.toks.last())
            .map_or(1, |t| t.line)
    }

    fn prev_line(&self) -> u32 {
        if self.pos == 0 {
            1
        } else {
            self.toks[self.pos - 1].line
        }
    }

    fn bump(&mut self) {
        self.pos += 1;
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.txt(0) == s {
            self.bump();
            true
        } else {
            false
        }
    }

    fn mark_opaque(&mut self, start: usize, end: usize) {
        if start < end {
            self.opaque.push((start, end));
        }
    }

    /// Skips a balanced `(`/`[`/`{` group starting at the current token.
    /// All three bracket kinds share one depth counter — mixed imbalance is
    /// already broken source. Returns the position just past the closer.
    fn skip_balanced(&mut self) -> usize {
        let mut depth = 0usize;
        while let Some(t) = self.peek() {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        self.bump();
                        break;
                    }
                }
                _ => {}
            }
            self.bump();
        }
        self.pos
    }

    /// Skips a balanced `<...>` group starting at a `<` token. Bracket
    /// groups inside (e.g. `Fn(A) -> B`) are skipped wholesale so their
    /// contents cannot perturb the angle depth.
    fn skip_angles(&mut self) {
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            match t.text.as_str() {
                "<" => {
                    depth += 1;
                    self.bump();
                }
                ">" => {
                    depth -= 1;
                    self.bump();
                    if depth <= 0 {
                        return;
                    }
                }
                "(" | "[" | "{" => {
                    self.skip_balanced();
                }
                _ => self.bump(),
            }
        }
    }

    // -- attributes ---------------------------------------------------------

    /// Scans (without consuming) one attribute at token index `at`.
    /// Returns `(index_after, is_test_attr)` or `None` if not an attribute.
    fn scan_attr(&self, at: usize) -> Option<(usize, bool)> {
        if self.toks.get(at).map(|t| t.text.as_str()) != Some("#") {
            return None;
        }
        let mut i = at + 1;
        if self.toks.get(i).map(|t| t.text.as_str()) == Some("!") {
            i += 1;
        }
        if self.toks.get(i).map(|t| t.text.as_str()) != Some("[") {
            return None;
        }
        let start = i;
        let mut depth = 0usize;
        let mut idents: Vec<&str> = Vec::new();
        while let Some(t) = self.toks.get(i) {
            match t.text.as_str() {
                "[" | "(" | "{" => depth += 1,
                "]" | ")" | "}" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                _ => {
                    if t.kind == TokKind::Ident {
                        idents.push(t.text.as_str());
                    }
                }
            }
            i += 1;
        }
        let _ = start;
        let is_test = match idents.first().copied() {
            Some("cfg") => idents.contains(&"test"),
            Some("test") | Some("bench") if idents.len() == 1 => true,
            _ => idents.last().is_some_and(|s| *s == "test"),
        };
        Some((i, is_test))
    }

    /// Consumes every attribute at the cursor; returns whether any marked
    /// the following item as test-only.
    fn skip_attrs(&mut self) -> bool {
        let mut is_test = false;
        while let Some((next, test)) = self.scan_attr(self.pos) {
            is_test |= test;
            self.pos = next;
        }
        is_test
    }

    // -- items --------------------------------------------------------------

    /// Parses items until end of input or (when `stop_at_brace`) a `}` at
    /// the cursor. `parent_test` marks every produced item test-only.
    fn items_until(&mut self, stop_at_brace: bool, parent_test: bool) -> Vec<Item> {
        let mut items = Vec::new();
        while let Some(t) = self.peek() {
            if stop_at_brace && t.text == "}" {
                break;
            }
            let before = self.pos;
            items.push(self.parse_item(parent_test));
            if self.pos == before {
                // Defensive: never loop without consuming.
                self.mark_opaque(before, before + 1);
                self.bump();
            }
        }
        items
    }

    fn parse_item(&mut self, parent_test: bool) -> Item {
        let start = self.pos;
        let mut is_test = self.skip_attrs() || parent_test;
        let line = self.line();

        // Visibility.
        let vis = if self.txt(0) == "pub" {
            self.bump();
            if self.txt(0) == "(" {
                self.skip_balanced();
                Vis::Restricted
            } else {
                Vis::Pub
            }
        } else {
            Vis::Priv
        };

        // Qualifiers before `fn`: const / async / unsafe / extern "C" /
        // default. `const` doubles as an item keyword, so only treat it as a
        // qualifier when a further qualifier or `fn` follows.
        loop {
            match self.txt(0) {
                "default" | "async" | "unsafe"
                    if matches!(
                        self.txt(1),
                        "fn" | "const"
                            | "async"
                            | "unsafe"
                            | "extern"
                            | "default"
                            | "impl"
                            | "trait"
                    ) =>
                {
                    self.bump();
                }
                "const"
                    if matches!(
                        self.txt(1),
                        "fn" | "async" | "unsafe" | "extern" | "default"
                    ) =>
                {
                    self.bump();
                }
                "extern" if self.kind(1) == Some(TokKind::Str) && self.txt(2) == "fn" => {
                    self.bump();
                    self.bump();
                }
                _ => break,
            }
        }

        let kind = match self.txt(0) {
            "fn" => {
                let f = self.parse_fn(vis);
                ItemKind::Fn(Box::new(f))
            }
            "mod" => {
                self.bump();
                let name = self.ident_or_empty();
                if self.txt(0) == "{" {
                    self.bump();
                    let items = self.items_until(true, is_test);
                    self.eat("}");
                    ItemKind::Mod { name, items }
                } else {
                    self.eat(";");
                    ItemKind::Other
                }
            }
            "struct" => self.parse_struct(),
            "enum" => {
                self.bump();
                let _name = self.ident_or_empty();
                if self.txt(0) == "<" {
                    self.skip_angles();
                }
                self.skip_where();
                if self.txt(0) == "{" {
                    let body_start = self.pos;
                    let end = self.skip_balanced();
                    self.mark_opaque(body_start, end);
                } else {
                    self.eat(";");
                }
                ItemKind::Other
            }
            "impl" => self.parse_impl(is_test),
            "trait" => {
                self.bump();
                let name = self.ident_or_empty();
                if self.txt(0) == "<" {
                    self.skip_angles();
                }
                // Supertrait bounds and where clause: consume until `{`.
                self.consume_until_block_or_semi();
                if self.txt(0) == "{" {
                    self.bump();
                    let items = self.items_until(true, is_test);
                    self.eat("}");
                    ItemKind::Trait { name, items }
                } else {
                    self.eat(";");
                    ItemKind::Other
                }
            }
            "use" | "type" | "static" | "const" => {
                let item_start = self.pos;
                self.consume_to_semi();
                self.mark_opaque(item_start, self.pos);
                ItemKind::Other
            }
            "macro_rules" => {
                self.bump();
                self.eat("!");
                let name = self.ident_or_empty();
                if matches!(self.txt(0), "{" | "(" | "[") {
                    let body_start = self.pos;
                    let end = self.skip_balanced();
                    self.mark_opaque(body_start, end);
                }
                self.eat(";");
                ItemKind::MacroRules { name }
            }
            "extern" => {
                self.bump();
                if self.kind(0) == Some(TokKind::Str) {
                    self.bump();
                }
                if self.txt(0) == "{" {
                    let body_start = self.pos;
                    let end = self.skip_balanced();
                    self.mark_opaque(body_start, end);
                } else {
                    self.consume_to_semi();
                }
                ItemKind::Other
            }
            "union" => {
                self.bump();
                let _ = self.ident_or_empty();
                if self.txt(0) == "<" {
                    self.skip_angles();
                }
                self.skip_where();
                if self.txt(0) == "{" {
                    let body_start = self.pos;
                    let end = self.skip_balanced();
                    self.mark_opaque(body_start, end);
                }
                ItemKind::Other
            }
            _ => {
                // Top-level macro invocation (`unit! { ... }`) or something
                // the parser does not model: consume conservatively and let
                // the token fallback scan it.
                if self.kind(0) == Some(TokKind::Ident) && self.is_macro_invocation() {
                    let item_start = self.pos;
                    self.consume_macro_invocation();
                    self.mark_opaque(item_start, self.pos);
                } else {
                    let item_start = self.pos;
                    self.recover_item();
                    self.mark_opaque(item_start, self.pos);
                }
                ItemKind::Other
            }
        };
        let _ = start;
        let _ = &mut is_test;
        Item {
            kind,
            line,
            end_line: self.prev_line(),
            is_test,
        }
    }

    /// True when the cursor sits on `path ::* !` followed by a delimiter —
    /// a macro invocation in item or statement position.
    fn is_macro_invocation(&self) -> bool {
        let mut i = 0usize;
        if self.kind(i) != Some(TokKind::Ident) {
            return false;
        }
        i += 1;
        while self.txt(i) == "::" && self.kind(i + 1) == Some(TokKind::Ident) {
            i += 2;
        }
        self.txt(i) == "!" && matches!(self.txt(i + 1), "(" | "[" | "{")
    }

    /// Consumes `path ! delim...delim [;]`.
    fn consume_macro_invocation(&mut self) {
        while self.kind(0) == Some(TokKind::Ident) && self.txt(1) == "::" {
            self.bump();
            self.bump();
        }
        if self.kind(0) == Some(TokKind::Ident) {
            self.bump();
        }
        let braced = self.txt(1) == "{";
        self.eat("!");
        if matches!(self.txt(0), "(" | "[" | "{") {
            self.skip_balanced();
        }
        if !braced {
            self.eat(";");
        }
    }

    /// Item-level error recovery: consume to a `;` at depth 0 (inclusive)
    /// or stop before a `}` at depth 0; bracket groups are skipped whole.
    fn recover_item(&mut self) {
        let start = self.pos;
        while let Some(t) = self.peek() {
            match t.text.as_str() {
                ";" => {
                    self.bump();
                    return;
                }
                "{" | "(" | "[" => {
                    self.skip_balanced();
                    // A brace group usually ends an item (fn body, impl).
                    if t.text == "{" {
                        return;
                    }
                }
                "}" => return,
                _ => self.bump(),
            }
        }
        let _ = start;
    }

    /// Consumes up to and including a `;` at depth 0.
    fn consume_to_semi(&mut self) {
        while let Some(t) = self.peek() {
            match t.text.as_str() {
                ";" => {
                    self.bump();
                    return;
                }
                "{" | "(" | "[" => {
                    self.skip_balanced();
                }
                "}" => return,
                _ => self.bump(),
            }
        }
    }

    /// Consumes tokens until a `{` or `;` at depth 0 (not consumed).
    fn consume_until_block_or_semi(&mut self) {
        while let Some(t) = self.peek() {
            match t.text.as_str() {
                "{" | ";" | "}" => return,
                "(" | "[" => {
                    self.skip_balanced();
                }
                "<" => self.skip_angles(),
                _ => self.bump(),
            }
        }
    }

    fn ident_or_empty(&mut self) -> String {
        if self.kind(0) == Some(TokKind::Ident) {
            let s = self.txt(0).to_string();
            self.bump();
            s
        } else {
            String::new()
        }
    }

    fn skip_where(&mut self) {
        if self.txt(0) == "where" {
            self.consume_until_block_or_semi();
        }
    }

    fn parse_struct(&mut self) -> ItemKind {
        self.bump(); // struct
        let name = self.ident_or_empty();
        if self.txt(0) == "<" {
            self.skip_angles();
        }
        self.skip_where();
        let mut fields = Vec::new();
        match self.txt(0) {
            "{" => {
                self.bump();
                loop {
                    self.skip_attrs();
                    if self.txt(0) == "}" || self.peek().is_none() {
                        break;
                    }
                    if self.txt(0) == "pub" {
                        self.bump();
                        if self.txt(0) == "(" {
                            self.skip_balanced();
                        }
                    }
                    let fname = self.ident_or_empty();
                    if !self.eat(":") {
                        // Not a named field we understand: recover.
                        while !self.eof() && !matches!(self.txt(0), "," | "}") {
                            if matches!(self.txt(0), "(" | "[" | "{" | "<") {
                                if self.txt(0) == "<" {
                                    self.skip_angles();
                                } else {
                                    self.skip_balanced();
                                }
                            } else {
                                self.bump();
                            }
                        }
                        self.eat(",");
                        continue;
                    }
                    if let Some(ty) = self.parse_type(&[]) {
                        fields.push((fname, ty));
                    }
                    self.eat(",");
                }
                self.eat("}");
            }
            "(" => {
                self.skip_balanced();
                self.skip_where();
                self.eat(";");
            }
            _ => {
                self.eat(";");
            }
        }
        ItemKind::Struct { name, fields }
    }

    fn parse_impl(&mut self, is_test: bool) -> ItemKind {
        self.bump(); // impl
        if self.txt(0) == "<" {
            self.skip_angles();
        }
        self.eat("!"); // negative impl
        let t1 = self.parse_type(&["for"]);
        let self_ty_repr = if self.txt(0) == "for" {
            self.bump();
            self.eat("!");
            self.parse_type(&[])
        } else {
            t1
        };
        self.skip_where();
        let self_ty = self_ty_repr.map(|t| type_head(&t.text)).unwrap_or_default();
        if self.txt(0) == "{" {
            self.bump();
            let items = self.items_until(true, is_test);
            self.eat("}");
            ItemKind::Impl { self_ty, items }
        } else {
            self.eat(";");
            ItemKind::Other
        }
    }

    fn parse_fn(&mut self, vis: Vis) -> FnItem {
        self.bump(); // fn
        let name = self.ident_or_empty();
        if self.txt(0) == "<" {
            self.skip_angles();
        }
        let mut has_self = false;
        let mut params = Vec::new();
        if self.txt(0) == "(" {
            let open = self.pos;
            let close = {
                // Find the matching `)` without consuming, so we can slice
                // the parameter list by top-level commas.
                let save = self.pos;
                let end = self.skip_balanced();
                self.pos = save;
                end
            };
            self.bump(); // (
            let mut field_start = self.pos;
            let mut depth = 0usize;
            while self.pos < close {
                let t = &self.toks[self.pos];
                match t.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => {
                        if depth == 0 && t.text == ")" {
                            break;
                        }
                        depth = depth.saturating_sub(1);
                    }
                    "<" => depth += 1,
                    ">" => depth = depth.saturating_sub(1),
                    "," if depth == 0 => {
                        self.param_from_range(field_start, self.pos, &mut has_self, &mut params);
                        field_start = self.pos + 1;
                    }
                    _ => {}
                }
                self.bump();
            }
            self.param_from_range(field_start, self.pos, &mut has_self, &mut params);
            self.pos = close.max(self.pos);
            let _ = open;
        }
        let mut ret = None;
        let mut arrow_line = self.prev_line();
        if self.txt(0) == "->" {
            arrow_line = self.line();
            self.bump();
            ret = self.parse_type(&[]);
        }
        self.skip_where();
        let body = if self.txt(0) == "{" {
            Some(self.parse_block())
        } else {
            self.eat(";");
            None
        };
        FnItem {
            name,
            vis,
            has_self,
            params,
            ret,
            arrow_line,
            body,
        }
    }

    /// Builds one [`Param`] (or detects the `self` receiver) from the token
    /// range `[a, b)` of a parameter list.
    fn param_from_range(
        &mut self,
        mut a: usize,
        b: usize,
        has_self: &mut bool,
        params: &mut Vec<Param>,
    ) {
        // Strip leading attributes (`#[cfg(...)] x: f64`).
        while let Some((next, _)) = self.scan_attr(a) {
            a = next;
        }
        if a >= b {
            return;
        }
        let toks = &self.toks[a..b];
        // Top-level colon position.
        let mut colon = None;
        let mut depth = 0i32;
        for (i, t) in toks.iter().enumerate() {
            match t.text.as_str() {
                "(" | "[" | "{" | "<" => depth += 1,
                ")" | "]" | "}" | ">" => depth -= 1,
                ":" if depth == 0 => {
                    colon = Some(i);
                    break;
                }
                _ => {}
            }
        }
        let pre = &toks[..colon.unwrap_or(toks.len())];
        let receiver = !pre.is_empty()
            && pre.iter().all(|t| {
                t.kind == TokKind::Lifetime
                    || matches!(t.text.as_str(), "&" | "&&" | "mut" | "self")
            })
            && pre.iter().any(|t| t.text == "self");
        if receiver {
            *has_self = true;
            return;
        }
        let Some(c) = colon else { return };
        let name = pre
            .iter()
            .rev()
            .find(|t| t.kind == TokKind::Ident && t.text != "mut" && t.text != "ref")
            .map(|t| t.text.clone())
            .unwrap_or_default();
        let ty_text = normalize_type(&toks[c + 1..]);
        if ty_text.is_empty() {
            return;
        }
        params.push(Param {
            name,
            ty: TypeRepr {
                text: ty_text,
                line: toks[c.min(toks.len() - 1)].line,
            },
            line: toks[0].line,
        });
    }

    /// Parses a type at the cursor into normalized text. Stops at depth-0
    /// `,` `)` `;` `{` `}` `=` `>`, the ident `where`, and anything in
    /// `extra_stops`. A depth-0 `->` continues the type only directly after
    /// a `)` (fn-trait sugar like `Fn(f64) -> f64`).
    fn parse_type(&mut self, extra_stops: &[&str]) -> Option<TypeRepr> {
        let line = self.line();
        let mut depth = 0i32;
        let mut text = String::new();
        let mut consumed = false;
        while let Some(t) = self.peek() {
            let s = t.text.as_str();
            if depth == 0 {
                let stop = match s {
                    "," | ")" | ";" | "{" | "}" | "=" => true,
                    ">" => true,
                    "->" => !text.ends_with(')'),
                    "where" => true,
                    "|" if extra_stops.contains(&"|") => true,
                    _ => extra_stops.contains(&s),
                };
                if stop {
                    break;
                }
            }
            match s {
                "<" | "(" | "[" => depth += 1,
                ">" | ")" | "]" => depth -= 1,
                _ => {}
            }
            if t.kind != TokKind::Lifetime {
                text.push_str(s);
            }
            consumed = true;
            self.bump();
        }
        if consumed && !text.is_empty() {
            Some(TypeRepr { text, line })
        } else {
            None
        }
    }
    // -- blocks and statements ---------------------------------------------

    /// Parses a `{ ... }` block at the cursor. Tolerant: if the cursor is
    /// not on `{`, returns an empty block without consuming.
    fn parse_block(&mut self) -> Block {
        let line = self.line();
        if !self.eat("{") {
            return Block {
                stmts: Vec::new(),
                line,
                end_line: line,
            };
        }
        let mut stmts = Vec::new();
        while self.peek().is_some_and(|t| t.text != "}") {
            let before = self.pos;
            if self.txt(0) == ";" {
                self.bump();
                continue;
            }
            // Peek past any attributes to classify what follows.
            let (after_attrs, _) = self.scan_attrs_from(self.pos);
            let head = self.toks.get(after_attrs).map_or("", |t| t.text.as_str());
            let head2 = self
                .toks
                .get(after_attrs + 1)
                .map_or("", |t| t.text.as_str());
            if head == "let" {
                self.skip_attrs();
                stmts.push(self.parse_let());
            } else if is_item_start(head, head2) {
                stmts.push(Stmt::Item(self.parse_item(false)));
            } else {
                let stmt_start = self.pos;
                self.skip_attrs();
                match self.parse_expr(false) {
                    Some(expr) => {
                        if self.eat(";") {
                            stmts.push(Stmt::Expr { expr, semi: true });
                        } else if self.txt(0) == "}" || expr_is_blocklike(&expr) {
                            stmts.push(Stmt::Expr { expr, semi: false });
                        } else {
                            // Trailing garbage after a parsed prefix:
                            // recover to `;`/`}` and mark the whole
                            // statement opaque.
                            self.recover_stmt();
                            self.mark_opaque(stmt_start, self.pos);
                            stmts.push(Stmt::Expr {
                                expr: Expr {
                                    kind: ExprKind::Opaque,
                                    line: self.toks[stmt_start].line,
                                },
                                semi: true,
                            });
                        }
                    }
                    None => {
                        self.recover_stmt();
                        self.mark_opaque(stmt_start, self.pos.max(stmt_start + 1));
                        if self.pos == stmt_start {
                            self.bump();
                        }
                        stmts.push(Stmt::Expr {
                            expr: Expr {
                                kind: ExprKind::Opaque,
                                line: self.toks[stmt_start].line,
                            },
                            semi: true,
                        });
                    }
                }
            }
            if self.pos == before {
                self.mark_opaque(before, before + 1);
                self.bump();
            }
        }
        let end_line = self.line();
        self.eat("}");
        Block {
            stmts,
            line,
            end_line,
        }
    }

    /// Like [`scan_attr`](Self::scan_attr) but over a run of attributes.
    fn scan_attrs_from(&self, mut at: usize) -> (usize, bool) {
        let mut is_test = false;
        while let Some((next, test)) = self.scan_attr(at) {
            is_test |= test;
            at = next;
        }
        (at, is_test)
    }

    /// Statement-level recovery: consume to a depth-0 `;` (inclusive) or
    /// stop before the block's `}`.
    fn recover_stmt(&mut self) {
        while let Some(t) = self.peek() {
            match t.text.as_str() {
                ";" => {
                    self.bump();
                    return;
                }
                "{" | "(" | "[" => {
                    self.skip_balanced();
                }
                "}" => return,
                _ => self.bump(),
            }
        }
    }

    fn parse_let(&mut self) -> Stmt {
        let line = self.line();
        self.bump(); // let
        let pat = self.parse_pat(true);
        let ty = if self.eat(":") {
            self.parse_type(&[])
        } else {
            None
        };
        let init = if self.eat("=") {
            let start = self.pos;
            match self.parse_expr(false) {
                Some(e) => Some(e),
                None => {
                    self.recover_stmt();
                    self.mark_opaque(start, self.pos);
                    return Stmt::Let {
                        pat,
                        ty,
                        init: Some(Expr {
                            kind: ExprKind::Opaque,
                            line,
                        }),
                        els: None,
                        line,
                    };
                }
            }
        } else {
            None
        };
        let els = if self.txt(0) == "else" {
            self.bump();
            Some(self.parse_block())
        } else {
            None
        };
        if !self.eat(";") {
            let start = self.pos;
            self.recover_stmt();
            self.mark_opaque(start, self.pos);
        }
        Stmt::Let {
            pat,
            ty,
            init,
            els,
            line,
        }
    }

    // -- patterns -----------------------------------------------------------

    fn parse_pat(&mut self, allow_or: bool) -> Pat {
        let line = self.line();
        let first = self.parse_pat_single();
        if allow_or && self.txt(0) == "|" {
            let mut alts = vec![first];
            while self.eat("|") {
                alts.push(self.parse_pat_single());
            }
            return Pat {
                kind: PatKind::Or(alts),
                line,
            };
        }
        first
    }

    fn parse_pat_single(&mut self) -> Pat {
        let line = self.line();
        let Some(t) = self.peek() else {
            return Pat {
                kind: PatKind::Other,
                line,
            };
        };
        match t.kind {
            TokKind::Int | TokKind::Float | TokKind::Str | TokKind::Char => {
                self.bump();
                if self.txt(0) == ".." || self.txt(0) == "..=" {
                    self.bump();
                    if matches!(
                        self.kind(0),
                        Some(TokKind::Int | TokKind::Float | TokKind::Char)
                    ) {
                        self.bump();
                    }
                }
                Pat {
                    kind: PatKind::Lit,
                    line,
                }
            }
            TokKind::Punct => match t.text.as_str() {
                "&" | "&&" => {
                    self.bump();
                    self.eat("mut");
                    self.parse_pat_single()
                }
                "(" => {
                    self.bump();
                    let mut elems = Vec::new();
                    while !self.eof() && self.txt(0) != ")" {
                        elems.push(self.parse_pat(true));
                        if !self.eat(",") {
                            break;
                        }
                    }
                    self.eat(")");
                    Pat {
                        kind: PatKind::Tuple(elems),
                        line,
                    }
                }
                "[" => {
                    self.bump();
                    let mut elems = Vec::new();
                    while !self.eof() && self.txt(0) != "]" {
                        elems.push(self.parse_pat(true));
                        if !self.eat(",") {
                            break;
                        }
                    }
                    self.eat("]");
                    Pat {
                        kind: PatKind::Slice(elems),
                        line,
                    }
                }
                ".." | "..=" => {
                    self.bump();
                    // `..` rest, or `..=END` range-to pattern.
                    if matches!(
                        self.kind(0),
                        Some(TokKind::Int | TokKind::Float | TokKind::Char)
                    ) {
                        self.bump();
                        Pat {
                            kind: PatKind::Lit,
                            line,
                        }
                    } else {
                        Pat {
                            kind: PatKind::Rest,
                            line,
                        }
                    }
                }
                "-" => {
                    self.bump();
                    if matches!(self.kind(0), Some(TokKind::Int | TokKind::Float)) {
                        self.bump();
                    }
                    Pat {
                        kind: PatKind::Lit,
                        line,
                    }
                }
                _ => {
                    self.bump();
                    Pat {
                        kind: PatKind::Other,
                        line,
                    }
                }
            },
            TokKind::Ident => {
                match t.text.as_str() {
                    "_" => {
                        self.bump();
                        return Pat {
                            kind: PatKind::Wild,
                            line,
                        };
                    }
                    "mut" | "ref" => {
                        self.bump();
                        return self.parse_pat_single();
                    }
                    _ => {}
                }
                // Path (possibly a binding).
                let mut segs = vec![self.txt(0).to_string()];
                self.bump();
                while self.txt(0) == "::" && self.kind(1) == Some(TokKind::Ident) {
                    self.bump();
                    segs.push(self.txt(0).to_string());
                    self.bump();
                }
                if self.txt(0) == "@" {
                    self.bump();
                    let _ = self.parse_pat_single();
                    return Pat {
                        kind: PatKind::Ident(segs.pop().unwrap_or_default()),
                        line,
                    };
                }
                match self.txt(0) {
                    "(" => {
                        self.bump();
                        let mut elems = Vec::new();
                        while !self.eof() && self.txt(0) != ")" {
                            elems.push(self.parse_pat(true));
                            if !self.eat(",") {
                                break;
                            }
                        }
                        self.eat(")");
                        Pat {
                            kind: PatKind::TupleStruct { path: segs, elems },
                            line,
                        }
                    }
                    "{" => {
                        self.skip_balanced();
                        Pat {
                            kind: PatKind::Struct { path: segs },
                            line,
                        }
                    }
                    _ => {
                        let is_binding = segs.len() == 1
                            && segs[0]
                                .chars()
                                .next()
                                .is_some_and(|c| c.is_lowercase() || c == '_');
                        if is_binding {
                            Pat {
                                kind: PatKind::Ident(segs.pop().unwrap_or_default()),
                                line,
                            }
                        } else {
                            Pat {
                                kind: PatKind::Path(segs),
                                line,
                            }
                        }
                    }
                }
            }
            TokKind::Lifetime => {
                self.bump();
                Pat {
                    kind: PatKind::Other,
                    line,
                }
            }
        }
    }
    // -- expressions --------------------------------------------------------
    //
    // Precedence (loosest first): assignment, range, `||`, `&&`,
    // comparison, `|`, `^`, `&`, shifts, `+ -`, `* / %`, `as`, unary,
    // postfix, primary. `ns` ("no struct") suppresses struct-literal
    // parsing in `if`/`while`/`match`/`for` heads, exactly like rustc.

    fn parse_expr(&mut self, ns: bool) -> Option<Expr> {
        self.parse_assign(ns)
    }

    fn parse_assign(&mut self, ns: bool) -> Option<Expr> {
        let lhs = self.parse_range(ns)?;
        let line = lhs.line;
        // Merged compound-assignment operators the lexer does not join.
        let op: Option<String> = match self.txt(0) {
            "=" | "+=" | "-=" | "*=" | "/=" => {
                let s = self.txt(0).to_string();
                self.bump();
                Some(s)
            }
            "%" | "&" | "|" | "^" if self.txt(1) == "=" => {
                let s = format!("{}=", self.txt(0));
                self.bump();
                self.bump();
                Some(s)
            }
            "<" if self.txt(1) == "<" && self.txt(2) == "=" => {
                self.bump();
                self.bump();
                self.bump();
                Some("<<=".into())
            }
            ">" if self.txt(1) == ">" && self.txt(2) == "=" => {
                self.bump();
                self.bump();
                self.bump();
                Some(">>=".into())
            }
            _ => None,
        };
        if let Some(op) = op {
            let rhs = self.parse_assign(ns).unwrap_or(Expr {
                kind: ExprKind::Opaque,
                line,
            });
            return Some(Expr {
                kind: ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)),
                line,
            });
        }
        Some(lhs)
    }

    fn parse_range(&mut self, ns: bool) -> Option<Expr> {
        let line = self.line();
        if self.txt(0) == ".." || self.txt(0) == "..=" {
            self.bump();
            let hi = if self.can_start_expr(ns) {
                self.parse_or(ns).map(Box::new)
            } else {
                None
            };
            return Some(Expr {
                kind: ExprKind::Range { lo: None, hi },
                line,
            });
        }
        let lo = self.parse_or(ns)?;
        if self.txt(0) == ".." || self.txt(0) == "..=" {
            let line = lo.line;
            self.bump();
            let hi = if self.can_start_expr(ns) {
                self.parse_or(ns).map(Box::new)
            } else {
                None
            };
            return Some(Expr {
                kind: ExprKind::Range {
                    lo: Some(Box::new(lo)),
                    hi,
                },
                line,
            });
        }
        Some(lo)
    }

    fn can_start_expr(&self, ns: bool) -> bool {
        match self.peek() {
            None => false,
            Some(t) => match t.text.as_str() {
                ")" | "]" | "}" | "," | ";" | "=>" | "=" => false,
                "{" => !ns,
                _ => true,
            },
        }
    }

    fn parse_or(&mut self, ns: bool) -> Option<Expr> {
        let mut lhs = self.parse_and(ns)?;
        while self.txt(0) == "||" {
            self.bump();
            let rhs = self.parse_and(ns)?;
            lhs = bin("||", lhs, rhs);
        }
        Some(lhs)
    }

    fn parse_and(&mut self, ns: bool) -> Option<Expr> {
        let mut lhs = self.parse_cmp(ns)?;
        while self.txt(0) == "&&" {
            self.bump();
            let rhs = self.parse_cmp(ns)?;
            lhs = bin("&&", lhs, rhs);
        }
        Some(lhs)
    }

    fn parse_cmp(&mut self, ns: bool) -> Option<Expr> {
        let mut lhs = self.parse_bitor(ns)?;
        loop {
            let op = match self.txt(0) {
                "==" | "!=" | "<=" | ">=" => self.txt(0),
                "<" if self.txt(1) != "<" => "<",
                ">" if self.txt(1) != ">" => ">",
                _ => break,
            };
            let op = op.to_string();
            self.bump();
            let rhs = self.parse_bitor(ns)?;
            lhs = bin(&op, lhs, rhs);
        }
        Some(lhs)
    }

    fn parse_bitor(&mut self, ns: bool) -> Option<Expr> {
        let mut lhs = self.parse_bitxor(ns)?;
        while self.txt(0) == "|" && self.txt(1) != "=" {
            self.bump();
            let rhs = self.parse_bitxor(ns)?;
            lhs = bin("|", lhs, rhs);
        }
        Some(lhs)
    }

    fn parse_bitxor(&mut self, ns: bool) -> Option<Expr> {
        let mut lhs = self.parse_bitand(ns)?;
        while self.txt(0) == "^" && self.txt(1) != "=" {
            self.bump();
            let rhs = self.parse_bitand(ns)?;
            lhs = bin("^", lhs, rhs);
        }
        Some(lhs)
    }

    fn parse_bitand(&mut self, ns: bool) -> Option<Expr> {
        let mut lhs = self.parse_shift(ns)?;
        while self.txt(0) == "&" && self.txt(1) != "=" {
            self.bump();
            let rhs = self.parse_shift(ns)?;
            lhs = bin("&", lhs, rhs);
        }
        Some(lhs)
    }

    fn parse_shift(&mut self, ns: bool) -> Option<Expr> {
        let mut lhs = self.parse_additive(ns)?;
        loop {
            let op = if self.txt(0) == "<" && self.txt(1) == "<" && self.txt(2) != "=" {
                "<<"
            } else if self.txt(0) == ">" && self.txt(1) == ">" && self.txt(2) != "=" {
                ">>"
            } else {
                break;
            };
            self.bump();
            self.bump();
            let rhs = self.parse_additive(ns)?;
            lhs = bin(op, lhs, rhs);
        }
        Some(lhs)
    }

    fn parse_additive(&mut self, ns: bool) -> Option<Expr> {
        let mut lhs = self.parse_mul(ns)?;
        while matches!(self.txt(0), "+" | "-") {
            let op = self.txt(0).to_string();
            self.bump();
            let rhs = self.parse_mul(ns)?;
            lhs = bin(&op, lhs, rhs);
        }
        Some(lhs)
    }

    fn parse_mul(&mut self, ns: bool) -> Option<Expr> {
        let mut lhs = self.parse_cast(ns)?;
        loop {
            let op = match self.txt(0) {
                "*" | "/" => self.txt(0).to_string(),
                "%" if self.txt(1) != "=" => "%".to_string(),
                _ => break,
            };
            self.bump();
            let rhs = self.parse_cast(ns)?;
            lhs = bin(&op, lhs, rhs);
        }
        Some(lhs)
    }

    fn parse_cast(&mut self, ns: bool) -> Option<Expr> {
        let mut e = self.parse_unary(ns)?;
        while self.txt(0) == "as" {
            let line = e.line;
            self.bump();
            let ty = self.parse_cast_type().unwrap_or(TypeRepr {
                text: String::new(),
                line,
            });
            e = Expr {
                kind: ExprKind::Cast(Box::new(e), ty),
                line,
            };
        }
        Some(e)
    }

    /// Narrow type parser for `as` casts: a path with optional pointers/
    /// references and balanced generic arguments; stops before any
    /// operator so `x as f64 + y` keeps the `+` as arithmetic.
    fn parse_cast_type(&mut self) -> Option<TypeRepr> {
        let line = self.line();
        let mut text = String::new();
        // Pointer / reference sigils.
        while matches!(self.txt(0), "*" | "&" | "&&") {
            text.push_str(self.txt(0));
            self.bump();
            if matches!(self.txt(0), "const" | "mut") {
                text.push_str(self.txt(0));
                self.bump();
            }
        }
        loop {
            match self.kind(0) {
                Some(TokKind::Ident) if self.txt(0) != "as" => {
                    text.push_str(self.txt(0));
                    self.bump();
                }
                _ => match self.txt(0) {
                    "::" => {
                        text.push_str("::");
                        self.bump();
                    }
                    "<" => {
                        let start = self.pos;
                        self.skip_angles();
                        for t in &self.toks[start..self.pos] {
                            if t.kind != TokKind::Lifetime {
                                text.push_str(&t.text);
                            }
                        }
                    }
                    "(" | "[" => {
                        let start = self.pos;
                        self.skip_balanced();
                        for t in &self.toks[start..self.pos] {
                            if t.kind != TokKind::Lifetime {
                                text.push_str(&t.text);
                            }
                        }
                    }
                    _ => break,
                },
            }
        }
        if text.is_empty() {
            None
        } else {
            Some(TypeRepr { text, line })
        }
    }

    fn parse_unary(&mut self, ns: bool) -> Option<Expr> {
        let line = self.line();
        match self.txt(0) {
            "-" => {
                self.bump();
                let e = self.parse_unary(ns)?;
                Some(Expr {
                    kind: ExprKind::Unary("-", Box::new(e)),
                    line,
                })
            }
            "!" => {
                self.bump();
                let e = self.parse_unary(ns)?;
                Some(Expr {
                    kind: ExprKind::Unary("!", Box::new(e)),
                    line,
                })
            }
            "*" => {
                self.bump();
                let e = self.parse_unary(ns)?;
                Some(Expr {
                    kind: ExprKind::Unary("*", Box::new(e)),
                    line,
                })
            }
            "&" | "&&" => {
                let double = self.txt(0) == "&&";
                self.bump();
                let mutable = self.eat("mut");
                let inner = self.parse_unary(ns)?;
                let e = Expr {
                    kind: ExprKind::Ref {
                        mutable,
                        expr: Box::new(inner),
                    },
                    line,
                };
                Some(if double {
                    Expr {
                        kind: ExprKind::Ref {
                            mutable: false,
                            expr: Box::new(e),
                        },
                        line,
                    }
                } else {
                    e
                })
            }
            _ => self.parse_postfix(ns),
        }
    }

    fn parse_postfix(&mut self, ns: bool) -> Option<Expr> {
        let mut e = self.parse_primary(ns)?;
        loop {
            match self.txt(0) {
                "." => {
                    let line = self.line();
                    match self.kind(1) {
                        Some(TokKind::Ident) => {
                            self.bump();
                            let name = self.txt(0).to_string();
                            self.bump();
                            // Turbofish on a method: `.collect::<Vec<_>>()`.
                            if self.txt(0) == "::" && self.txt(1) == "<" {
                                self.bump();
                                self.skip_angles();
                            }
                            if self.txt(0) == "(" {
                                let args = self.parse_call_args();
                                e = Expr {
                                    kind: ExprKind::MethodCall {
                                        recv: Box::new(e),
                                        method: name,
                                        args,
                                    },
                                    line,
                                };
                            } else {
                                e = Expr {
                                    kind: ExprKind::Field(Box::new(e), name),
                                    line,
                                };
                            }
                        }
                        Some(TokKind::Int) => {
                            self.bump();
                            let idx = self.txt(0).to_string();
                            self.bump();
                            e = Expr {
                                kind: ExprKind::Field(Box::new(e), idx),
                                line,
                            };
                        }
                        Some(TokKind::Float) => {
                            // `x.0.0` lexes the `0.0` as one float token:
                            // split it into two tuple projections.
                            self.bump();
                            let t = self.txt(0).to_string();
                            self.bump();
                            let mut parts = t.split('.');
                            let a = parts.next().unwrap_or("0").to_string();
                            let b = parts.next().unwrap_or("0").to_string();
                            e = Expr {
                                kind: ExprKind::Field(Box::new(e), a),
                                line,
                            };
                            e = Expr {
                                kind: ExprKind::Field(Box::new(e), b),
                                line,
                            };
                        }
                        _ => break,
                    }
                }
                "(" => {
                    let line = e.line;
                    let args = self.parse_call_args();
                    e = Expr {
                        kind: ExprKind::Call(Box::new(e), args),
                        line,
                    };
                }
                "[" => {
                    let line = self.line();
                    self.bump();
                    let idx = match self.parse_expr(false) {
                        Some(i) => i,
                        None => {
                            let start = self.pos;
                            self.recover_to_closer("]");
                            self.mark_opaque(start, self.pos);
                            Expr {
                                kind: ExprKind::Opaque,
                                line,
                            }
                        }
                    };
                    self.eat("]");
                    e = Expr {
                        kind: ExprKind::Index(Box::new(e), Box::new(idx)),
                        line,
                    };
                }
                "?" => {
                    let line = e.line;
                    self.bump();
                    e = Expr {
                        kind: ExprKind::Try(Box::new(e)),
                        line,
                    };
                }
                _ => break,
            }
        }
        Some(e)
    }

    /// Parses `( a, b, ... )` call arguments at the cursor (on `(`).
    /// Failed elements are skipped to the next depth-0 `,`/`)` and kept as
    /// `Opaque`, with the skipped tokens marked for the fallback.
    fn parse_call_args(&mut self) -> Vec<Expr> {
        let mut args = Vec::new();
        if !self.eat("(") {
            return args;
        }
        loop {
            if self.eof() {
                break;
            }
            if self.txt(0) == ")" {
                self.bump();
                break;
            }
            let start = self.pos;
            match self.parse_expr(false) {
                Some(e) if matches!(self.txt(0), "," | ")") => args.push(e),
                _ => {
                    self.pos = start;
                    let line = self.line();
                    self.recover_to_arg_end();
                    self.mark_opaque(start, self.pos);
                    args.push(Expr {
                        kind: ExprKind::Opaque,
                        line,
                    });
                }
            }
            if !self.eat(",") && self.txt(0) != ")" {
                // Malformed separator: bail out of the list.
                let start = self.pos;
                self.recover_to_closer(")");
                self.mark_opaque(start, self.pos);
                break;
            }
        }
        args
    }

    /// Consumes to the next depth-0 `,` (not consumed) or `)` (not
    /// consumed), skipping nested groups.
    fn recover_to_arg_end(&mut self) {
        let mut depth = 0usize;
        while let Some(t) = self.peek() {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    if depth == 0 {
                        return;
                    }
                    depth -= 1;
                }
                "," if depth == 0 => return,
                _ => {}
            }
            self.bump();
        }
    }

    /// Consumes up to and including `closer` at depth 0.
    fn recover_to_closer(&mut self, closer: &str) {
        let mut depth = 0usize;
        while let Some(t) = self.peek() {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    if depth == 0 && t.text == closer {
                        self.bump();
                        return;
                    }
                    depth = depth.saturating_sub(1);
                }
                _ => {}
            }
            self.bump();
        }
    }
    fn parse_primary(&mut self, ns: bool) -> Option<Expr> {
        let line = self.line();
        let t = self.peek()?;
        match t.kind {
            TokKind::Int => {
                let s = t.text.clone();
                self.bump();
                Some(Expr {
                    kind: ExprKind::Int(s),
                    line,
                })
            }
            TokKind::Float => {
                let s = t.text.clone();
                self.bump();
                Some(Expr {
                    kind: ExprKind::Float(s),
                    line,
                })
            }
            TokKind::Str => {
                self.bump();
                Some(Expr {
                    kind: ExprKind::Str,
                    line,
                })
            }
            TokKind::Char => {
                self.bump();
                Some(Expr {
                    kind: ExprKind::Char,
                    line,
                })
            }
            TokKind::Lifetime => {
                // Labeled loop/block: `'a: loop { ... }`.
                self.bump();
                self.eat(":");
                self.parse_primary(ns)
            }
            TokKind::Punct => match t.text.as_str() {
                "(" => {
                    self.bump();
                    if self.eat(")") {
                        return Some(Expr {
                            kind: ExprKind::Tuple(Vec::new()),
                            line,
                        });
                    }
                    let mut elems = Vec::new();
                    let mut trailing_comma = false;
                    loop {
                        let start = self.pos;
                        match self.parse_expr(false) {
                            Some(e) if matches!(self.txt(0), "," | ")") => elems.push(e),
                            _ => {
                                self.pos = start;
                                self.recover_to_arg_end();
                                self.mark_opaque(start, self.pos);
                                elems.push(Expr {
                                    kind: ExprKind::Opaque,
                                    line,
                                });
                            }
                        }
                        if self.eat(",") {
                            trailing_comma = true;
                            if self.txt(0) == ")" {
                                break;
                            }
                        } else {
                            break;
                        }
                    }
                    self.eat(")");
                    if elems.len() == 1 && !trailing_comma {
                        Some(elems.pop().unwrap())
                    } else {
                        Some(Expr {
                            kind: ExprKind::Tuple(elems),
                            line,
                        })
                    }
                }
                "[" => {
                    self.bump();
                    let mut elems = Vec::new();
                    while !self.eof() && self.txt(0) != "]" {
                        let start = self.pos;
                        match self.parse_expr(false) {
                            Some(e) if matches!(self.txt(0), "," | ";" | "]") => elems.push(e),
                            _ => {
                                self.pos = start;
                                let mut depth = 0usize;
                                while let Some(t) = self.peek() {
                                    match t.text.as_str() {
                                        "(" | "[" | "{" => depth += 1,
                                        ")" | "]" | "}" => {
                                            if depth == 0 {
                                                break;
                                            }
                                            depth -= 1;
                                        }
                                        "," | ";" if depth == 0 => break,
                                        _ => {}
                                    }
                                    self.bump();
                                }
                                self.mark_opaque(start, self.pos);
                                elems.push(Expr {
                                    kind: ExprKind::Opaque,
                                    line,
                                });
                            }
                        }
                        if !self.eat(",") && !self.eat(";") {
                            break;
                        }
                    }
                    self.eat("]");
                    Some(Expr {
                        kind: ExprKind::Array(elems),
                        line,
                    })
                }
                "{" => {
                    let b = self.parse_block();
                    Some(Expr {
                        kind: ExprKind::Block(b),
                        line,
                    })
                }
                "|" | "||" => self.parse_closure(),
                "<" => {
                    // Qualified path `<T as Trait>::method(...)`.
                    self.skip_angles();
                    if self.txt(0) == "::" {
                        self.bump();
                        let mut segs = Vec::new();
                        while self.kind(0) == Some(TokKind::Ident) {
                            segs.push(self.txt(0).to_string());
                            self.bump();
                            if self.txt(0) == "::" && self.kind(1) == Some(TokKind::Ident) {
                                self.bump();
                            } else if self.txt(0) == "::" && self.txt(1) == "<" {
                                self.bump();
                                self.skip_angles();
                            } else {
                                break;
                            }
                        }
                        Some(Expr {
                            kind: ExprKind::Path(segs),
                            line,
                        })
                    } else {
                        None
                    }
                }
                "#" => {
                    // Attribute on an expression: skip and retry once.
                    self.skip_attrs();
                    self.parse_primary(ns)
                }
                _ => None,
            },
            TokKind::Ident => match t.text.as_str() {
                "if" => self.parse_if(),
                "match" => self.parse_match(),
                "while" => {
                    self.bump();
                    let cond = if self.eat("let") {
                        let _pat = self.parse_pat(true);
                        self.eat("=");
                        self.parse_expr(true)?
                    } else {
                        self.parse_expr(true)?
                    };
                    let body = self.parse_block();
                    Some(Expr {
                        kind: ExprKind::While {
                            cond: Box::new(cond),
                            body,
                        },
                        line,
                    })
                }
                "loop" => {
                    self.bump();
                    let body = self.parse_block();
                    Some(Expr {
                        kind: ExprKind::Loop(body),
                        line,
                    })
                }
                "for" => {
                    self.bump();
                    let pat = self.parse_pat(false);
                    if !self.eat("in") {
                        return None;
                    }
                    let iter = self.parse_expr(true)?;
                    let body = self.parse_block();
                    Some(Expr {
                        kind: ExprKind::For {
                            pat,
                            iter: Box::new(iter),
                            body,
                        },
                        line,
                    })
                }
                "unsafe" => {
                    self.bump();
                    let b = self.parse_block();
                    Some(Expr {
                        kind: ExprKind::Block(b),
                        line,
                    })
                }
                "async" => {
                    self.bump();
                    self.eat("move");
                    let b = self.parse_block();
                    Some(Expr {
                        kind: ExprKind::Block(b),
                        line,
                    })
                }
                "return" => {
                    self.bump();
                    let e = if self.can_start_expr(ns) {
                        self.parse_expr(ns).map(Box::new)
                    } else {
                        None
                    };
                    Some(Expr {
                        kind: ExprKind::Return(e),
                        line,
                    })
                }
                "break" => {
                    self.bump();
                    if self.kind(0) == Some(TokKind::Lifetime) {
                        self.bump();
                    }
                    let e = if self.can_start_expr(ns) {
                        self.parse_expr(ns).map(Box::new)
                    } else {
                        None
                    };
                    Some(Expr {
                        kind: ExprKind::Break(e),
                        line,
                    })
                }
                "continue" => {
                    self.bump();
                    if self.kind(0) == Some(TokKind::Lifetime) {
                        self.bump();
                    }
                    Some(Expr {
                        kind: ExprKind::Continue,
                        line,
                    })
                }
                "move" => {
                    self.bump();
                    if matches!(self.txt(0), "|" | "||") {
                        self.parse_closure()
                    } else {
                        None
                    }
                }
                _ => self.parse_path_expr(ns),
            },
        }
    }

    fn parse_if(&mut self) -> Option<Expr> {
        let line = self.line();
        self.bump(); // if
        if self.eat("let") {
            let pat = self.parse_pat(true);
            self.eat("=");
            let scrutinee = self.parse_expr(true)?;
            let then = self.parse_block();
            let els = self.parse_else();
            return Some(Expr {
                kind: ExprKind::IfLet {
                    pat,
                    scrutinee: Box::new(scrutinee),
                    then,
                    els,
                },
                line,
            });
        }
        let cond = self.parse_expr(true)?;
        let then = self.parse_block();
        let els = self.parse_else();
        Some(Expr {
            kind: ExprKind::If {
                cond: Box::new(cond),
                then,
                els,
            },
            line,
        })
    }

    fn parse_else(&mut self) -> Option<Box<Expr>> {
        if self.txt(0) != "else" {
            return None;
        }
        self.bump();
        if self.txt(0) == "if" {
            self.parse_if().map(Box::new)
        } else {
            let line = self.line();
            let b = self.parse_block();
            Some(Box::new(Expr {
                kind: ExprKind::Block(b),
                line,
            }))
        }
    }

    fn parse_match(&mut self) -> Option<Expr> {
        let line = self.line();
        self.bump(); // match
        let scrutinee = self.parse_expr(true)?;
        if !self.eat("{") {
            return None;
        }
        let mut arms = Vec::new();
        loop {
            if self.eof() || self.txt(0) == "}" {
                break;
            }
            if self.txt(0) == "," {
                self.bump();
                continue;
            }
            let arm_start = self.pos;
            let arm_line = self.line();
            self.skip_attrs();
            let pat = self.parse_pat(true);
            let guard = if self.eat("if") {
                self.parse_expr(true)
            } else {
                None
            };
            if !self.eat("=>") {
                // Unparseable arm head: skip to the next arm boundary.
                self.recover_arm();
                self.mark_opaque(arm_start, self.pos);
                continue;
            }
            let body_start = self.pos;
            let body = match self.parse_expr(false) {
                Some(e) if matches!(self.txt(0), "," | "}") || expr_is_blocklike(&e) => e,
                _ => {
                    self.pos = body_start;
                    self.recover_arm();
                    self.mark_opaque(body_start, self.pos);
                    Expr {
                        kind: ExprKind::Opaque,
                        line: arm_line,
                    }
                }
            };
            arms.push(Arm {
                pat,
                guard,
                body,
                line: arm_line,
            });
        }
        self.eat("}");
        Some(Expr {
            kind: ExprKind::Match {
                scrutinee: Box::new(scrutinee),
                arms,
            },
            line,
        })
    }

    /// Skips to the next arm boundary: a depth-0 `,` (consumed) or the
    /// match's `}` (not consumed).
    fn recover_arm(&mut self) {
        let mut depth = 0usize;
        while let Some(t) = self.peek() {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" => depth = depth.saturating_sub(1),
                "}" => {
                    if depth == 0 {
                        return;
                    }
                    depth -= 1;
                }
                "," if depth == 0 => {
                    self.bump();
                    return;
                }
                _ => {}
            }
            self.bump();
        }
    }

    fn parse_closure(&mut self) -> Option<Expr> {
        let line = self.line();
        let mut params = Vec::new();
        if self.eat("||") {
            // No parameters.
        } else {
            self.eat("|");
            loop {
                if self.eof() {
                    break;
                }
                if self.txt(0) == "|" {
                    self.bump();
                    break;
                }
                // One parameter: strip sigils, record the binding name.
                while matches!(self.txt(0), "&" | "&&" | "mut" | "ref") {
                    self.bump();
                }
                match self.txt(0) {
                    "(" | "[" => {
                        self.skip_balanced();
                        params.push(String::new());
                    }
                    _ if self.kind(0) == Some(TokKind::Ident) => {
                        params.push(self.txt(0).to_string());
                        self.bump();
                    }
                    _ => {
                        self.bump();
                    }
                }
                if self.eat(":") {
                    let _ = self.parse_type(&["|"]);
                }
                if !self.eat(",") && self.txt(0) != "|" {
                    // Unexpected token inside the parameter list.
                    while !self.eof() && self.txt(0) != "|" {
                        self.bump();
                    }
                }
            }
        }
        if self.eat("->") {
            let _ = self.parse_type(&[]);
            // With an explicit return type the body must be a block.
            let b = self.parse_block();
            return Some(Expr {
                kind: ExprKind::Closure {
                    params,
                    body: Box::new(Expr {
                        kind: ExprKind::Block(b),
                        line,
                    }),
                },
                line,
            });
        }
        let body = self.parse_expr(false)?;
        Some(Expr {
            kind: ExprKind::Closure {
                params,
                body: Box::new(body),
            },
            line,
        })
    }

    /// Path expression, possibly a macro call or struct literal.
    fn parse_path_expr(&mut self, ns: bool) -> Option<Expr> {
        let line = self.line();
        let mut segs = vec![self.txt(0).to_string()];
        self.bump();
        loop {
            if self.txt(0) == "::" && self.kind(1) == Some(TokKind::Ident) {
                self.bump();
                segs.push(self.txt(0).to_string());
                self.bump();
            } else if self.txt(0) == "::" && self.txt(1) == "<" {
                // Turbofish: skip the generic arguments.
                self.bump();
                self.skip_angles();
            } else {
                break;
            }
        }
        if self.txt(0) == "!" && matches!(self.txt(1), "(" | "[" | "{") {
            self.bump();
            let start = self.pos;
            self.skip_balanced();
            self.mark_opaque(start, self.pos);
            return Some(Expr {
                kind: ExprKind::MacroCall { path: segs },
                line,
            });
        }
        if self.txt(0) == "{" && !ns {
            return self.parse_struct_lit(segs, line);
        }
        Some(Expr {
            kind: ExprKind::Path(segs),
            line,
        })
    }

    fn parse_struct_lit(&mut self, path: Vec<String>, line: u32) -> Option<Expr> {
        self.bump(); // {
        let mut fields = Vec::new();
        loop {
            if self.eof() || self.txt(0) == "}" {
                break;
            }
            match self.txt(0) {
                "," => {
                    self.bump();
                    continue;
                }
                ".." => {
                    // Functional-update base: `..Default::default()`.
                    self.bump();
                    let _ = self.parse_expr(false);
                    continue;
                }
                _ => {}
            }
            if self.kind(0) != Some(TokKind::Ident) {
                let start = self.pos;
                self.recover_to_closer("}");
                self.mark_opaque(start, self.pos);
                return Some(Expr {
                    kind: ExprKind::StructLit { path, fields },
                    line,
                });
            }
            let fline = self.line();
            let name = self.txt(0).to_string();
            self.bump();
            if self.eat(":") {
                let start = self.pos;
                match self.parse_expr(false) {
                    Some(e) if matches!(self.txt(0), "," | "}") => fields.push((name, e)),
                    _ => {
                        self.pos = start;
                        self.recover_to_arg_end();
                        self.mark_opaque(start, self.pos);
                        fields.push((
                            name,
                            Expr {
                                kind: ExprKind::Opaque,
                                line: fline,
                            },
                        ));
                    }
                }
            } else {
                // Shorthand field.
                fields.push((
                    name.clone(),
                    Expr {
                        kind: ExprKind::Path(vec![name]),
                        line: fline,
                    },
                ));
            }
        }
        self.eat("}");
        Some(Expr {
            kind: ExprKind::StructLit { path, fields },
            line,
        })
    }
}

/// True when `head` (the first non-attribute token of a statement) starts
/// an item rather than an expression.
fn is_item_start(head: &str, head2: &str) -> bool {
    if ITEM_STARTERS.contains(&head) {
        return true;
    }
    match head {
        "const" => head2 != "{",
        "unsafe" => matches!(head2, "fn" | "impl" | "trait" | "extern"),
        "async" => head2 == "fn",
        _ => false,
    }
}

/// Block-like expressions may stand as statements without a `;`.
fn expr_is_blocklike(e: &Expr) -> bool {
    matches!(
        e.kind,
        ExprKind::If { .. }
            | ExprKind::IfLet { .. }
            | ExprKind::Match { .. }
            | ExprKind::While { .. }
            | ExprKind::Loop(_)
            | ExprKind::For { .. }
            | ExprKind::Block(_)
            | ExprKind::MacroCall { .. }
    )
}

fn bin(op: &str, lhs: Expr, rhs: Expr) -> Expr {
    let line = lhs.line;
    Expr {
        kind: ExprKind::Binary(op.to_string(), Box::new(lhs), Box::new(rhs)),
        line,
    }
}

/// Strips references, `dyn`, and generic arguments from a normalized type
/// text and returns the final path segment: `&mutVec<f64>` → `Vec`,
/// `units::Watts` → `Watts`.
fn type_head(text: &str) -> String {
    let t = text.trim_start_matches('&');
    let t = t.strip_prefix("mut").unwrap_or(t);
    let t = t.strip_prefix("dyn").unwrap_or(t);
    let t = t.strip_prefix("impl").unwrap_or(t);
    let t = t.split('<').next().unwrap_or(t);
    t.rsplit("::").next().unwrap_or(t).to_string()
}

/// Concatenates a token slice into normalized (spaceless) type text,
/// skipping lifetimes.
fn normalize_type(toks: &[Tok]) -> String {
    let mut s = String::new();
    for t in toks {
        if t.kind != TokKind::Lifetime {
            s.push_str(&t.text);
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parsed(src: &str) -> Parsed {
        parse(src)
    }

    fn first_fn(p: &Parsed) -> &FnItem {
        for item in &p.file.items {
            if let ItemKind::Fn(f) = &item.kind {
                return f;
            }
        }
        panic!("no fn item parsed");
    }

    #[test]
    fn simple_fn_signature_and_body() {
        let p = parsed("pub fn f(x: f64, w: Watts) -> Watts {\n    w\n}\n");
        let f = first_fn(&p);
        assert_eq!(f.name, "f");
        assert_eq!(f.vis, Vis::Pub);
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[0].name, "x");
        assert_eq!(f.params[0].ty.text, "f64");
        assert_eq!(f.params[1].ty.text, "Watts");
        assert_eq!(f.ret.as_ref().unwrap().text, "Watts");
        assert!(
            p.opaque.is_empty(),
            "clean fn should have no opaque: {:?}",
            p.opaque
        );
        let body = f.body.as_ref().unwrap();
        assert_eq!(body.stmts.len(), 1);
    }

    #[test]
    fn method_chain_and_closure() {
        let p = parsed("fn f(v: Vec<f64>) -> f64 {\n    v.iter().map(|x| x * 2.0).sum()\n}\n");
        let f = first_fn(&p);
        let Stmt::Expr { expr, semi: false } = &f.body.as_ref().unwrap().stmts[0] else {
            panic!("expected tail expr");
        };
        let ExprKind::MethodCall { method, recv, .. } = &expr.kind else {
            panic!("expected method call, got {:?}", expr.kind);
        };
        assert_eq!(method, "sum");
        let ExprKind::MethodCall { method, args, .. } = &recv.kind else {
            panic!("expected map call");
        };
        assert_eq!(method, "map");
        assert!(matches!(args[0].kind, ExprKind::Closure { .. }));
    }

    #[test]
    fn let_wildcard_discarding_call() {
        let p = parsed("fn f(w: &Wal) {\n    let _ = w.sync();\n}\n");
        let f = first_fn(&p);
        let Stmt::Let { pat, init, .. } = &f.body.as_ref().unwrap().stmts[0] else {
            panic!("expected let");
        };
        assert!(pat.is_wild());
        assert!(matches!(
            init.as_ref().unwrap().kind,
            ExprKind::MethodCall { .. }
        ));
    }

    #[test]
    fn macro_item_then_fn_still_parses() {
        let p =
            parsed("unit! {\n    name: Watts, suffix: \"W\",\n}\n\nfn after() -> f64 { 1.0 }\n");
        let f = first_fn(&p);
        assert_eq!(f.name, "after");
        assert!(!p.opaque.is_empty(), "macro body should be opaque");
    }

    #[test]
    fn garbage_recovers_and_marks_opaque() {
        let p = parsed("fn ok() {}\n@@ %% what even is this ;\nfn also_ok() {}\n");
        let names: Vec<&str> = p
            .file
            .items
            .iter()
            .filter_map(|i| match &i.kind {
                ItemKind::Fn(f) => Some(f.name.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(names, vec!["ok", "also_ok"]);
        assert!(!p.opaque.is_empty());
    }

    #[test]
    fn match_arms_with_err_pattern() {
        let p = parsed(
            "fn f(r: Result<u32, E>) -> u32 {\n    match r {\n        Ok(v) => v,\n        Err(_) => 0,\n    }\n}\n",
        );
        let f = first_fn(&p);
        let Stmt::Expr { expr, .. } = &f.body.as_ref().unwrap().stmts[0] else {
            panic!("expected match tail");
        };
        let ExprKind::Match { arms, .. } = &expr.kind else {
            panic!("expected match, got {:?}", expr.kind);
        };
        assert_eq!(arms.len(), 2);
        let PatKind::TupleStruct { path, elems } = &arms[1].pat.kind else {
            panic!("expected Err(..) pattern");
        };
        assert_eq!(path[0], "Err");
        assert!(elems[0].is_wild());
    }

    #[test]
    fn tuple_projection_float_split() {
        let p = parsed("fn f(x: ((f64, f64), f64)) -> f64 { x.0.0 }\n");
        let f = first_fn(&p);
        let Stmt::Expr { expr, .. } = &f.body.as_ref().unwrap().stmts[0] else {
            panic!();
        };
        let ExprKind::Field(inner, b) = &expr.kind else {
            panic!("expected field, got {:?}", expr.kind);
        };
        assert_eq!(b, "0");
        assert!(matches!(&inner.kind, ExprKind::Field(_, a) if a == "0"));
    }

    #[test]
    fn impl_for_records_self_type() {
        let p = parsed(
            "impl std::ops::Add for Watts {\n    fn add(self, rhs: Watts) -> Watts { self }\n}\n",
        );
        let ItemKind::Impl { self_ty, items } = &p.file.items[0].kind else {
            panic!("expected impl, got {:?}", p.file.items[0].kind);
        };
        assert_eq!(self_ty, "Watts");
        assert_eq!(items.len(), 1);
        let ItemKind::Fn(f) = &items[0].kind else {
            panic!();
        };
        assert!(f.has_self);
    }

    #[test]
    fn cfg_test_mod_marks_children_test() {
        let p = parsed(
            "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { assert!(true); }\n}\nfn lib() {}\n",
        );
        let ItemKind::Mod { items, .. } = &p.file.items[0].kind else {
            panic!("expected mod");
        };
        assert!(p.file.items[0].is_test);
        assert!(items[0].is_test);
        assert!(!p.file.items[1].is_test);
    }

    #[test]
    fn struct_literal_not_parsed_in_if_cond() {
        let p = parsed("fn f(c: bool) -> u32 {\n    if c { 1 } else { 2 }\n}\n");
        let f = first_fn(&p);
        let Stmt::Expr { expr, .. } = &f.body.as_ref().unwrap().stmts[0] else {
            panic!();
        };
        let ExprKind::If { cond, els, .. } = &expr.kind else {
            panic!("expected if, got {:?}", expr.kind);
        };
        assert!(matches!(&cond.kind, ExprKind::Path(p) if p[0] == "c"));
        assert!(els.is_some());
    }

    #[test]
    fn struct_literal_in_expr_position() {
        let p = parsed("fn f() -> Bid {\n    Bid { price: Price::new(1.0), qty: 2 }\n}\n");
        let f = first_fn(&p);
        let Stmt::Expr { expr, .. } = &f.body.as_ref().unwrap().stmts[0] else {
            panic!();
        };
        let ExprKind::StructLit { path, fields } = &expr.kind else {
            panic!("expected struct lit, got {:?}", expr.kind);
        };
        assert_eq!(path[0], "Bid");
        assert_eq!(fields.len(), 2);
    }

    #[test]
    fn shift_merged_in_infix_position() {
        let p = parsed("fn f(x: u64) -> u64 { x << 3 }\n");
        let f = first_fn(&p);
        let Stmt::Expr { expr, .. } = &f.body.as_ref().unwrap().stmts[0] else {
            panic!();
        };
        assert!(matches!(&expr.kind, ExprKind::Binary(op, _, _) if op == "<<"));
    }

    #[test]
    fn every_token_is_ast_or_opaque_for_weird_input() {
        // Smoke test: a grab-bag of constructs must not lose the trailing fn.
        let src = r#"
use std::collections::BTreeMap;
const MAX: f64 = 10.0;
enum E { A, B(u32) }
type Alias = Vec<f64>;
static S: u32 = 1;
trait T { fn required(&self) -> f64; }
fn last(v: &[f64]) -> Option<f64> { v.first().copied() }
"#;
        let p = parsed(src);
        let names: Vec<&str> = p
            .file
            .items
            .iter()
            .filter_map(|i| match &i.kind {
                ItemKind::Fn(f) => Some(f.name.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(names, vec!["last"]);
    }

    #[test]
    fn dump_is_stable() {
        let src = "fn f(x: f64) -> f64 { x + 1.0 }\n";
        let a = parsed(src).file.dump();
        let b = parsed(src).file.dump();
        assert_eq!(a, b);
        assert!(a.contains("fn f"));
        assert!(a.contains("binary +"));
    }
}
