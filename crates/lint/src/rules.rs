//! The eight rule families (L1–L8) plus exemption handling.
//!
//! Since the v2 engine, rules run primarily as visitors over the AST from
//! [`crate::parser`]; the legacy token-pattern scans survive as a fallback
//! over the parser's opaque regions (macro bodies, `use`/`enum` items,
//! recovery spans), so parse gaps degrade precision but never recall.
//! Hits inside `#[cfg(test)]` / `#[test]` regions are dropped, and hits
//! covered by an audited `// lint:` exemption comment are counted but not
//! reported. A justified exemption that no longer suppresses anything is
//! itself a violation (stale-exemption hygiene).

use crate::ast::{
    Arm, Block, Expr, ExprKind, FileSymbols, FnItem, Item, ItemKind, PatKind, Stmt, SymbolTable,
    TypeRepr,
};
use crate::flow;
use crate::lexer::{ExemptionComment, Tok, TokKind};
use crate::parser::{parse, Parsed};

/// Version of the rule set. Bump on any change to rule logic, scopes, or
/// messages: the incremental cache keys on it, so a bump invalidates every
/// cached diagnostic.
pub const RULESET_VERSION: u32 = 2;

/// Rule families enforced by the lint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// L1 — public signatures must use unit newtypes, not bare `f64`.
    UnitHygiene,
    /// L2 — no NaN-unsafe float comparisons (`partial_cmp`, float `==`).
    NanSafety,
    /// L3 — no `unwrap`/`expect`/`panic!`/indexing in core library code.
    PanicFreedom,
    /// L4 — no nondeterministic iteration or wall-clock in sim/report code.
    Determinism,
    /// L5 — the sim and CLI layers may not call solver modules (`mclr`,
    /// `opt`, `eql`, `vcg`) directly; they dispatch through the
    /// `mpr_core::mechanism` trait.
    Layering,
    /// L6 — raw `f64` values carrying unit provenance (`.get()`, `.0`) may
    /// not flow into a different unit's constructor or into mixed-unit
    /// arithmetic without an explicit conversion.
    UnitFlow,
    /// L7 — fallible results may not be silently discarded (`let _ =`,
    /// dropped `.ok()`, empty `Err(_)` match arms).
    ErrorSwallowing,
    /// L8 — no order-sensitive parallel reductions, `Ordering::Relaxed`
    /// atomics, or thread-count-dependent logic in result paths.
    ParallelDeterminism,
    /// Meta — malformed, unjustified, or stale exemption comments.
    Exemption,
}

impl Rule {
    /// Stable kebab-case name used in diagnostics and `allow(...)` comments.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Rule::UnitHygiene => "unit-hygiene",
            Rule::NanSafety => "nan-safety",
            Rule::PanicFreedom => "panic-freedom",
            Rule::Determinism => "determinism",
            Rule::Layering => "layering",
            Rule::UnitFlow => "unit-flow",
            Rule::ErrorSwallowing => "error-swallowing",
            Rule::ParallelDeterminism => "parallel-determinism",
            Rule::Exemption => "exemption",
        }
    }

    /// Parses a kebab-case rule name.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Rule> {
        match name {
            "unit-hygiene" => Some(Rule::UnitHygiene),
            "nan-safety" => Some(Rule::NanSafety),
            "panic-freedom" => Some(Rule::PanicFreedom),
            "determinism" => Some(Rule::Determinism),
            "layering" => Some(Rule::Layering),
            "unit-flow" => Some(Rule::UnitFlow),
            "error-swallowing" => Some(Rule::ErrorSwallowing),
            "parallel-determinism" => Some(Rule::ParallelDeterminism),
            _ => None,
        }
    }
}

impl std::fmt::Display for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One diagnostic produced by the lint.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// Rule family that fired.
    pub rule: Rule,
    /// Human-readable description with a suggested fix.
    pub message: String,
}

/// An exemption that matched a violation and suppressed it.
#[derive(Debug, Clone)]
pub struct UsedExemption {
    /// Workspace-relative path of the exempted file.
    pub file: String,
    /// 1-based line of the suppressed violation.
    pub line: u32,
    /// Rule family that was suppressed.
    pub rule: Rule,
    /// Justification text from the comment.
    pub reason: String,
}

/// Which rule families apply to a file, derived from its workspace path.
#[derive(Debug, Clone, Copy, Default)]
pub struct RuleSet {
    /// Apply L1 (unit hygiene on `pub fn` signatures).
    pub unit_hygiene: bool,
    /// Apply L2 (NaN-safe comparisons).
    pub nan_safety: bool,
    /// Apply L3 (panic freedom).
    pub panic_freedom: bool,
    /// Apply L4 time-source checks (`Instant::now`, `SystemTime`).
    pub determinism_time: bool,
    /// Apply L4 hash-iteration checks (report/CSV modules).
    pub determinism_hash: bool,
    /// Apply L5 (no direct solver-module calls from the sim/CLI layer).
    pub layering: bool,
    /// Apply L6 (unit provenance tracking on raw `f64` flows).
    pub unit_flow: bool,
    /// Apply L7 (no silently discarded fallible results).
    pub error_swallowing: bool,
    /// Apply L8 (no order-nondeterministic parallelism).
    pub parallel_determinism: bool,
}

impl RuleSet {
    /// Scope policy for a workspace-relative path like
    /// `crates/core/src/mclr.rs`. Files outside `crates/*/src` get no rules.
    #[must_use]
    pub fn for_path(relpath: &str) -> RuleSet {
        let mut parts = relpath.split('/');
        if parts.next() != Some("crates") {
            return RuleSet::default();
        }
        let Some(krate) = parts.next() else {
            return RuleSet::default();
        };
        if parts.next() != Some("src") {
            // Integration tests, benches, fixtures: exempt.
            return RuleSet::default();
        }
        let file = relpath.rsplit('/').next().unwrap_or("");
        RuleSet {
            // Unit-typed quantities are enforced where the paper's quantities
            // live: the market engine, the power layer, and the simulator.
            unit_hygiene: matches!(krate, "core" | "power" | "sim"),
            // NaN-safety applies to all library crates; binaries (cli,
            // experiments, bench drivers) are presentation code.
            nan_safety: !matches!(krate, "cli" | "experiments" | "bench" | "lint"),
            // Panic-freedom is the strictest tier: the crates whose code
            // runs inside every simulation slot — the solvers, the power
            // layer, the simulation engine itself (the chaos campaign's
            // no-panic oracle treats any engine panic as a safety failure),
            // the crash-durability layer, and since v2 the harness crates
            // (chaos, grid, proto, sched, workload) that drive them: a
            // panicking harness aborts the campaign it is supposed to run.
            panic_freedom: matches!(
                krate,
                "core"
                    | "power"
                    | "sim"
                    | "durable"
                    | "chaos"
                    | "grid"
                    | "proto"
                    | "sched"
                    | "workload"
            ),
            // Wall-clock reads make runs unreproducible anywhere seeded
            // simulation or replay happens, not just inside the sim crate.
            determinism_time: matches!(
                krate,
                "sim" | "chaos" | "grid" | "proto" | "sched" | "workload"
            ),
            // Hash-iteration order must not leak into anything persisted or
            // compared bit-for-bit: reports, CSV emitters, and the ledger
            // codec (WAL replay equivalence is checked to the bit).
            determinism_hash: file.contains("report")
                || file.contains("csv")
                || file.contains("ledger")
                || file.contains("wal")
                || krate == "durable",
            // The mechanism abstraction is the only sanctioned route from
            // the orchestration layers down to the solvers (DESIGN.md §11).
            layering: matches!(krate, "sim" | "cli"),
            // Unit provenance is tracked where quantities flow; units.rs is
            // the one sanctioned place raw f64s cross unit boundaries.
            unit_flow: matches!(krate, "core" | "power" | "sim") && file != "units.rs",
            // Swallowed errors are outage fuel in the engine, the durability
            // layer, and the simulator that replays their decisions.
            error_swallowing: matches!(krate, "core" | "durable" | "sim"),
            // Parallel nondeterminism is checked in every library crate.
            parallel_determinism: !matches!(krate, "cli" | "experiments" | "bench" | "lint"),
        }
    }
}

/// Outcome of analyzing one file.
#[derive(Debug, Default)]
pub struct FileAnalysis {
    /// Violations that survived test-region and exemption filtering.
    pub violations: Vec<Violation>,
    /// Exemptions that suppressed a violation.
    pub exemptions_used: Vec<UsedExemption>,
}

/// Analyzes one source file under the rule scopes for `relpath`.
#[must_use]
pub fn analyze_source(relpath: &str, src: &str) -> FileAnalysis {
    analyze_source_with(relpath, src, RuleSet::for_path(relpath))
}

/// Analyzes one source file with an explicit rule set (used by fixture
/// tests to exercise rules regardless of path). The symbol table is built
/// from the file itself, so cross-file facts (e.g. which methods return
/// `Result`) are limited to what the file declares.
#[must_use]
pub fn analyze_source_with(relpath: &str, src: &str, rules: RuleSet) -> FileAnalysis {
    let parsed = parse(src);
    let symbols = FileSymbols::from_file(&parsed.file);
    let symtab = SymbolTable::build(std::iter::once(&symbols));
    analyze_parsed(relpath, &parsed, rules, &symtab)
}

/// Analyzes an already-parsed file against a (possibly workspace-wide)
/// symbol table. This is the engine entry point the workspace pass and the
/// incremental cache drive.
#[must_use]
pub fn analyze_parsed(
    relpath: &str,
    parsed: &Parsed,
    rules: RuleSet,
    symtab: &SymbolTable,
) -> FileAnalysis {
    // Test regions come from both the AST (items marked `is_test`) and the
    // legacy token scan (covers test items hidden inside opaque regions).
    let mut regions = test_regions(&parsed.toks);
    ast_test_regions(&parsed.file.items, &mut regions);
    let exemptions: Vec<ParsedExemption> = parsed.exemptions.iter().map(parse_exemption).collect();

    let mut raw: Vec<Violation> = Vec::new();
    {
        let mut v = Visitor {
            relpath,
            rules,
            symtab,
            out: &mut raw,
        };
        v.items(&parsed.file.items);
    }
    if rules.unit_flow {
        flow::unit_flow(relpath, &parsed.file, symtab, &mut raw);
    }
    // Token fallback: the legacy pattern scans, restricted to the regions
    // the parser could not model (macro bodies, `use`/`enum` items,
    // recovery spans). Precision degrades there; recall does not.
    for slice in parsed.opaque_slices() {
        fallback_scan(relpath, slice, rules, &mut raw);
    }

    // Drop test-region hits, dedupe, then apply exemptions.
    raw.retain(|v| !in_regions(&regions, v.line));
    raw.sort_by(|a, b| (a.line, a.rule.name()).cmp(&(b.line, b.rule.name())));
    raw.dedup_by(|a, b| a.line == b.line && a.rule == b.rule);

    let mut out = FileAnalysis::default();
    let mut used = vec![false; exemptions.len()];
    for v in raw {
        // An exemption covers the violation line itself or the line below
        // the comment (comment-above style).
        let hit = exemptions
            .iter()
            .position(|e| e.rule == Some(v.rule) && (e.line == v.line || e.line + 1 == v.line));
        match hit {
            Some(i) if !exemptions[i].reason.is_empty() => {
                used[i] = true;
                out.exemptions_used.push(UsedExemption {
                    file: v.file,
                    line: v.line,
                    rule: v.rule,
                    reason: exemptions[i].reason.clone(),
                });
            }
            _ => out.violations.push(v),
        }
    }

    // Malformed exemption comments are violations in their own right: an
    // unparseable rule name or a missing justification silently grants
    // nothing, which is worse than failing loudly. A well-formed exemption
    // that suppresses nothing is stale and must be removed, or the
    // allowlist rots into a list of places nobody checks anymore.
    for (i, e) in exemptions.iter().enumerate() {
        if in_regions(&regions, e.line) {
            continue;
        }
        if e.rule.is_none() {
            out.violations.push(Violation {
                file: relpath.to_string(),
                line: e.line,
                rule: Rule::Exemption,
                message: format!(
                    "unrecognized lint exemption `{}`; use `raw-f64-ok` or `allow(<rule>)`",
                    e.raw
                ),
            });
        } else if e.reason.is_empty() {
            out.violations.push(Violation {
                file: relpath.to_string(),
                line: e.line,
                rule: Rule::Exemption,
                message: "lint exemption has no justification; add one after the rule".into(),
            });
        } else if !used[i] {
            let rule = e.rule.map_or("?", Rule::name);
            out.violations.push(Violation {
                file: relpath.to_string(),
                line: e.line,
                rule: Rule::Exemption,
                message: format!(
                    "stale lint exemption: `{rule}` no longer fires here; remove the comment"
                ),
            });
        }
    }
    out.violations
        .sort_by(|a, b| (a.line, a.rule.name()).cmp(&(b.line, b.rule.name())));
    out
}

/// Parsed form of a `// lint: ...` comment.
struct ParsedExemption {
    line: u32,
    rule: Option<Rule>,
    reason: String,
    raw: String,
}

fn parse_exemption(c: &ExemptionComment) -> ParsedExemption {
    let body = c.body.trim();
    let (rule, rest) = if let Some(rest) = body.strip_prefix("raw-f64-ok") {
        (Some(Rule::UnitHygiene), rest)
    } else if let Some(after) = body.strip_prefix("allow(") {
        match after.split_once(')') {
            Some((name, rest)) => (Rule::from_name(name.trim()), rest),
            None => (None, ""),
        }
    } else {
        (None, "")
    };
    let reason = rest
        .trim_start_matches([' ', '—', '-', ':', ','])
        .trim()
        .to_string();
    ParsedExemption {
        line: c.line,
        rule,
        reason,
        raw: body.to_string(),
    }
}

/// Collects line ranges of AST items marked test-only.
fn ast_test_regions(items: &[Item], out: &mut Vec<(u32, u32)>) {
    for item in items {
        if item.is_test {
            out.push((item.line, item.end_line));
            continue;
        }
        match &item.kind {
            ItemKind::Mod { items, .. }
            | ItemKind::Impl { items, .. }
            | ItemKind::Trait { items, .. } => ast_test_regions(items, out),
            _ => {}
        }
    }
}

/// Line ranges belonging to `#[cfg(test)]` / `#[test]` / `#[bench]` items,
/// recovered from the raw token stream (catches test items the parser left
/// inside opaque regions).
fn test_regions(toks: &[Tok]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if is_test_attr(toks, i) {
            let attr_line = toks[i].line;
            // Skip this attribute and any stacked ones, then span the item.
            let mut j = skip_attr(toks, i);
            while j < toks.len() && toks[j].text == "#" {
                j = skip_attr(toks, j);
            }
            // Find the item body: first `{` at paren depth 0, or a `;`.
            let mut paren = 0i32;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "(" | "[" => paren += 1,
                    ")" | "]" => paren -= 1,
                    "{" if paren == 0 => {
                        let close = match_brace(toks, j);
                        regions.push((attr_line, toks[close.min(toks.len() - 1)].line));
                        i = close;
                        break;
                    }
                    ";" if paren == 0 => {
                        regions.push((attr_line, toks[j].line));
                        i = j;
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        i += 1;
    }
    regions
}

/// True when tokens at `i` start `#[test]`, `#[bench]`, or an attribute
/// whose argument list mentions `test` (covers `#[cfg(test)]`,
/// `#[cfg(any(test, ...))]`).
fn is_test_attr(toks: &[Tok], i: usize) -> bool {
    if toks[i].text != "#" || i + 1 >= toks.len() || toks[i + 1].text != "[" {
        return false;
    }
    let end = match_bracket(toks, i + 1);
    let inner = &toks[i + 2..end.min(toks.len())];
    match inner.first().map(|t| t.text.as_str()) {
        Some("test" | "bench") => inner.len() == 1,
        Some("cfg") => inner.iter().any(|t| t.text == "test"),
        _ => false,
    }
}

/// Index just past a `#[...]` attribute starting at the `#` at `i`.
fn skip_attr(toks: &[Tok], i: usize) -> usize {
    if i + 1 < toks.len() && toks[i + 1].text == "[" {
        match_bracket(toks, i + 1) + 1
    } else {
        i + 1
    }
}

/// Index of the `]` matching the `[` at `open`.
fn match_bracket(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
    }
    toks.len().saturating_sub(1)
}

/// Index of the `}` matching the `{` at `open`.
fn match_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
    }
    toks.len().saturating_sub(1)
}

fn in_regions(regions: &[(u32, u32)], line: u32) -> bool {
    regions.iter().any(|&(a, b)| (a..=b).contains(&line))
}

/// Quantity-name patterns from the paper's variables: watts (P, C, δ),
/// prices (q′), core-hours (costs/rewards), plus the target/budget words the
/// controllers use for them.
pub(crate) fn is_quantity_name(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    [
        "watt",
        "price",
        "core_hour",
        "corehour",
        "power",
        "target",
        "budget",
    ]
    .iter()
    .any(|p| lower.contains(p))
        || lower.ends_with("_w")
        || lower.ends_with("_wh")
}

/// Solver modules that only `mpr_core::mechanism` may call into.
const SOLVER_MODULES: &[&str] = &["mclr", "opt", "eql", "vcg"];

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Parallel iterator sources whose downstream reductions are order-sensitive.
const PAR_SOURCES: &[&str] = &[
    "par_iter",
    "par_iter_mut",
    "into_par_iter",
    "par_chunks",
    "par_chunks_mut",
    "par_windows",
    "par_bridge",
    "par_drain",
];

/// Order-sensitive reductions: float addition/multiplication are not
/// associative, so the schedule leaks into the result.
const ORDER_SENSITIVE_REDUCERS: &[&str] = &["sum", "product", "fold", "reduce", "fold_with"];

/// Runtime-parallelism introspection: branching on these makes results a
/// function of the machine, not the input.
const THREAD_INTROSPECTION: &[&str] = &[
    "current_num_threads",
    "current_thread_index",
    "available_parallelism",
];

// ---------------------------------------------------------------------------
// AST visitor: L1–L5, L7, L8
// ---------------------------------------------------------------------------

struct Visitor<'a> {
    relpath: &'a str,
    rules: RuleSet,
    symtab: &'a SymbolTable,
    out: &'a mut Vec<Violation>,
}

impl Visitor<'_> {
    fn push(&mut self, line: u32, rule: Rule, message: String) {
        self.out.push(Violation {
            file: self.relpath.to_string(),
            line,
            rule,
            message,
        });
    }

    fn items(&mut self, items: &[Item]) {
        for item in items {
            if item.is_test {
                continue;
            }
            match &item.kind {
                ItemKind::Fn(f) => self.function(f),
                ItemKind::Mod { items, .. }
                | ItemKind::Impl { items, .. }
                | ItemKind::Trait { items, .. } => self.items(items),
                ItemKind::Struct { fields, .. } => {
                    for (_, ty) in fields {
                        self.check_type(ty);
                    }
                }
                ItemKind::MacroRules { .. } | ItemKind::Other => {}
            }
        }
    }

    fn function(&mut self, f: &FnItem) {
        if self.rules.unit_hygiene && f.vis.is_public() {
            for p in &f.params {
                if p.ty.is_bare_f64() && is_quantity_name(&p.name) {
                    self.push(
                        p.line,
                        Rule::UnitHygiene,
                        format!(
                            "pub fn parameter `{}: {}` is a bare float quantity; \
                             take a unit newtype (Watts/Price/CoreHours) or add \
                             `// lint: raw-f64-ok <why>`",
                            p.name, p.ty.text
                        ),
                    );
                }
            }
            if let Some(ret) = &f.ret {
                if ret.is_bare_f64() && is_quantity_name(&f.name) {
                    self.push(
                        f.arrow_line,
                        Rule::UnitHygiene,
                        format!(
                            "pub fn `{}` returns bare `{}` for a quantity; \
                             return a unit newtype (Watts/Price/CoreHours) or add \
                             `// lint: raw-f64-ok <why>`",
                            f.name, ret.text
                        ),
                    );
                }
            }
        }
        for p in &f.params {
            self.check_type(&p.ty);
        }
        if let Some(ret) = &f.ret {
            self.check_type(ret);
        }
        if let Some(body) = &f.body {
            if self.rules.unit_hygiene && f.vis.is_public() {
                self.return_flow(f, body);
            }
            self.block(body);
        }
    }

    /// L1 v2: a `pub fn` with a bare-`f64` return whose returned value is a
    /// quantity-named local. The lexer engine only saw the signature; the
    /// AST sees the flow.
    fn return_flow(&mut self, f: &FnItem, body: &Block) {
        let Some(ret) = &f.ret else { return };
        if !ret.is_bare_f64() || is_quantity_name(&f.name) {
            return;
        }
        let mut locals: Vec<String> = Vec::new();
        collect_quantity_locals(body, &mut locals);
        if locals.is_empty() {
            return;
        }
        let mut returned: Vec<&Expr> = Vec::new();
        if let Some(Stmt::Expr { expr, semi: false }) = body.stmts.last() {
            returned.push(expr);
        }
        collect_returns(body, &mut returned);
        for e in returned {
            if let ExprKind::Path(segs) = &e.kind {
                if segs.len() == 1 && locals.contains(&segs[0]) {
                    self.push(
                        e.line,
                        Rule::UnitHygiene,
                        format!(
                            "pub fn `{}` returns the quantity-named local `{}` as bare \
                             `{}`; return a unit newtype (Watts/Price/CoreHours) or add \
                             `// lint: raw-f64-ok <why>`",
                            f.name, segs[0], ret.text
                        ),
                    );
                }
            }
        }
    }

    /// L4/L5 checks on type annotations (`HashMap` fields, `opt::` params).
    fn check_type(&mut self, ty: &TypeRepr) {
        if self.rules.determinism_hash {
            for name in ["HashMap", "HashSet"] {
                if contains_word(&ty.text, name) {
                    self.push(ty.line, Rule::Determinism, hash_message(name));
                }
            }
        }
        if self.rules.determinism_time {
            for name in ["Instant", "SystemTime"] {
                if contains_word(&ty.text, name) {
                    self.push(ty.line, Rule::Determinism, time_message(name));
                }
            }
        }
        if self.rules.layering {
            for m in SOLVER_MODULES {
                if contains_mod_prefix(&ty.text, m) {
                    self.push(ty.line, Rule::Layering, layering_message(m));
                }
            }
        }
    }

    fn block(&mut self, b: &Block) {
        for stmt in &b.stmts {
            match stmt {
                Stmt::Let {
                    pat,
                    ty,
                    init,
                    els,
                    line,
                } => {
                    if let Some(t) = ty {
                        self.check_type(t);
                    }
                    if self.rules.error_swallowing && pat.is_wild() {
                        if let Some(e) = init {
                            self.check_discarded(e, *line);
                        }
                    }
                    if let Some(e) = init {
                        self.expr(e);
                    }
                    if let Some(b) = els {
                        self.block(b);
                    }
                }
                Stmt::Expr { expr, semi } => {
                    if self.rules.error_swallowing && *semi {
                        if let ExprKind::MethodCall { method, .. } = &expr.kind {
                            if method == "ok" {
                                self.push(
                                    expr.line,
                                    Rule::ErrorSwallowing,
                                    "`.ok()` discards the error and the value is dropped; \
                                     handle or propagate the `Err`, or add \
                                     `// lint: allow(error-swallowing) <why>`"
                                        .into(),
                                );
                            }
                        }
                    }
                    self.expr(expr);
                }
                Stmt::Item(item) => self.items(std::slice::from_ref(item)),
            }
        }
    }

    /// L7: `let _ = <fallible>()` drops a `Result` on the floor.
    fn check_discarded(&mut self, init: &Expr, line: u32) {
        match &init.kind {
            ExprKind::Call(callee, _) => {
                if let ExprKind::Path(segs) = &callee.kind {
                    if let Some(name) = segs.last() {
                        if self.symtab.result_fns.contains(name) {
                            self.push(
                                line,
                                Rule::ErrorSwallowing,
                                format!(
                                    "`let _ =` silently discards the `Result` from `{name}`; \
                                     handle or propagate the error, or add \
                                     `// lint: allow(error-swallowing) <why>`"
                                ),
                            );
                        }
                    }
                }
            }
            ExprKind::MethodCall { method, .. } => {
                if self.symtab.result_methods.contains(method) {
                    self.push(
                        line,
                        Rule::ErrorSwallowing,
                        format!(
                            "`let _ =` silently discards the `Result` from `.{method}()`; \
                             handle or propagate the error, or add \
                             `// lint: allow(error-swallowing) <why>`"
                        ),
                    );
                } else if method == "ok" {
                    self.push(
                        line,
                        Rule::ErrorSwallowing,
                        "`let _ = ....ok()` discards both the value and the error; \
                         handle or propagate the `Err`, or add \
                         `// lint: allow(error-swallowing) <why>`"
                            .into(),
                    );
                }
            }
            _ => {}
        }
    }

    #[allow(clippy::too_many_lines)]
    fn expr(&mut self, e: &Expr) {
        self.check_expr(e);
        match &e.kind {
            ExprKind::Int(_)
            | ExprKind::Float(_)
            | ExprKind::Str
            | ExprKind::Char
            | ExprKind::Path(_)
            | ExprKind::MacroCall { .. }
            | ExprKind::Continue
            | ExprKind::Opaque => {}
            ExprKind::Unary(_, x)
            | ExprKind::Ref { expr: x, .. }
            | ExprKind::Try(x)
            | ExprKind::Field(x, _) => self.expr(x),
            ExprKind::Cast(x, ty) => {
                self.check_type(ty);
                self.expr(x);
            }
            ExprKind::Binary(_, a, b) | ExprKind::Index(a, b) => {
                self.expr(a);
                self.expr(b);
            }
            ExprKind::Call(c, args) => {
                self.expr(c);
                for a in args {
                    self.expr(a);
                }
            }
            ExprKind::MethodCall { recv, args, .. } => {
                self.expr(recv);
                for a in args {
                    self.expr(a);
                }
            }
            ExprKind::Closure { body, .. } => self.expr(body),
            ExprKind::If { cond, then, els } => {
                self.expr(cond);
                self.block(then);
                if let Some(x) = els {
                    self.expr(x);
                }
            }
            ExprKind::IfLet {
                scrutinee,
                then,
                els,
                ..
            } => {
                self.expr(scrutinee);
                self.block(then);
                if let Some(x) = els {
                    self.expr(x);
                }
            }
            ExprKind::Match { scrutinee, arms } => {
                self.expr(scrutinee);
                for arm in arms {
                    if let Some(g) = &arm.guard {
                        self.expr(g);
                    }
                    self.expr(&arm.body);
                }
            }
            ExprKind::While { cond, body } => {
                self.expr(cond);
                self.block(body);
            }
            ExprKind::Loop(b) | ExprKind::Block(b) => self.block(b),
            ExprKind::For { iter, body, .. } => {
                self.expr(iter);
                self.block(body);
            }
            ExprKind::Tuple(xs) | ExprKind::Array(xs) => {
                for x in xs {
                    self.expr(x);
                }
            }
            ExprKind::StructLit { fields, .. } => {
                for (_, x) in fields {
                    self.expr(x);
                }
            }
            ExprKind::Range { lo, hi } => {
                if let Some(x) = lo {
                    self.expr(x);
                }
                if let Some(x) = hi {
                    self.expr(x);
                }
            }
            ExprKind::Return(x) | ExprKind::Break(x) => {
                if let Some(x) = x {
                    self.expr(x);
                }
            }
        }
    }

    fn check_expr(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::MethodCall { method, recv, .. } => {
                if self.rules.nan_safety && method == "partial_cmp" {
                    self.push(
                        e.line,
                        Rule::NanSafety,
                        "`partial_cmp` on floats panics or mis-orders on NaN; \
                         use `f64::total_cmp` (or derive Ord on a newtype)"
                            .into(),
                    );
                }
                if self.rules.panic_freedom {
                    match method.as_str() {
                        "unwrap" => self.push(
                            e.line,
                            Rule::PanicFreedom,
                            "`.unwrap()` in library code; return a typed error, use \
                             `unwrap_or`/pattern matching, or add \
                             `// lint: allow(panic-freedom) <why>`"
                                .into(),
                        ),
                        "expect" => self.push(
                            e.line,
                            Rule::PanicFreedom,
                            "`.expect()` in library code; return a typed error or add \
                             `// lint: allow(panic-freedom) <why>`"
                                .into(),
                        ),
                        _ => {}
                    }
                }
                if self.rules.parallel_determinism {
                    if THREAD_INTROSPECTION.contains(&method.as_str()) {
                        self.push(e.line, Rule::ParallelDeterminism, thread_message(method));
                    }
                    if ORDER_SENSITIVE_REDUCERS.contains(&method.as_str())
                        && spine_has_par_source(recv)
                    {
                        self.push(
                            e.line,
                            Rule::ParallelDeterminism,
                            format!(
                                "order-sensitive reduction `.{method}()` over a parallel \
                                 iterator: float combine order follows the thread schedule; \
                                 collect in a fixed order and reduce sequentially, or add \
                                 `// lint: allow(parallel-determinism) <why>`"
                            ),
                        );
                    }
                }
            }
            ExprKind::Binary(op, a, b)
                if self.rules.nan_safety
                    && (op == "==" || op == "!=")
                    && (is_float_literal(a) || is_float_literal(b)) =>
            {
                self.push(
                    e.line,
                    Rule::NanSafety,
                    format!(
                        "direct `{op}` against a float literal is NaN-hostile and \
                         precision-fragile; compare through a unit newtype, use a \
                         tolerance, or add `// lint: allow(nan-safety) <why>`"
                    ),
                );
            }
            ExprKind::MacroCall { path } if self.rules.panic_freedom => {
                if let Some(name) = path.last() {
                    if PANIC_MACROS.contains(&name.as_str()) {
                        self.push(
                            e.line,
                            Rule::PanicFreedom,
                            format!(
                                "`{name}!` in library code; return a typed error or add \
                                 `// lint: allow(panic-freedom) <why>`"
                            ),
                        );
                    }
                }
            }
            ExprKind::Index(_, idx) if self.rules.panic_freedom => {
                // Full-range slicing `x[..]` cannot panic.
                let full_range = matches!(&idx.kind, ExprKind::Range { lo: None, hi: None });
                if !full_range {
                    self.push(
                        e.line,
                        Rule::PanicFreedom,
                        "indexing can panic; use `.get()`/`.get_mut()` or add \
                         `// lint: allow(panic-freedom) <why>`"
                            .into(),
                    );
                }
            }
            ExprKind::Path(segs) => {
                if self.rules.determinism_hash {
                    for name in ["HashMap", "HashSet"] {
                        if segs.iter().any(|s| s == name) {
                            self.push(e.line, Rule::Determinism, hash_message(name));
                        }
                    }
                }
                if self.rules.determinism_time {
                    for name in ["Instant", "SystemTime"] {
                        if segs.iter().any(|s| s == name) {
                            self.push(e.line, Rule::Determinism, time_message(name));
                        }
                    }
                }
                if self.rules.layering && segs.len() >= 2 {
                    for (i, s) in segs.iter().enumerate() {
                        if i + 1 < segs.len() && SOLVER_MODULES.contains(&s.as_str()) {
                            self.push(e.line, Rule::Layering, layering_message(s));
                        }
                    }
                }
                if self.rules.parallel_determinism {
                    let relaxed = segs.last().is_some_and(|s| s == "Relaxed")
                        && (segs.len() == 1 || segs.iter().any(|s| s == "Ordering"));
                    if relaxed {
                        self.push(
                            e.line,
                            Rule::ParallelDeterminism,
                            "`Ordering::Relaxed` gives no cross-thread ordering: values \
                             observed through it depend on the schedule; use `SeqCst` or add \
                             `// lint: allow(parallel-determinism) <why>`"
                                .into(),
                        );
                    }
                    for name in THREAD_INTROSPECTION {
                        if segs.iter().any(|s| s == name) {
                            self.push(e.line, Rule::ParallelDeterminism, thread_message(name));
                        }
                    }
                }
            }
            ExprKind::Match { arms, .. } if self.rules.error_swallowing => {
                for arm in arms {
                    if arm_swallows_error(arm) {
                        self.push(
                            arm.line,
                            Rule::ErrorSwallowing,
                            "match arm silently drops the error (`Err(_) => {}`); handle, \
                             log, or propagate it, or add \
                             `// lint: allow(error-swallowing) <why>`"
                                .into(),
                        );
                    }
                }
            }
            _ => {}
        }
    }
}

/// True for `1.0` and `-1.0` (the lexer-era rule missed the negated form).
fn is_float_literal(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Float(_) => true,
        ExprKind::Unary("-", inner) => matches!(inner.kind, ExprKind::Float(_)),
        _ => false,
    }
}

/// True when a method-call spine below a reducer reaches a `par_*` source
/// without an intervening order-restoring `collect`.
fn spine_has_par_source(recv: &Expr) -> bool {
    let mut cur = recv;
    loop {
        match &cur.kind {
            ExprKind::MethodCall { recv, method, .. } => {
                if method == "collect" {
                    return false;
                }
                if PAR_SOURCES.contains(&method.as_str()) {
                    return true;
                }
                cur = recv;
            }
            ExprKind::Try(x) | ExprKind::Ref { expr: x, .. } | ExprKind::Unary(_, x) => cur = x,
            _ => return false,
        }
    }
}

/// `Err(_) => {}` / `Err(_) => ()` — an arm that consumes an error and does
/// nothing at all.
fn arm_swallows_error(arm: &Arm) -> bool {
    let PatKind::TupleStruct { path, elems } = &arm.pat.kind else {
        return false;
    };
    if path.last().is_none_or(|s| s != "Err") {
        return false;
    }
    if !(elems.is_empty() || (elems.len() == 1 && elems[0].is_wild())) {
        return false;
    }
    if arm.guard.is_some() {
        return false;
    }
    match &arm.body.kind {
        ExprKind::Tuple(xs) => xs.is_empty(),
        ExprKind::Block(b) => b.stmts.is_empty(),
        _ => false,
    }
}

fn collect_quantity_locals(b: &Block, out: &mut Vec<String>) {
    for stmt in &b.stmts {
        match stmt {
            Stmt::Let { pat, .. } => {
                if let PatKind::Ident(name) = &pat.kind {
                    if is_quantity_name(name) {
                        out.push(name.clone());
                    }
                }
            }
            Stmt::Expr { expr, .. } => collect_quantity_locals_expr(expr, out),
            Stmt::Item(_) => {}
        }
    }
}

fn collect_quantity_locals_expr(e: &Expr, out: &mut Vec<String>) {
    match &e.kind {
        ExprKind::If { then, els, .. } | ExprKind::IfLet { then, els, .. } => {
            collect_quantity_locals(then, out);
            if let Some(x) = els {
                collect_quantity_locals_expr(x, out);
            }
        }
        ExprKind::While { body, .. } | ExprKind::For { body, .. } => {
            collect_quantity_locals(body, out);
        }
        ExprKind::Loop(b) | ExprKind::Block(b) => collect_quantity_locals(b, out),
        _ => {}
    }
}

/// Collects `return <expr>` expressions anywhere inside the block.
fn collect_returns<'a>(b: &'a Block, out: &mut Vec<&'a Expr>) {
    for stmt in &b.stmts {
        match stmt {
            Stmt::Let { init, els, .. } => {
                if let Some(e) = init {
                    collect_returns_expr(e, out);
                }
                if let Some(b) = els {
                    collect_returns(b, out);
                }
            }
            Stmt::Expr { expr, .. } => collect_returns_expr(expr, out),
            Stmt::Item(_) => {}
        }
    }
}

fn collect_returns_expr<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
    match &e.kind {
        ExprKind::Return(Some(x)) => out.push(x),
        ExprKind::If { cond, then, els } => {
            collect_returns_expr(cond, out);
            collect_returns(then, out);
            if let Some(x) = els {
                collect_returns_expr(x, out);
            }
        }
        ExprKind::IfLet {
            scrutinee,
            then,
            els,
            ..
        } => {
            collect_returns_expr(scrutinee, out);
            collect_returns(then, out);
            if let Some(x) = els {
                collect_returns_expr(x, out);
            }
        }
        ExprKind::Match { scrutinee, arms } => {
            collect_returns_expr(scrutinee, out);
            for arm in arms {
                collect_returns_expr(&arm.body, out);
            }
        }
        ExprKind::While { cond, body } => {
            collect_returns_expr(cond, out);
            collect_returns(body, out);
        }
        ExprKind::For { iter, body, .. } => {
            collect_returns_expr(iter, out);
            collect_returns(body, out);
        }
        ExprKind::Loop(b) | ExprKind::Block(b) => collect_returns(b, out),
        ExprKind::Binary(_, a, b) => {
            collect_returns_expr(a, out);
            collect_returns_expr(b, out);
        }
        ExprKind::Call(c, args) => {
            collect_returns_expr(c, out);
            for a in args {
                collect_returns_expr(a, out);
            }
        }
        ExprKind::MethodCall { recv, args, .. } => {
            collect_returns_expr(recv, out);
            for a in args {
                collect_returns_expr(a, out);
            }
        }
        ExprKind::Unary(_, x)
        | ExprKind::Ref { expr: x, .. }
        | ExprKind::Try(x)
        | ExprKind::Field(x, _)
        | ExprKind::Cast(x, _) => collect_returns_expr(x, out),
        _ => {}
    }
}

fn hash_message(name: &str) -> String {
    format!(
        "`{name}` iteration order is nondeterministic and this module feeds \
         report/CSV output; use `BTreeMap`/`BTreeSet` or a sorted Vec"
    )
}

fn time_message(name: &str) -> String {
    format!(
        "`{name}` reads the wall clock inside the simulator; simulated time \
         must come from the slot counter to keep runs reproducible"
    )
}

fn layering_message(name: &str) -> String {
    format!(
        "solver module `{name}::` referenced from the orchestration layer; \
         dispatch through the `mpr_core::mechanism::Mechanism` trait \
         instead, or add `// lint: allow(layering) <why>`"
    )
}

fn thread_message(name: &str) -> String {
    format!(
        "`{name}` makes behavior depend on the machine's parallelism, not the \
         input; derive work splits from input sizes, or add \
         `// lint: allow(parallel-determinism) <why>`"
    )
}

/// True when `text` contains `word` delimited by non-identifier characters
/// (type texts are normalized and spaceless, so substring checks need
/// boundaries: `HashMap` must not match `MyHashMapLike`).
fn contains_word(text: &str, word: &str) -> bool {
    let bytes = text.as_bytes();
    let mut from = 0;
    while let Some(pos) = text[from..].find(word) {
        let start = from + pos;
        let end = start + word.len();
        let pre = start == 0 || !is_ident_byte(bytes[start - 1]);
        let post = end == bytes.len() || !is_ident_byte(bytes[end]);
        if pre && post {
            return true;
        }
        from = end;
    }
    false
}

/// True when `text` contains `m::` with `m` at an identifier boundary
/// (`Vec<opt::OptJob>` hits, `ropt::x` does not).
fn contains_mod_prefix(text: &str, m: &str) -> bool {
    let needle = format!("{m}::");
    let bytes = text.as_bytes();
    let mut from = 0;
    while let Some(pos) = text[from..].find(&needle) {
        let start = from + pos;
        if start == 0 || !is_ident_byte(bytes[start - 1]) {
            return true;
        }
        from = start + needle.len();
    }
    false
}

fn is_ident_byte(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric()
}

// ---------------------------------------------------------------------------
// Token fallback over opaque regions (legacy lexer-era rules)
// ---------------------------------------------------------------------------

fn fallback_scan(relpath: &str, toks: &[Tok], rules: RuleSet, out: &mut Vec<Violation>) {
    if rules.unit_hygiene {
        fallback_unit_hygiene(relpath, toks, out);
    }
    if rules.nan_safety {
        fallback_nan_safety(relpath, toks, out);
    }
    if rules.panic_freedom {
        fallback_panic_freedom(relpath, toks, out);
    }
    if rules.determinism_time || rules.determinism_hash {
        fallback_determinism(relpath, toks, rules, out);
    }
    if rules.layering {
        fallback_layering(relpath, toks, out);
    }
    if rules.parallel_determinism {
        fallback_parallel(relpath, toks, out);
    }
}

fn fallback_unit_hygiene(relpath: &str, toks: &[Tok], out: &mut Vec<Violation>) {
    let mut i = 0;
    while i < toks.len() {
        if toks[i].kind == TokKind::Ident && toks[i].text == "fn" && is_pub_fn(toks, i) {
            let Some(name_idx) = next_ident(toks, i + 1) else {
                i += 1;
                continue;
            };
            let fn_name = toks[name_idx].text.clone();
            // Skip generics to the parameter list.
            let mut j = name_idx + 1;
            if j < toks.len() && toks[j].text == "<" {
                j = match_angle(toks, j) + 1;
            }
            if j >= toks.len() || toks[j].text != "(" {
                i = j;
                continue;
            }
            let close = match_paren(toks, j);
            check_params(relpath, toks, j + 1, close, out);
            // Return type: `-> f64` on a quantity-named fn.
            let mut k = close + 1;
            if k < toks.len() && toks[k].text == "->" {
                let end = signature_end(toks, k + 1);
                let ret = type_text(&toks[k + 1..end.min(toks.len())]);
                if is_bare_f64(&ret) && is_quantity_name(&fn_name) {
                    out.push(Violation {
                        file: relpath.to_string(),
                        line: toks[k].line,
                        rule: Rule::UnitHygiene,
                        message: format!(
                            "pub fn `{fn_name}` returns bare `{ret}` for a quantity; \
                             return a unit newtype (Watts/Price/CoreHours) or add \
                             `// lint: raw-f64-ok <why>`"
                        ),
                    });
                }
                k = end;
            }
            i = k;
        } else {
            i += 1;
        }
    }
}

/// True when the `fn` at `i` is `pub` (including `pub(crate)` etc.),
/// allowing `const`/`async`/`unsafe`/`extern "C"` qualifiers between.
fn is_pub_fn(toks: &[Tok], fn_idx: usize) -> bool {
    let mut j = fn_idx;
    while j > 0 {
        j -= 1;
        match toks[j].text.as_str() {
            "const" | "async" | "unsafe" | "extern" => continue,
            ")" => {
                // Possible `pub(crate)` restriction.
                let mut depth = 0i32;
                let mut k = j;
                loop {
                    match toks[k].text.as_str() {
                        ")" => depth += 1,
                        "(" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    if k == 0 {
                        return false;
                    }
                    k -= 1;
                }
                return k > 0 && toks[k - 1].text == "pub";
            }
            "pub" => return true,
            _ => {
                if toks[j].kind == TokKind::Str {
                    continue; // extern "C"
                }
                return false;
            }
        }
    }
    false
}

fn next_ident(toks: &[Tok], from: usize) -> Option<usize> {
    toks[from..]
        .iter()
        .position(|t| t.kind == TokKind::Ident)
        .map(|p| from + p)
}

/// Index of the `>` closing the `<` at `open` (type position only;
/// `->`/`=>`/`>=`/`<=` are single tokens so they cannot confuse the count).
fn match_angle(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "<" => depth += 1,
            ">" => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
    }
    toks.len().saturating_sub(1)
}

/// Scans a parameter list for quantity-named params typed as bare f64.
fn check_params(relpath: &str, toks: &[Tok], start: usize, close: usize, out: &mut Vec<Violation>) {
    let mut j = start;
    while j < close {
        // One parameter: pattern tokens, `:`, type tokens up to a top-level
        // comma or the closing paren.
        let mut colon = None;
        let mut depth = 0i32;
        let mut end = close;
        let mut k = j;
        while k < close {
            match toks[k].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "<" => depth += 1,
                ">" => depth -= 1,
                ":" if depth == 0 && colon.is_none() => colon = Some(k),
                "," if depth == 0 => {
                    end = k;
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        if let Some(c) = colon {
            let name = toks[j..c]
                .iter()
                .rev()
                .find(|t| t.kind == TokKind::Ident)
                .map(|t| t.text.clone())
                .unwrap_or_default();
            let ty = type_text(&toks[c + 1..end]);
            if is_bare_f64(&ty) && is_quantity_name(&name) {
                out.push(Violation {
                    file: relpath.to_string(),
                    line: toks[c].line,
                    rule: Rule::UnitHygiene,
                    message: format!(
                        "pub fn parameter `{name}: {ty}` is a bare float quantity; \
                         take a unit newtype (Watts/Price/CoreHours) or add \
                         `// lint: raw-f64-ok <why>`"
                    ),
                });
            }
        }
        j = end + 1;
    }
}

/// End of a signature after `->`: the body `{`, a `;`, or a `where` clause.
fn signature_end(toks: &[Tok], from: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(from) {
        match t.text.as_str() {
            "(" | "[" | "<" => depth += 1,
            ")" | "]" | ">" => depth -= 1,
            "{" | ";" if depth == 0 => return j,
            "where" if depth == 0 => return j,
            _ => {}
        }
    }
    toks.len()
}

fn type_text(toks: &[Tok]) -> String {
    toks.iter().map(|t| t.text.as_str()).collect()
}

/// Types the L1 rule flags: `f64` at top level, optionally behind a
/// reference or `Option`.
fn is_bare_f64(ty: &str) -> bool {
    matches!(ty, "f64" | "&f64" | "&mutf64" | "Option<f64>")
}

fn fallback_nan_safety(relpath: &str, toks: &[Tok], out: &mut Vec<Violation>) {
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Ident && t.text == "partial_cmp" {
            out.push(Violation {
                file: relpath.to_string(),
                line: t.line,
                rule: Rule::NanSafety,
                message: "`partial_cmp` on floats panics or mis-orders on NaN; \
                          use `f64::total_cmp` (or derive Ord on a newtype)"
                    .into(),
            });
        }
        if t.kind == TokKind::Punct && (t.text == "==" || t.text == "!=") {
            let float_lhs = i > 0 && toks[i - 1].kind == TokKind::Float;
            let float_rhs = i + 1 < toks.len() && toks[i + 1].kind == TokKind::Float;
            if float_lhs || float_rhs {
                out.push(Violation {
                    file: relpath.to_string(),
                    line: t.line,
                    rule: Rule::NanSafety,
                    message: format!(
                        "direct `{}` against a float literal is NaN-hostile and \
                         precision-fragile; compare through a unit newtype, use a \
                         tolerance, or add `// lint: allow(nan-safety) <why>`",
                        t.text
                    ),
                });
            }
        }
    }
}

fn fallback_panic_freedom(relpath: &str, toks: &[Tok], out: &mut Vec<Violation>) {
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident && !(t.kind == TokKind::Punct && t.text == "[") {
            continue;
        }
        let prev_dot = i > 0 && toks[i - 1].text == ".";
        match t.text.as_str() {
            "unwrap" if prev_dot => out.push(Violation {
                file: relpath.to_string(),
                line: t.line,
                rule: Rule::PanicFreedom,
                message: "`.unwrap()` in library code; return a typed error, use \
                          `unwrap_or`/pattern matching, or add \
                          `// lint: allow(panic-freedom) <why>`"
                    .into(),
            }),
            "expect" if prev_dot => out.push(Violation {
                file: relpath.to_string(),
                line: t.line,
                rule: Rule::PanicFreedom,
                message: "`.expect()` in library code; return a typed error or add \
                          `// lint: allow(panic-freedom) <why>`"
                    .into(),
            }),
            name if PANIC_MACROS.contains(&name)
                && i + 1 < toks.len()
                && toks[i + 1].text == "!" =>
            {
                out.push(Violation {
                    file: relpath.to_string(),
                    line: t.line,
                    rule: Rule::PanicFreedom,
                    message: format!(
                        "`{name}!` in library code; return a typed error or add \
                         `// lint: allow(panic-freedom) <why>`"
                    ),
                });
            }
            "[" => {
                // Indexing expression: `[` directly after an expression tail
                // (ident, `)`, or `]`), not an attribute or macro bracket.
                if i == 0 {
                    continue;
                }
                let p = &toks[i - 1];
                let expr_tail = matches!(p.kind, TokKind::Ident) && !is_keyword(&p.text)
                    || p.text == ")"
                    || p.text == "]";
                if !expr_tail {
                    continue;
                }
                // Full-range slicing `x[..]` cannot panic.
                let inner = &toks[i + 1..match_bracket(toks, i).min(toks.len())];
                if inner.len() == 1 && inner[0].text == ".." {
                    continue;
                }
                out.push(Violation {
                    file: relpath.to_string(),
                    line: t.line,
                    rule: Rule::PanicFreedom,
                    message: "indexing can panic; use `.get()`/`.get_mut()` or add \
                              `// lint: allow(panic-freedom) <why>`"
                        .into(),
                });
            }
            _ => {}
        }
    }
}

/// Index of the `)` matching the `(` at `open`.
fn match_paren(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
    }
    toks.len().saturating_sub(1)
}

/// Keywords that can directly precede `[` without forming an indexing
/// expression (`let [a, b] = ...`, `for x in [..]`, `return [..]`, etc.).
fn is_keyword(t: &str) -> bool {
    matches!(
        t,
        "let"
            | "in"
            | "return"
            | "match"
            | "if"
            | "else"
            | "mut"
            | "ref"
            | "move"
            | "box"
            | "break"
            | "const"
            | "static"
            | "as"
    )
}

fn fallback_determinism(relpath: &str, toks: &[Tok], rules: RuleSet, out: &mut Vec<Violation>) {
    for t in toks {
        if t.kind != TokKind::Ident {
            continue;
        }
        if rules.determinism_hash && (t.text == "HashMap" || t.text == "HashSet") {
            out.push(Violation {
                file: relpath.to_string(),
                line: t.line,
                rule: Rule::Determinism,
                message: hash_message(&t.text),
            });
        }
        if rules.determinism_time && (t.text == "Instant" || t.text == "SystemTime") {
            out.push(Violation {
                file: relpath.to_string(),
                line: t.line,
                rule: Rule::Determinism,
                message: time_message(&t.text),
            });
        }
    }
}

fn fallback_layering(relpath: &str, toks: &[Tok], out: &mut Vec<Violation>) {
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Ident
            && SOLVER_MODULES.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.text == "::")
        {
            out.push(Violation {
                file: relpath.to_string(),
                line: t.line,
                rule: Rule::Layering,
                message: layering_message(&t.text),
            });
        }
    }
}

/// L8 fallback: `Ordering::Relaxed` spelled out inside opaque regions.
fn fallback_parallel(relpath: &str, toks: &[Tok], out: &mut Vec<Violation>) {
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Ident
            && t.text == "Relaxed"
            && i >= 2
            && toks[i - 1].text == "::"
            && toks[i - 2].text == "Ordering"
        {
            out.push(Violation {
                file: relpath.to_string(),
                line: t.line,
                rule: Rule::ParallelDeterminism,
                message: "`Ordering::Relaxed` gives no cross-thread ordering: values \
                          observed through it depend on the schedule; use `SeqCst` or add \
                          `// lint: allow(parallel-determinism) <why>`"
                    .into(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_rules() -> RuleSet {
        RuleSet {
            unit_hygiene: true,
            nan_safety: true,
            panic_freedom: true,
            determinism_time: true,
            determinism_hash: true,
            layering: true,
            unit_flow: true,
            error_swallowing: true,
            parallel_determinism: true,
        }
    }

    fn run(src: &str) -> FileAnalysis {
        analyze_source_with("crates/core/src/x.rs", src, all_rules())
    }

    #[test]
    fn scope_policy_matches_layout() {
        let core = RuleSet::for_path("crates/core/src/mclr.rs");
        assert!(core.unit_hygiene && core.nan_safety && core.panic_freedom);
        assert!(core.unit_flow && core.error_swallowing && core.parallel_determinism);
        // Core hosts the solvers, so L5 cannot apply there.
        assert!(!core.layering);
        // units.rs is the sanctioned raw-f64 crossing point.
        let units = RuleSet::for_path("crates/core/src/units.rs");
        assert!(!units.unit_flow && units.unit_hygiene);
        let sim = RuleSet::for_path("crates/sim/src/engine.rs");
        assert!(sim.unit_hygiene && sim.determinism_time && sim.panic_freedom);
        assert!(sim.layering && sim.unit_flow && sim.error_swallowing);
        let report = RuleSet::for_path("crates/sim/src/report.rs");
        assert!(report.determinism_hash);
        // The durability layer is panic-free and codec-deterministic
        // throughout; the sim-side ledger codec joins the hash scope.
        let durable = RuleSet::for_path("crates/durable/src/supervisor.rs");
        assert!(durable.panic_freedom && durable.determinism_hash);
        assert!(durable.error_swallowing && !durable.unit_hygiene);
        let ledger = RuleSet::for_path("crates/sim/src/ledger.rs");
        assert!(ledger.determinism_hash && ledger.panic_freedom);
        let wal = RuleSet::for_path("crates/durable/src/wal.rs");
        assert!(wal.determinism_hash);
        // v2 widened the harness crates into the panic/determinism scopes.
        let chaos = RuleSet::for_path("crates/chaos/src/campaign.rs");
        assert!(chaos.panic_freedom && chaos.determinism_time);
        assert!(chaos.parallel_determinism && !chaos.error_swallowing);
        let grid = RuleSet::for_path("crates/grid/src/lib.rs");
        assert!(grid.panic_freedom && grid.determinism_time);
        let cli = RuleSet::for_path("crates/cli/src/main.rs");
        assert!(!cli.nan_safety && !cli.unit_hygiene);
        assert!(cli.layering && !cli.parallel_determinism);
        let experiments = RuleSet::for_path("crates/experiments/src/bin/fig10.rs");
        assert!(!experiments.layering && !experiments.parallel_determinism);
        let tests = RuleSet::for_path("crates/core/tests/integration.rs");
        assert!(!tests.nan_safety);
    }

    #[test]
    fn layering_flags_direct_solver_calls() {
        let a = run("use mpr_core::opt;\n\
             fn f() { let _ = opt::solve(&[], t, opt::OptMethod::Auto); }\n\
             fn g() { let _ = mpr_core::eql::reduce(&[], t); }\n\
             fn h() { let _ = vcg::auction(&[], t, m); }\n\
             fn i() { let _ = mclr::clear_best_effort(&[], t); }\n");
        let l5: Vec<_> = a
            .violations
            .iter()
            .filter(|v| v.rule == Rule::Layering)
            .collect();
        // Line 2's two `opt::` hits dedupe to one, then eql, vcg, mclr.
        // `use mpr_core::opt;` alone is not a path into the module.
        assert_eq!(l5.len(), 4, "{l5:?}");
        assert!(l5.iter().all(|v| v.message.contains("mechanism")));
    }

    #[test]
    fn layering_ignores_trait_dispatch_and_plain_idents() {
        let a = run("use mpr_core::{Mechanism, OptMechanism, OptMethod};\n\
             fn f() { let mut m = OptMechanism::strict(OptMethod::Auto); \
             let _ = m.clear(&inst, t); }\n\
             fn g(opt: Option<u32>) -> Option<u32> { opt }\n");
        let l5 = a
            .violations
            .iter()
            .filter(|v| v.rule == Rule::Layering)
            .count();
        assert_eq!(l5, 0, "{:?}", a.violations);
    }

    #[test]
    fn layering_exemption_is_honored() {
        let a = run(
            "// lint: allow(layering) — migration shim, remove with PR 5\n\
             fn f() { let _ = eql::reduce(&[], t); }\n",
        );
        assert!(a.violations.is_empty(), "{:?}", a.violations);
        assert_eq!(a.exemptions_used.len(), 1);
        assert_eq!(a.exemptions_used[0].rule, Rule::Layering);
    }

    #[test]
    fn pub_fn_f64_params_and_returns_flagged() {
        let a = run("pub fn set_budget(budget_watts: f64) {}\n\
                     pub fn target_watts(&self) -> f64 { 0.0 }\n\
                     pub fn helper(x: f64) -> f64 { x }\n\
                     fn private_power(power: f64) {}\n");
        let l1: Vec<_> = a
            .violations
            .iter()
            .filter(|v| v.rule == Rule::UnitHygiene)
            .collect();
        // Param on line 1, return on line 2; `helper`'s non-quantity names
        // and the private fn are not flagged.
        assert_eq!(l1.len(), 2, "{l1:?}");
        assert_eq!(l1[0].line, 1);
        assert_eq!(l1[1].line, 2);
    }

    #[test]
    fn return_flow_catches_quantity_local_escaping_raw() {
        // The lexer engine could not see this: the fn name is neutral, the
        // signature is neutral, but the returned local is a quantity.
        let a = run("pub fn compute(&self) -> f64 {\n\
                         let watts = self.base * 2.0;\n\
                         watts\n\
                     }\n");
        let l1: Vec<_> = a
            .violations
            .iter()
            .filter(|v| v.rule == Rule::UnitHygiene)
            .collect();
        assert_eq!(l1.len(), 1, "{l1:?}");
        assert_eq!(l1[0].line, 3);
        assert!(l1[0].message.contains("watts"), "{}", l1[0].message);
        // Explicit `return` form is caught too.
        let b = run("pub fn compute() -> f64 {\n\
                         let budget = 1.0;\n\
                         if cond { return budget; }\n\
                         0.0\n\
                     }\n");
        assert!(
            b.violations
                .iter()
                .any(|v| v.rule == Rule::UnitHygiene && v.line == 3),
            "{:?}",
            b.violations
        );
    }

    #[test]
    fn test_regions_are_exempt() {
        let a = run("pub fn ok() {}\n\
                     #[cfg(test)]\n\
                     mod tests {\n\
                         fn f(v: Vec<f64>) { let _ = v[0].partial_cmp(&1.0).unwrap(); }\n\
                     }\n");
        assert!(a.violations.is_empty(), "{:?}", a.violations);
    }

    #[test]
    fn exemption_suppresses_and_is_counted() {
        let a = run("pub fn legacy(power_w: f64) {} // lint: raw-f64-ok FFI boundary\n");
        assert!(a.violations.is_empty(), "{:?}", a.violations);
        assert_eq!(a.exemptions_used.len(), 1);
        assert_eq!(a.exemptions_used[0].reason, "FFI boundary");
    }

    #[test]
    fn exemption_without_reason_is_a_violation() {
        let a = run("pub fn legacy(power_w: f64) {} // lint: raw-f64-ok\n");
        // Both the original violation and the meta-violation surface: an
        // unjustified exemption suppresses nothing.
        assert_eq!(a.violations.len(), 2, "{:?}", a.violations);
        assert!(a.violations.iter().any(|v| v.rule == Rule::Exemption));
        assert!(a.violations.iter().any(|v| v.rule == Rule::UnitHygiene));
    }

    #[test]
    fn stale_exemption_is_a_violation() {
        // The justified exemption no longer suppresses anything: the code
        // below it is clean. That is a violation, not a freebie.
        let a = run(
            "// lint: allow(panic-freedom) historical, slice was indexed here\n\
                     pub fn f(v: &[u32]) -> Option<u32> { v.first().copied() }\n",
        );
        assert_eq!(a.violations.len(), 1, "{:?}", a.violations);
        assert_eq!(a.violations[0].rule, Rule::Exemption);
        assert_eq!(a.violations[0].line, 1);
        assert!(a.violations[0].message.contains("stale"));
    }

    #[test]
    fn comment_above_style_applies_to_next_line() {
        let a = run(
            "// lint: allow(panic-freedom) — slice proven nonempty above\n\
                     pub fn f(v: &[u32]) -> u32 { v[0] }\n",
        );
        assert!(a.violations.is_empty(), "{:?}", a.violations);
        assert_eq!(a.exemptions_used.len(), 1);
    }

    #[test]
    fn indexing_heuristics() {
        let a = run(
            "fn f(v: &[u32], i: usize) { let _ = v[i]; let _ = &v[..]; }\n\
                     #[derive(Debug)]\nstruct S;\n\
                     fn g() { let [a, b] = [1, 2]; let _ = (a, b); }\n",
        );
        let l3: Vec<_> = a
            .violations
            .iter()
            .filter(|v| v.rule == Rule::PanicFreedom)
            .collect();
        assert_eq!(l3.len(), 1, "{l3:?}");
        assert_eq!(l3[0].line, 1);
    }

    #[test]
    fn determinism_patterns() {
        let a = run("use std::time::Instant;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); let _ = m; }\n");
        let l4 = a
            .violations
            .iter()
            .filter(|v| v.rule == Rule::Determinism)
            .count();
        // Instant plus HashMap; the two same-line HashMap hits dedupe.
        assert_eq!(l4, 2);
    }

    #[test]
    fn negated_float_equality_is_flagged() {
        // The lexer engine missed `x == -1.0` (the token before the literal
        // is `-`); the AST sees the negation.
        let a = run("fn f(x: f64) -> bool { x == -1.0 }\n");
        assert_eq!(
            a.violations
                .iter()
                .filter(|v| v.rule == Rule::NanSafety)
                .count(),
            1,
            "{:?}",
            a.violations
        );
    }

    #[test]
    fn error_swallowing_patterns() {
        let src = "\
            struct Wal;\n\
            impl Wal {\n\
                pub fn sync(&mut self) -> Result<(), Corruption> { Ok(()) }\n\
            }\n\
            pub fn persist() -> Result<(), Corruption> { Ok(()) }\n\
            fn f(w: &mut Wal) {\n\
                let _ = w.sync();\n\
                let _ = persist();\n\
                w.sync().ok();\n\
                match w.sync() {\n\
                    Ok(()) => {}\n\
                    Err(_) => {}\n\
                }\n\
            }\n";
        let a = run(src);
        let l7: Vec<u32> = a
            .violations
            .iter()
            .filter(|v| v.rule == Rule::ErrorSwallowing)
            .map(|v| v.line)
            .collect();
        // let _ = method (7), let _ = fn (8), dropped .ok() (9),
        // empty Err arm (12).
        assert_eq!(l7, vec![7, 8, 9, 12], "{:?}", a.violations);
    }

    #[test]
    fn error_swallowing_ignores_handled_results() {
        let src = "\
            pub fn persist() -> Result<(), Corruption> { Ok(()) }\n\
            fn f() -> Result<(), Corruption> {\n\
                persist()?;\n\
                let r = persist();\n\
                match persist() {\n\
                    Ok(()) => {}\n\
                    Err(e) => log(e),\n\
                }\n\
                r\n\
            }\n";
        let a = run(src);
        assert!(
            a.violations.iter().all(|v| v.rule != Rule::ErrorSwallowing),
            "{:?}",
            a.violations
        );
    }

    #[test]
    fn parallel_determinism_patterns() {
        let src = "\
            fn f(v: &[f64]) -> f64 {\n\
                let x = v.par_iter().map(|x| x * 2.0).sum();\n\
                let _ = flag.load(Ordering::Relaxed);\n\
                let n = rayon::current_num_threads();\n\
                let safe: Vec<f64> = v.par_iter().map(|x| x + 1.0).collect();\n\
                let s: f64 = safe.iter().sum();\n\
                x + s + n as f64\n\
            }\n";
        let a = run(src);
        let l8: Vec<u32> = a
            .violations
            .iter()
            .filter(|v| v.rule == Rule::ParallelDeterminism)
            .map(|v| v.line)
            .collect();
        // par sum (2), Relaxed (3), thread count (4); the collect-then-
        // sequential-sum pattern on lines 5-6 is the sanctioned fix.
        assert_eq!(l8, vec![2, 3, 4], "{:?}", a.violations);
    }
}
