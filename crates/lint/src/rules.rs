//! The five rule families (L1–L5) plus exemption handling.
//!
//! Each rule walks the token stream from [`crate::lexer`] looking for a
//! pattern; hits inside `#[cfg(test)]` / `#[test]` regions are dropped, and
//! hits covered by an audited `// lint:` exemption comment are counted but
//! not reported.

use crate::lexer::{lex, ExemptionComment, Lexed, Tok, TokKind};

/// Rule families enforced by the lint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// L1 — public signatures must use unit newtypes, not bare `f64`.
    UnitHygiene,
    /// L2 — no NaN-unsafe float comparisons (`partial_cmp`, float `==`).
    NanSafety,
    /// L3 — no `unwrap`/`expect`/`panic!`/indexing in core library code.
    PanicFreedom,
    /// L4 — no nondeterministic iteration or wall-clock in sim/report code.
    Determinism,
    /// L5 — the sim and CLI layers may not call solver modules (`mclr`,
    /// `opt`, `eql`, `vcg`) directly; they dispatch through the
    /// `mpr_core::mechanism` trait.
    Layering,
    /// Meta — malformed or unjustified exemption comments.
    Exemption,
}

impl Rule {
    /// Stable kebab-case name used in diagnostics and `allow(...)` comments.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Rule::UnitHygiene => "unit-hygiene",
            Rule::NanSafety => "nan-safety",
            Rule::PanicFreedom => "panic-freedom",
            Rule::Determinism => "determinism",
            Rule::Layering => "layering",
            Rule::Exemption => "exemption",
        }
    }

    /// Parses a kebab-case rule name.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Rule> {
        match name {
            "unit-hygiene" => Some(Rule::UnitHygiene),
            "nan-safety" => Some(Rule::NanSafety),
            "panic-freedom" => Some(Rule::PanicFreedom),
            "determinism" => Some(Rule::Determinism),
            "layering" => Some(Rule::Layering),
            _ => None,
        }
    }
}

impl std::fmt::Display for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One diagnostic produced by the lint.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// Rule family that fired.
    pub rule: Rule,
    /// Human-readable description with a suggested fix.
    pub message: String,
}

/// An exemption that matched a violation and suppressed it.
#[derive(Debug, Clone)]
pub struct UsedExemption {
    /// Workspace-relative path of the exempted file.
    pub file: String,
    /// 1-based line of the suppressed violation.
    pub line: u32,
    /// Rule family that was suppressed.
    pub rule: Rule,
    /// Justification text from the comment.
    pub reason: String,
}

/// Which rule families apply to a file, derived from its workspace path.
#[derive(Debug, Clone, Copy, Default)]
pub struct RuleSet {
    /// Apply L1 (unit hygiene on `pub fn` signatures).
    pub unit_hygiene: bool,
    /// Apply L2 (NaN-safe comparisons).
    pub nan_safety: bool,
    /// Apply L3 (panic freedom).
    pub panic_freedom: bool,
    /// Apply L4 time-source checks (`Instant::now`, `SystemTime`).
    pub determinism_time: bool,
    /// Apply L4 hash-iteration checks (report/CSV modules).
    pub determinism_hash: bool,
    /// Apply L5 (no direct solver-module calls from the sim/CLI layer).
    pub layering: bool,
}

impl RuleSet {
    /// Scope policy for a workspace-relative path like
    /// `crates/core/src/mclr.rs`. Files outside `crates/*/src` get no rules.
    #[must_use]
    pub fn for_path(relpath: &str) -> RuleSet {
        let mut parts = relpath.split('/');
        if parts.next() != Some("crates") {
            return RuleSet::default();
        }
        let Some(krate) = parts.next() else {
            return RuleSet::default();
        };
        if parts.next() != Some("src") {
            // Integration tests, benches, fixtures: exempt.
            return RuleSet::default();
        }
        let file = relpath.rsplit('/').next().unwrap_or("");
        RuleSet {
            // Unit-typed quantities are enforced where the paper's quantities
            // live: the market engine, the power layer, and the simulator.
            unit_hygiene: matches!(krate, "core" | "power" | "sim"),
            // NaN-safety applies to all library crates; binaries (cli,
            // experiments, bench drivers) are presentation code.
            nan_safety: !matches!(krate, "cli" | "experiments" | "bench" | "lint"),
            // Panic-freedom is the strictest tier: the crates whose code
            // runs inside every simulation slot — the solvers, the power
            // layer, the simulation engine itself (the chaos campaign's
            // no-panic oracle treats any engine panic as a safety failure),
            // and the crash-durability layer, which must stay total even
            // over a faulty disk (a panic during recovery would turn a
            // survivable storage fault into an outage).
            panic_freedom: matches!(krate, "core" | "power" | "sim" | "durable"),
            determinism_time: krate == "sim",
            // Hash-iteration order must not leak into anything persisted or
            // compared bit-for-bit: reports, CSV emitters, and the ledger
            // codec (WAL replay equivalence is checked to the bit).
            determinism_hash: file.contains("report")
                || file.contains("csv")
                || file.contains("ledger")
                || file.contains("wal")
                || krate == "durable",
            // The mechanism abstraction is the only sanctioned route from
            // the orchestration layers down to the solvers (DESIGN.md §11).
            layering: matches!(krate, "sim" | "cli"),
        }
    }
}

/// Outcome of analyzing one file.
#[derive(Debug, Default)]
pub struct FileAnalysis {
    /// Violations that survived test-region and exemption filtering.
    pub violations: Vec<Violation>,
    /// Exemptions that suppressed a violation.
    pub exemptions_used: Vec<UsedExemption>,
}

/// Analyzes one source file under the rule scopes for `relpath`.
#[must_use]
pub fn analyze_source(relpath: &str, src: &str) -> FileAnalysis {
    analyze_source_with(relpath, src, RuleSet::for_path(relpath))
}

/// Analyzes one source file with an explicit rule set (used by fixture
/// tests to exercise rules regardless of path).
#[must_use]
pub fn analyze_source_with(relpath: &str, src: &str, rules: RuleSet) -> FileAnalysis {
    let lexed = lex(src);
    let test_regions = test_regions(&lexed.toks);
    let parsed: Vec<ParsedExemption> = lexed.exemptions.iter().map(parse_exemption).collect();

    let mut raw: Vec<Violation> = Vec::new();
    if rules.unit_hygiene {
        unit_hygiene(relpath, &lexed, &mut raw);
    }
    if rules.nan_safety {
        nan_safety(relpath, &lexed, &mut raw);
    }
    if rules.panic_freedom {
        panic_freedom(relpath, &lexed, &mut raw);
    }
    if rules.determinism_time || rules.determinism_hash {
        determinism(relpath, &lexed, rules, &mut raw);
    }
    if rules.layering {
        layering(relpath, &lexed, &mut raw);
    }

    // Drop test-region hits, dedupe, then apply exemptions.
    raw.retain(|v| !in_regions(&test_regions, v.line));
    raw.sort_by(|a, b| (a.line, a.rule.name()).cmp(&(b.line, b.rule.name())));
    raw.dedup_by(|a, b| a.line == b.line && a.rule == b.rule);

    let mut out = FileAnalysis::default();
    for v in raw {
        // An exemption covers the violation line itself or the line below
        // the comment (comment-above style).
        let hit = parsed
            .iter()
            .find(|e| e.rule == Some(v.rule) && (e.line == v.line || e.line + 1 == v.line));
        match hit {
            Some(e) if !e.reason.is_empty() => out.exemptions_used.push(UsedExemption {
                file: v.file,
                line: v.line,
                rule: v.rule,
                reason: e.reason.clone(),
            }),
            _ => out.violations.push(v),
        }
    }

    // Malformed exemption comments are violations in their own right: an
    // unparseable rule name or a missing justification silently grants
    // nothing, which is worse than failing loudly.
    for e in &parsed {
        if in_regions(&test_regions, e.line) {
            continue;
        }
        if e.rule.is_none() {
            out.violations.push(Violation {
                file: relpath.to_string(),
                line: e.line,
                rule: Rule::Exemption,
                message: format!(
                    "unrecognized lint exemption `{}`; use `raw-f64-ok` or `allow(<rule>)`",
                    e.raw
                ),
            });
        } else if e.reason.is_empty() {
            out.violations.push(Violation {
                file: relpath.to_string(),
                line: e.line,
                rule: Rule::Exemption,
                message: "lint exemption has no justification; add one after the rule".into(),
            });
        }
    }
    out.violations
        .sort_by(|a, b| (a.line, a.rule.name()).cmp(&(b.line, b.rule.name())));
    out
}

/// Parsed form of a `// lint: ...` comment.
struct ParsedExemption {
    line: u32,
    rule: Option<Rule>,
    reason: String,
    raw: String,
}

fn parse_exemption(c: &ExemptionComment) -> ParsedExemption {
    let body = c.body.trim();
    let (rule, rest) = if let Some(rest) = body.strip_prefix("raw-f64-ok") {
        (Some(Rule::UnitHygiene), rest)
    } else if let Some(after) = body.strip_prefix("allow(") {
        match after.split_once(')') {
            Some((name, rest)) => (Rule::from_name(name.trim()), rest),
            None => (None, ""),
        }
    } else {
        (None, "")
    };
    let reason = rest
        .trim_start_matches([' ', '—', '-', ':', ','])
        .trim()
        .to_string();
    ParsedExemption {
        line: c.line,
        rule,
        reason,
        raw: body.to_string(),
    }
}

/// Line ranges belonging to `#[cfg(test)]` / `#[test]` / `#[bench]` items.
fn test_regions(toks: &[Tok]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if is_test_attr(toks, i) {
            let attr_line = toks[i].line;
            // Skip this attribute and any stacked ones, then span the item.
            let mut j = skip_attr(toks, i);
            while j < toks.len() && toks[j].text == "#" {
                j = skip_attr(toks, j);
            }
            // Find the item body: first `{` at paren depth 0, or a `;`.
            let mut paren = 0i32;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "(" | "[" => paren += 1,
                    ")" | "]" => paren -= 1,
                    "{" if paren == 0 => {
                        let close = match_brace(toks, j);
                        regions.push((attr_line, toks[close.min(toks.len() - 1)].line));
                        i = close;
                        break;
                    }
                    ";" if paren == 0 => {
                        regions.push((attr_line, toks[j].line));
                        i = j;
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        i += 1;
    }
    regions
}

/// True when tokens at `i` start `#[test]`, `#[bench]`, or an attribute
/// whose argument list mentions `test` (covers `#[cfg(test)]`,
/// `#[cfg(any(test, ...))]`).
fn is_test_attr(toks: &[Tok], i: usize) -> bool {
    if toks[i].text != "#" || i + 1 >= toks.len() || toks[i + 1].text != "[" {
        return false;
    }
    let end = match_bracket(toks, i + 1);
    let inner = &toks[i + 2..end.min(toks.len())];
    match inner.first().map(|t| t.text.as_str()) {
        Some("test" | "bench") => inner.len() == 1,
        Some("cfg") => inner.iter().any(|t| t.text == "test"),
        _ => false,
    }
}

/// Index just past a `#[...]` attribute starting at the `#` at `i`.
fn skip_attr(toks: &[Tok], i: usize) -> usize {
    if i + 1 < toks.len() && toks[i + 1].text == "[" {
        match_bracket(toks, i + 1) + 1
    } else {
        i + 1
    }
}

/// Index of the `]` matching the `[` at `open`.
fn match_bracket(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
    }
    toks.len().saturating_sub(1)
}

/// Index of the `}` matching the `{` at `open`.
fn match_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
    }
    toks.len().saturating_sub(1)
}

/// Index of the `)` matching the `(` at `open`.
fn match_paren(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
    }
    toks.len().saturating_sub(1)
}

fn in_regions(regions: &[(u32, u32)], line: u32) -> bool {
    regions.iter().any(|&(a, b)| (a..=b).contains(&line))
}

/// Quantity-name patterns from the paper's variables: watts (P, C, δ),
/// prices (q′), core-hours (costs/rewards), plus the target/budget words the
/// controllers use for them.
fn is_quantity_name(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    [
        "watt",
        "price",
        "core_hour",
        "corehour",
        "power",
        "target",
        "budget",
    ]
    .iter()
    .any(|p| lower.contains(p))
        || lower.ends_with("_w")
        || lower.ends_with("_wh")
}

// ---------------------------------------------------------------------------
// L1 — unit hygiene on public signatures
// ---------------------------------------------------------------------------

fn unit_hygiene(relpath: &str, lexed: &Lexed, out: &mut Vec<Violation>) {
    let toks = &lexed.toks;
    let mut i = 0;
    while i < toks.len() {
        if toks[i].kind == TokKind::Ident && toks[i].text == "fn" && is_pub_fn(toks, i) {
            let Some(name_idx) = next_ident(toks, i + 1) else {
                i += 1;
                continue;
            };
            let fn_name = toks[name_idx].text.clone();
            let fn_line = toks[name_idx].line;
            // Skip generics to the parameter list.
            let mut j = name_idx + 1;
            if j < toks.len() && toks[j].text == "<" {
                j = match_angle(toks, j) + 1;
            }
            if j >= toks.len() || toks[j].text != "(" {
                i = j;
                continue;
            }
            let close = match_paren(toks, j);
            check_params(relpath, toks, j + 1, close, out);
            // Return type: `-> f64` on a quantity-named fn.
            let mut k = close + 1;
            if k < toks.len() && toks[k].text == "->" {
                let end = signature_end(toks, k + 1);
                let ret = type_text(&toks[k + 1..end]);
                if is_bare_f64(&ret) && is_quantity_name(&fn_name) {
                    out.push(Violation {
                        file: relpath.to_string(),
                        line: toks[k].line,
                        rule: Rule::UnitHygiene,
                        message: format!(
                            "pub fn `{fn_name}` returns bare `{ret}` for a quantity; \
                             return a unit newtype (Watts/Price/CoreHours) or add \
                             `// lint: raw-f64-ok <why>`"
                        ),
                    });
                }
                k = end;
            }
            let _ = fn_line;
            i = k;
        } else {
            i += 1;
        }
    }
}

/// True when the `fn` at `i` is `pub` (including `pub(crate)` etc.),
/// allowing `const`/`async`/`unsafe`/`extern "C"` qualifiers between.
fn is_pub_fn(toks: &[Tok], fn_idx: usize) -> bool {
    let mut j = fn_idx;
    while j > 0 {
        j -= 1;
        match toks[j].text.as_str() {
            "const" | "async" | "unsafe" | "extern" => continue,
            ")" => {
                // Possible `pub(crate)` restriction.
                let mut depth = 0i32;
                let mut k = j;
                loop {
                    match toks[k].text.as_str() {
                        ")" => depth += 1,
                        "(" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    if k == 0 {
                        return false;
                    }
                    k -= 1;
                }
                return k > 0 && toks[k - 1].text == "pub";
            }
            "pub" => return true,
            _ => {
                if toks[j].kind == TokKind::Str {
                    continue; // extern "C"
                }
                return false;
            }
        }
    }
    false
}

fn next_ident(toks: &[Tok], from: usize) -> Option<usize> {
    toks[from..]
        .iter()
        .position(|t| t.kind == TokKind::Ident)
        .map(|p| from + p)
}

/// Index of the `>` closing the `<` at `open` (type position only;
/// `->`/`=>`/`>=`/`<=` are single tokens so they cannot confuse the count).
fn match_angle(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "<" => depth += 1,
            ">" => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
    }
    toks.len().saturating_sub(1)
}

/// Scans a parameter list for quantity-named params typed as bare f64.
fn check_params(relpath: &str, toks: &[Tok], start: usize, close: usize, out: &mut Vec<Violation>) {
    let mut j = start;
    while j < close {
        // One parameter: pattern tokens, `:`, type tokens up to a top-level
        // comma or the closing paren.
        let mut colon = None;
        let mut depth = 0i32;
        let mut end = close;
        let mut k = j;
        while k < close {
            match toks[k].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "<" => depth += 1,
                ">" => depth -= 1,
                ":" if depth == 0 && colon.is_none() => colon = Some(k),
                "," if depth == 0 => {
                    end = k;
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        if let Some(c) = colon {
            let name = toks[j..c]
                .iter()
                .rev()
                .find(|t| t.kind == TokKind::Ident)
                .map(|t| t.text.clone())
                .unwrap_or_default();
            let ty = type_text(&toks[c + 1..end]);
            if is_bare_f64(&ty) && is_quantity_name(&name) {
                out.push(Violation {
                    file: relpath.to_string(),
                    line: toks[c].line,
                    rule: Rule::UnitHygiene,
                    message: format!(
                        "pub fn parameter `{name}: {ty}` is a bare float quantity; \
                         take a unit newtype (Watts/Price/CoreHours) or add \
                         `// lint: raw-f64-ok <why>`"
                    ),
                });
            }
        }
        j = end + 1;
    }
}

/// End of a signature after `->`: the body `{`, a `;`, or a `where` clause.
fn signature_end(toks: &[Tok], from: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(from) {
        match t.text.as_str() {
            "(" | "[" | "<" => depth += 1,
            ")" | "]" | ">" => depth -= 1,
            "{" | ";" if depth == 0 => return j,
            "where" if depth == 0 => return j,
            _ => {}
        }
    }
    toks.len()
}

fn type_text(toks: &[Tok]) -> String {
    toks.iter().map(|t| t.text.as_str()).collect()
}

/// Types the L1 rule flags: `f64` at top level, optionally behind a
/// reference or `Option`.
fn is_bare_f64(ty: &str) -> bool {
    matches!(ty, "f64" | "&f64" | "&mutf64" | "Option<f64>")
}

// ---------------------------------------------------------------------------
// L2 — NaN-safety
// ---------------------------------------------------------------------------

fn nan_safety(relpath: &str, lexed: &Lexed, out: &mut Vec<Violation>) {
    let toks = &lexed.toks;
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Ident && t.text == "partial_cmp" {
            // Every partial_cmp on floats either panics on NaN (`.unwrap()`)
            // or silently mis-sorts (`unwrap_or(Equal)`); total_cmp does
            // neither. Flag the call site unconditionally.
            out.push(Violation {
                file: relpath.to_string(),
                line: t.line,
                rule: Rule::NanSafety,
                message: "`partial_cmp` on floats panics or mis-orders on NaN; \
                          use `f64::total_cmp` (or derive Ord on a newtype)"
                    .into(),
            });
        }
        if t.kind == TokKind::Punct && (t.text == "==" || t.text == "!=") {
            let float_lhs = i > 0 && toks[i - 1].kind == TokKind::Float;
            let float_rhs = i + 1 < toks.len() && toks[i + 1].kind == TokKind::Float;
            if float_lhs || float_rhs {
                out.push(Violation {
                    file: relpath.to_string(),
                    line: t.line,
                    rule: Rule::NanSafety,
                    message: format!(
                        "direct `{}` against a float literal is NaN-hostile and \
                         precision-fragile; compare through a unit newtype, use a \
                         tolerance, or add `// lint: allow(nan-safety) <why>`",
                        t.text
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// L3 — panic freedom
// ---------------------------------------------------------------------------

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

fn panic_freedom(relpath: &str, lexed: &Lexed, out: &mut Vec<Violation>) {
    let toks = &lexed.toks;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident && !(t.kind == TokKind::Punct && t.text == "[") {
            continue;
        }
        let prev_dot = i > 0 && toks[i - 1].text == ".";
        match t.text.as_str() {
            "unwrap" if prev_dot => out.push(Violation {
                file: relpath.to_string(),
                line: t.line,
                rule: Rule::PanicFreedom,
                message: "`.unwrap()` in library code; return a typed error, use \
                          `unwrap_or`/pattern matching, or add \
                          `// lint: allow(panic-freedom) <why>`"
                    .into(),
            }),
            "expect" if prev_dot => out.push(Violation {
                file: relpath.to_string(),
                line: t.line,
                rule: Rule::PanicFreedom,
                message: "`.expect()` in library code; return a typed error or add \
                          `// lint: allow(panic-freedom) <why>`"
                    .into(),
            }),
            name if PANIC_MACROS.contains(&name)
                && i + 1 < toks.len()
                && toks[i + 1].text == "!" =>
            {
                out.push(Violation {
                    file: relpath.to_string(),
                    line: t.line,
                    rule: Rule::PanicFreedom,
                    message: format!(
                        "`{name}!` in library code; return a typed error or add \
                         `// lint: allow(panic-freedom) <why>`"
                    ),
                });
            }
            "[" => {
                // Indexing expression: `[` directly after an expression tail
                // (ident, `)`, or `]`), not an attribute or macro bracket.
                if i == 0 {
                    continue;
                }
                let p = &toks[i - 1];
                let expr_tail = matches!(p.kind, TokKind::Ident) && !is_keyword(&p.text)
                    || p.text == ")"
                    || p.text == "]";
                if !expr_tail {
                    continue;
                }
                // Full-range slicing `x[..]` cannot panic.
                let inner = &toks[i + 1..match_bracket(toks, i).min(toks.len())];
                if inner.len() == 1 && inner[0].text == ".." {
                    continue;
                }
                out.push(Violation {
                    file: relpath.to_string(),
                    line: t.line,
                    rule: Rule::PanicFreedom,
                    message: "indexing can panic; use `.get()`/`.get_mut()` or add \
                              `// lint: allow(panic-freedom) <why>`"
                        .into(),
                });
            }
            _ => {}
        }
    }
}

/// Keywords that can directly precede `[` without forming an indexing
/// expression (`let [a, b] = ...`, `for x in [..]`, `return [..]`, etc.).
fn is_keyword(t: &str) -> bool {
    matches!(
        t,
        "let"
            | "in"
            | "return"
            | "match"
            | "if"
            | "else"
            | "mut"
            | "ref"
            | "move"
            | "box"
            | "break"
            | "const"
            | "static"
            | "as"
    )
}

// ---------------------------------------------------------------------------
// L4 — determinism
// ---------------------------------------------------------------------------

fn determinism(relpath: &str, lexed: &Lexed, rules: RuleSet, out: &mut Vec<Violation>) {
    for t in &lexed.toks {
        if t.kind != TokKind::Ident {
            continue;
        }
        if rules.determinism_hash && (t.text == "HashMap" || t.text == "HashSet") {
            out.push(Violation {
                file: relpath.to_string(),
                line: t.line,
                rule: Rule::Determinism,
                message: format!(
                    "`{}` iteration order is nondeterministic and this module feeds \
                     report/CSV output; use `BTreeMap`/`BTreeSet` or a sorted Vec",
                    t.text
                ),
            });
        }
        if rules.determinism_time && (t.text == "Instant" || t.text == "SystemTime") {
            out.push(Violation {
                file: relpath.to_string(),
                line: t.line,
                rule: Rule::Determinism,
                message: format!(
                    "`{}` reads the wall clock inside the simulator; simulated time \
                     must come from the slot counter to keep runs reproducible",
                    t.text
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// L5 — layering
// ---------------------------------------------------------------------------

/// Solver modules that only `mpr_core::mechanism` may call into.
const SOLVER_MODULES: &[&str] = &["mclr", "opt", "eql", "vcg"];

fn layering(relpath: &str, lexed: &Lexed, out: &mut Vec<Violation>) {
    let toks = &lexed.toks;
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Ident
            && SOLVER_MODULES.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.text == "::")
        {
            out.push(Violation {
                file: relpath.to_string(),
                line: t.line,
                rule: Rule::Layering,
                message: format!(
                    "solver module `{}::` referenced from the orchestration layer; \
                     dispatch through the `mpr_core::mechanism::Mechanism` trait \
                     instead, or add `// lint: allow(layering) <why>`",
                    t.text
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_rules() -> RuleSet {
        RuleSet {
            unit_hygiene: true,
            nan_safety: true,
            panic_freedom: true,
            determinism_time: true,
            determinism_hash: true,
            layering: true,
        }
    }

    fn run(src: &str) -> FileAnalysis {
        analyze_source_with("crates/core/src/x.rs", src, all_rules())
    }

    #[test]
    fn scope_policy_matches_layout() {
        let core = RuleSet::for_path("crates/core/src/mclr.rs");
        assert!(core.unit_hygiene && core.nan_safety && core.panic_freedom);
        // Core hosts the solvers, so L5 cannot apply there.
        assert!(!core.layering);
        let sim = RuleSet::for_path("crates/sim/src/engine.rs");
        assert!(sim.unit_hygiene && sim.determinism_time && sim.panic_freedom);
        assert!(sim.layering);
        let report = RuleSet::for_path("crates/sim/src/report.rs");
        assert!(report.determinism_hash);
        // The durability layer is panic-free and codec-deterministic
        // throughout; the sim-side ledger codec joins the hash scope.
        let durable = RuleSet::for_path("crates/durable/src/supervisor.rs");
        assert!(durable.panic_freedom && durable.determinism_hash);
        assert!(!durable.unit_hygiene);
        let ledger = RuleSet::for_path("crates/sim/src/ledger.rs");
        assert!(ledger.determinism_hash && ledger.panic_freedom);
        let wal = RuleSet::for_path("crates/durable/src/wal.rs");
        assert!(wal.determinism_hash);
        let cli = RuleSet::for_path("crates/cli/src/main.rs");
        assert!(!cli.nan_safety && !cli.unit_hygiene);
        assert!(cli.layering);
        let experiments = RuleSet::for_path("crates/experiments/src/bin/fig10.rs");
        assert!(!experiments.layering);
        let tests = RuleSet::for_path("crates/core/tests/integration.rs");
        assert!(!tests.nan_safety);
    }

    #[test]
    fn layering_flags_direct_solver_calls() {
        let a = run("use mpr_core::opt;\n\
             fn f() { let _ = opt::solve(&[], t, opt::OptMethod::Auto); }\n\
             fn g() { let _ = mpr_core::eql::reduce(&[], t); }\n\
             fn h() { let _ = vcg::auction(&[], t, m); }\n\
             fn i() { let _ = mclr::clear_best_effort(&[], t); }\n");
        let l5: Vec<_> = a
            .violations
            .iter()
            .filter(|v| v.rule == Rule::Layering)
            .collect();
        // Line 2's two `opt::` hits dedupe to one, then eql, vcg, mclr.
        // `use mpr_core::opt;` alone is not a path into the module.
        assert_eq!(l5.len(), 4, "{l5:?}");
        assert!(l5.iter().all(|v| v.message.contains("mechanism")));
    }

    #[test]
    fn layering_ignores_trait_dispatch_and_plain_idents() {
        let a = run("use mpr_core::{Mechanism, OptMechanism, OptMethod};\n\
             fn f() { let mut m = OptMechanism::strict(OptMethod::Auto); \
             let _ = m.clear(&inst, t); }\n\
             fn g(opt: Option<u32>) -> Option<u32> { opt }\n");
        let l5 = a
            .violations
            .iter()
            .filter(|v| v.rule == Rule::Layering)
            .count();
        assert_eq!(l5, 0, "{:?}", a.violations);
    }

    #[test]
    fn layering_exemption_is_honored() {
        let a = run(
            "// lint: allow(layering) — migration shim, remove with PR 5\n\
             fn f() { let _ = eql::reduce(&[], t); }\n",
        );
        assert!(a.violations.is_empty(), "{:?}", a.violations);
        assert_eq!(a.exemptions_used.len(), 1);
        assert_eq!(a.exemptions_used[0].rule, Rule::Layering);
    }

    #[test]
    fn pub_fn_f64_params_and_returns_flagged() {
        let a = run("pub fn set_budget(budget_watts: f64) {}\n\
                     pub fn target_watts(&self) -> f64 { 0.0 }\n\
                     pub fn helper(x: f64) -> f64 { x }\n\
                     fn private_power(power: f64) {}\n");
        let l1: Vec<_> = a
            .violations
            .iter()
            .filter(|v| v.rule == Rule::UnitHygiene)
            .collect();
        // Param on line 1, return on line 2; `helper`'s non-quantity names
        // and the private fn are not flagged.
        assert_eq!(l1.len(), 2, "{l1:?}");
        assert_eq!(l1[0].line, 1);
        assert_eq!(l1[1].line, 2);
    }

    #[test]
    fn test_regions_are_exempt() {
        let a = run("pub fn ok() {}\n\
                     #[cfg(test)]\n\
                     mod tests {\n\
                         fn f(v: Vec<f64>) { let _ = v[0].partial_cmp(&1.0).unwrap(); }\n\
                     }\n");
        assert!(a.violations.is_empty(), "{:?}", a.violations);
    }

    #[test]
    fn exemption_suppresses_and_is_counted() {
        let a = run("pub fn legacy(power_w: f64) {} // lint: raw-f64-ok FFI boundary\n");
        assert!(a.violations.is_empty(), "{:?}", a.violations);
        assert_eq!(a.exemptions_used.len(), 1);
        assert_eq!(a.exemptions_used[0].reason, "FFI boundary");
    }

    #[test]
    fn exemption_without_reason_is_a_violation() {
        let a = run("pub fn legacy(power_w: f64) {} // lint: raw-f64-ok\n");
        // Both the original violation and the meta-violation surface: an
        // unjustified exemption suppresses nothing.
        assert_eq!(a.violations.len(), 2, "{:?}", a.violations);
        assert!(a.violations.iter().any(|v| v.rule == Rule::Exemption));
        assert!(a.violations.iter().any(|v| v.rule == Rule::UnitHygiene));
    }

    #[test]
    fn comment_above_style_applies_to_next_line() {
        let a = run(
            "// lint: allow(panic-freedom) — slice proven nonempty above\n\
                     pub fn f(v: &[u32]) -> u32 { v[0] }\n",
        );
        assert!(a.violations.is_empty(), "{:?}", a.violations);
        assert_eq!(a.exemptions_used.len(), 1);
    }

    #[test]
    fn indexing_heuristics() {
        let a = run(
            "fn f(v: &[u32], i: usize) { let _ = v[i]; let _ = &v[..]; }\n\
                     #[derive(Debug)]\nstruct S;\n\
                     fn g() { let [a, b] = [1, 2]; let _ = (a, b); }\n",
        );
        let l3: Vec<_> = a
            .violations
            .iter()
            .filter(|v| v.rule == Rule::PanicFreedom)
            .collect();
        assert_eq!(l3.len(), 1, "{l3:?}");
        assert_eq!(l3[0].line, 1);
    }

    #[test]
    fn determinism_patterns() {
        let a = run("use std::time::Instant;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); let _ = m; }\n");
        let l4 = a
            .violations
            .iter()
            .filter(|v| v.rule == Rule::Determinism)
            .count();
        // Instant plus HashMap; the two same-line HashMap hits dedupe.
        assert_eq!(l4, 2);
    }
}
