//! AST node types for the Rust subset the workspace uses, plus the
//! per-crate symbol table the flow rules consult.
//!
//! The parser in [`crate::parser`] builds these nodes from the token
//! stream. Nodes are deliberately simple: types are carried as normalized
//! text (no spaces, e.g. `Option<f64>`, `&mutf64`) because the rules only
//! pattern-match on them; expressions are structured because the L6/L7/L8
//! rules walk them. Every node records the 1-based source line it starts
//! on so diagnostics stay `file:line`-addressable.
//!
//! [`dump`](File::dump) renders a stable, indentation-based snapshot used
//! by the golden-file parser tests.

use std::collections::{BTreeMap, BTreeSet};

/// Item visibility. `pub(crate)`/`pub(super)`/`pub(in …)` all count as
/// restricted: visible beyond the item's own module but not a public API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Vis {
    /// `pub`.
    Pub,
    /// `pub(crate)` and friends.
    Restricted,
    /// No visibility qualifier.
    Priv,
}

impl Vis {
    /// True for `pub` and `pub(...)` — anything beyond module-private.
    #[must_use]
    pub fn is_public(self) -> bool {
        !matches!(self, Vis::Priv)
    }
}

/// A type, normalized to spaceless text (`f64`, `&mutf64`, `Vec<Watts>`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeRepr {
    /// Normalized type text.
    pub text: String,
    /// 1-based line the type starts on.
    pub line: u32,
}

impl TypeRepr {
    /// True when the type is a bare float quantity at top level, optionally
    /// behind a reference or `Option` (the L1 rule's notion of "bare").
    #[must_use]
    pub fn is_bare_f64(&self) -> bool {
        matches!(
            self.text.as_str(),
            "f64" | "&f64" | "&mutf64" | "Option<f64>"
        )
    }

    /// The unit newtype this type names, if any (`Watts`, `&Price`,
    /// `mpr_core::units::CoreHours` all resolve).
    #[must_use]
    pub fn unit(&self) -> Option<&'static str> {
        unit_name(&self.text)
    }
}

/// Resolves normalized type text to one of the workspace unit newtypes.
#[must_use]
pub fn unit_name(text: &str) -> Option<&'static str> {
    let t = text.trim_start_matches('&');
    let t = t.strip_prefix("mut").unwrap_or(t);
    let t = t.rsplit("::").next().unwrap_or(t);
    UNIT_TYPES.iter().find(|u| **u == t).copied()
}

/// The unit newtypes from `mpr_core::units` tracked by the L6 flow rule.
pub const UNIT_TYPES: &[&str] = &["Watts", "Price", "CoreHours", "Cores"];

/// One function parameter.
#[derive(Debug, Clone)]
pub struct Param {
    /// Binding name (last identifier of the pattern; empty for `_`).
    pub name: String,
    /// Declared type.
    pub ty: TypeRepr,
    /// 1-based line of the `name: type` pair.
    pub line: u32,
}

/// A function item (free fn, method, or trait fn).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Visibility.
    pub vis: Vis,
    /// True when the parameter list starts with a `self` receiver.
    pub has_self: bool,
    /// Non-`self` parameters.
    pub params: Vec<Param>,
    /// Return type, if an `->` clause is present.
    pub ret: Option<TypeRepr>,
    /// Line of the `->` arrow (diagnostics anchor for return-type rules).
    pub arrow_line: u32,
    /// Body, absent for trait-method signatures.
    pub body: Option<Block>,
}

/// An item in a file, module, impl, or trait.
#[derive(Debug, Clone)]
pub struct Item {
    /// What kind of item this is.
    pub kind: ItemKind,
    /// 1-based line the item starts on (its first non-attribute token).
    pub line: u32,
    /// 1-based line the item ends on (closing brace or semicolon).
    pub end_line: u32,
    /// True when the item is test-only: `#[test]`, `#[bench]`, or behind
    /// `#[cfg(test)]` / `#[cfg(any(test, ...))]`. Inherited by children.
    pub is_test: bool,
}

/// Item kinds the rules care about; everything else is `Other`.
#[derive(Debug, Clone)]
pub enum ItemKind {
    /// `fn`.
    Fn(Box<FnItem>),
    /// `mod name { ... }` (inline only; `mod name;` is `Other`).
    Mod {
        /// Module name.
        name: String,
        /// Items inside the module.
        items: Vec<Item>,
    },
    /// `impl [Trait for] Type { ... }`.
    Impl {
        /// The `Self` type's head (generics stripped): `Watts`, `Engine`.
        self_ty: String,
        /// Items inside the impl block.
        items: Vec<Item>,
    },
    /// `trait Name { ... }`.
    Trait {
        /// Trait name.
        name: String,
        /// Items inside the trait (fn signatures and defaults).
        items: Vec<Item>,
    },
    /// `struct Name { fields }` — named fields only; tuple structs keep an
    /// empty field list.
    Struct {
        /// Struct name.
        name: String,
        /// Named fields as `(name, type)` pairs.
        fields: Vec<(String, TypeRepr)>,
    },
    /// `macro_rules! name { ... }` — body left to the token fallback.
    MacroRules {
        /// Macro name.
        name: String,
    },
    /// Anything else (`use`, `enum`, `const`, `static`, `type`, ...).
    Other,
}

/// A `{ ... }` block.
#[derive(Debug, Clone, Default)]
pub struct Block {
    /// Statements in order; a trailing expression is a `Stmt::Expr` with
    /// `semi == false`.
    pub stmts: Vec<Stmt>,
    /// 1-based line of the opening brace.
    pub line: u32,
    /// 1-based line of the closing brace.
    pub end_line: u32,
}

/// A statement.
#[derive(Debug, Clone)]
pub enum Stmt {
    /// `let pat[: ty] [= init] [else { .. }];`
    Let {
        /// Bound pattern.
        pat: Pat,
        /// Declared type, if annotated.
        ty: Option<TypeRepr>,
        /// Initializer, if present.
        init: Option<Expr>,
        /// `else` block of a let-else, if present.
        els: Option<Block>,
        /// 1-based line of the `let`.
        line: u32,
    },
    /// An expression statement; `semi` records whether it was terminated.
    Expr {
        /// The expression.
        expr: Expr,
        /// True when a `;` followed (the value is discarded).
        semi: bool,
    },
    /// A nested item (fn, use, struct, ... inside a block).
    Item(Item),
}

/// An expression with its source line.
#[derive(Debug, Clone)]
pub struct Expr {
    /// Expression kind.
    pub kind: ExprKind,
    /// 1-based line the expression starts on.
    pub line: u32,
}

/// Expression kinds.
#[derive(Debug, Clone)]
pub enum ExprKind {
    /// Integer literal (text kept for field-index detection).
    Int(String),
    /// Float literal.
    Float(String),
    /// String literal (contents discarded by the lexer).
    Str,
    /// Char/byte literal.
    Char,
    /// Path expression: `x`, `Watts::new`, `self`.
    Path(Vec<String>),
    /// Unary operator: `-`, `!`, `*` (deref).
    Unary(&'static str, Box<Expr>),
    /// Binary operator (including `=`, `+=` and friends).
    Binary(String, Box<Expr>, Box<Expr>),
    /// Call: `f(a, b)` — callee is usually a `Path`.
    Call(Box<Expr>, Vec<Expr>),
    /// Method call: `recv.m(a, b)`.
    MethodCall {
        /// Receiver expression.
        recv: Box<Expr>,
        /// Method name.
        method: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Field access `recv.name`; tuple projections carry a numeric name.
    Field(Box<Expr>, String),
    /// Indexing `base[index]`.
    Index(Box<Expr>, Box<Expr>),
    /// Closure `|params| body` (param names only).
    Closure {
        /// Parameter names.
        params: Vec<String>,
        /// Body expression.
        body: Box<Expr>,
    },
    /// `if cond { .. } [else ..]` — `els` is a Block or another If.
    If {
        /// Condition.
        cond: Box<Expr>,
        /// Then block.
        then: Block,
        /// Else branch.
        els: Option<Box<Expr>>,
    },
    /// `if let pat = scrutinee { .. } [else ..]`.
    IfLet {
        /// Pattern.
        pat: Pat,
        /// Scrutinized expression.
        scrutinee: Box<Expr>,
        /// Then block.
        then: Block,
        /// Else branch.
        els: Option<Box<Expr>>,
    },
    /// `match scrutinee { arms }`.
    Match {
        /// Scrutinized expression.
        scrutinee: Box<Expr>,
        /// Match arms.
        arms: Vec<Arm>,
    },
    /// `while cond { .. }` (including `while let` with a desugared guard).
    While {
        /// Condition (or `if let`-style scrutinee).
        cond: Box<Expr>,
        /// Loop body.
        body: Block,
    },
    /// `loop { .. }`.
    Loop(Block),
    /// `for pat in iter { .. }`.
    For {
        /// Loop pattern.
        pat: Pat,
        /// Iterated expression.
        iter: Box<Expr>,
        /// Loop body.
        body: Block,
    },
    /// A block expression (incl. `unsafe { .. }`).
    Block(Block),
    /// Tuple `(a, b)`; one-element tuples are parenthesized expressions.
    Tuple(Vec<Expr>),
    /// Array `[a, b]` or `[x; n]`.
    Array(Vec<Expr>),
    /// `&expr` / `&mut expr`.
    Ref {
        /// True for `&mut`.
        mutable: bool,
        /// Referenced expression.
        expr: Box<Expr>,
    },
    /// `expr as Type`.
    Cast(Box<Expr>, TypeRepr),
    /// Range `lo..hi`, `lo..=hi`, `..`, `a..`.
    Range {
        /// Lower bound.
        lo: Option<Box<Expr>>,
        /// Upper bound.
        hi: Option<Box<Expr>>,
    },
    /// `return [expr]`.
    Return(Option<Box<Expr>>),
    /// `break [expr]`.
    Break(Option<Box<Expr>>),
    /// `continue`.
    Continue,
    /// `expr?`.
    Try(Box<Expr>),
    /// Macro invocation `path!( .. )`; arguments are an opaque token range
    /// handled by the token-fallback scan.
    MacroCall {
        /// Macro path (e.g. `["vec"]`, `["std", "format"]`).
        path: Vec<String>,
    },
    /// Struct literal `Path { field: expr, .. }`.
    StructLit {
        /// Struct path.
        path: Vec<String>,
        /// Field initializers (shorthand fields repeat the name as a path
        /// expression).
        fields: Vec<(String, Expr)>,
    },
    /// An unparseable region the parser skipped; the token fallback scans
    /// it with the legacy lexer rules.
    Opaque,
}

/// One match arm.
#[derive(Debug, Clone)]
pub struct Arm {
    /// Arm pattern.
    pub pat: Pat,
    /// Guard expression, if present.
    pub guard: Option<Expr>,
    /// Arm body.
    pub body: Expr,
    /// 1-based line the arm starts on.
    pub line: u32,
}

/// A pattern with its source line.
#[derive(Debug, Clone)]
pub struct Pat {
    /// Pattern kind.
    pub kind: PatKind,
    /// 1-based line.
    pub line: u32,
}

/// Pattern kinds.
#[derive(Debug, Clone)]
pub enum PatKind {
    /// `_`.
    Wild,
    /// A binding: `x`, `mut x`, `ref x`.
    Ident(String),
    /// A path pattern (unit variants, consts): `None`, `Phase::Idle`.
    Path(Vec<String>),
    /// Tuple-struct pattern: `Some(x)`, `Err(e)`.
    TupleStruct {
        /// Constructor path.
        path: Vec<String>,
        /// Element patterns.
        elems: Vec<Pat>,
    },
    /// Struct pattern `Path { .. }` (fields not tracked).
    Struct {
        /// Struct path.
        path: Vec<String>,
    },
    /// Tuple pattern `(a, b)`.
    Tuple(Vec<Pat>),
    /// Slice pattern `[a, b, ..]`.
    Slice(Vec<Pat>),
    /// Or-pattern `a | b`.
    Or(Vec<Pat>),
    /// Literal pattern (incl. negative literals and ranges).
    Lit,
    /// `..` rest.
    Rest,
    /// Anything else.
    Other,
}

impl Pat {
    /// True when the pattern is the wildcard `_`.
    #[must_use]
    pub fn is_wild(&self) -> bool {
        matches!(self.kind, PatKind::Wild)
    }
}

/// A parsed source file: the item tree plus the bookkeeping the rules and
/// the token fallback need.
#[derive(Debug, Clone, Default)]
pub struct File {
    /// Top-level items.
    pub items: Vec<Item>,
}

// ---------------------------------------------------------------------------
// Symbol table
// ---------------------------------------------------------------------------

/// One function signature as recorded in the symbol table.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct FnSig {
    /// Function name.
    pub name: String,
    /// `Self` type head for methods, empty for free functions.
    pub self_ty: String,
    /// Normalized return-type text (empty when the fn returns `()`).
    pub ret: String,
    /// Normalized parameter-type texts (excluding `self`).
    pub params: Vec<String>,
}

impl FnSig {
    /// True when the return type is a `Result`.
    #[must_use]
    pub fn returns_result(&self) -> bool {
        self.ret.starts_with("Result<") || self.ret == "Result" || self.ret.contains("::Result<")
    }
}

/// Exported symbols of one file, in a serialization-friendly record form.
///
/// Records are strings of `|`-separated fields:
///
/// * `fn|<name>|<ret>|<p1,p2,...>` — free function
/// * `method|<self_ty>|<name>|<ret>|<p1,...>` — inherent/trait method
/// * `field|<struct>|<field>|<ty>` — named struct field
#[derive(Debug, Clone, Default)]
pub struct FileSymbols {
    /// Sorted, deduplicated records.
    pub records: Vec<String>,
}

impl FileSymbols {
    /// Extracts symbols from a parsed file, skipping test-only items.
    #[must_use]
    pub fn from_file(file: &File) -> FileSymbols {
        let mut records = Vec::new();
        collect_symbols(&file.items, "", &mut records);
        records.sort();
        records.dedup();
        FileSymbols { records }
    }
}

fn collect_symbols(items: &[Item], self_ty: &str, out: &mut Vec<String>) {
    for item in items {
        if item.is_test {
            continue;
        }
        match &item.kind {
            ItemKind::Fn(f) => {
                let params: Vec<&str> = f.params.iter().map(|p| p.ty.text.as_str()).collect();
                let ret = f.ret.as_ref().map(|t| t.text.as_str()).unwrap_or("");
                if self_ty.is_empty() {
                    out.push(format!("fn|{}|{}|{}", f.name, ret, params.join(",")));
                } else {
                    out.push(format!(
                        "method|{}|{}|{}|{}",
                        self_ty,
                        f.name,
                        ret,
                        params.join(",")
                    ));
                }
            }
            ItemKind::Mod { items, .. } => collect_symbols(items, self_ty, out),
            ItemKind::Impl {
                self_ty: ty, items, ..
            } => collect_symbols(items, ty, out),
            ItemKind::Trait { items, .. } => collect_symbols(items, self_ty, out),
            ItemKind::Struct { name, fields } => {
                for (fname, fty) in fields {
                    out.push(format!("field|{}|{}|{}", name, fname, fty.text));
                }
            }
            ItemKind::MacroRules { .. } | ItemKind::Other => {}
        }
    }
}

/// The cross-file symbol table consulted by the L6/L7 rules: function and
/// method signatures plus struct field types, merged over every file of
/// the workspace (or the single file under test).
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    /// Free functions by name.
    pub fns: BTreeMap<String, Vec<FnSig>>,
    /// Methods by name (across all `Self` types).
    pub methods: BTreeMap<String, Vec<FnSig>>,
    /// Struct field types: struct name → field name → type text.
    pub fields: BTreeMap<String, BTreeMap<String, String>>,
    /// Method names with at least one `Result`-returning signature.
    pub result_methods: BTreeSet<String>,
    /// Free-fn names with at least one `Result`-returning signature.
    pub result_fns: BTreeSet<String>,
}

impl SymbolTable {
    /// Builds the table from per-file symbol records.
    #[must_use]
    pub fn build<'a>(files: impl IntoIterator<Item = &'a FileSymbols>) -> SymbolTable {
        let mut table = SymbolTable::default();
        for fs in files {
            for rec in &fs.records {
                table.insert_record(rec);
            }
        }
        table
    }

    fn insert_record(&mut self, rec: &str) {
        let mut parts = rec.split('|');
        match parts.next() {
            Some("fn") => {
                let (Some(name), Some(ret), Some(params)) =
                    (parts.next(), parts.next(), parts.next())
                else {
                    return;
                };
                let sig = FnSig {
                    name: name.to_string(),
                    self_ty: String::new(),
                    ret: ret.to_string(),
                    params: split_params(params),
                };
                if sig.returns_result() {
                    self.result_fns.insert(name.to_string());
                }
                self.fns.entry(name.to_string()).or_default().push(sig);
            }
            Some("method") => {
                let (Some(self_ty), Some(name), Some(ret), Some(params)) =
                    (parts.next(), parts.next(), parts.next(), parts.next())
                else {
                    return;
                };
                let sig = FnSig {
                    name: name.to_string(),
                    self_ty: self_ty.to_string(),
                    ret: ret.to_string(),
                    params: split_params(params),
                };
                if sig.returns_result() {
                    self.result_methods.insert(name.to_string());
                }
                self.methods.entry(name.to_string()).or_default().push(sig);
            }
            Some("field") => {
                let (Some(sname), Some(fname), Some(ty)) =
                    (parts.next(), parts.next(), parts.next())
                else {
                    return;
                };
                self.fields
                    .entry(sname.to_string())
                    .or_default()
                    .insert(fname.to_string(), ty.to_string());
            }
            _ => {}
        }
    }

    /// The unit newtype returned by method `name` on a receiver of unit
    /// type `recv_unit`, when every recorded signature agrees.
    #[must_use]
    pub fn method_unit_ret(&self, name: &str) -> Option<&'static str> {
        let sigs = self.methods.get(name)?;
        let mut unit = None;
        for sig in sigs {
            let u = unit_name(&sig.ret)?;
            if unit.is_some_and(|prev| prev != u) {
                return None;
            }
            unit = Some(u);
        }
        unit
    }

    /// Stable digest over every record in the table. Two workspaces with
    /// identical exported symbols share a digest, so body-only edits keep
    /// the rest of the lint cache warm.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |s: &str| {
            for b in s.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            h ^= 0xff;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for (name, sigs) in &self.fns {
            eat(name);
            for s in sigs {
                eat(&s.ret);
                for p in &s.params {
                    eat(p);
                }
            }
        }
        for (name, sigs) in &self.methods {
            eat(name);
            for s in sigs {
                eat(&s.self_ty);
                eat(&s.ret);
                for p in &s.params {
                    eat(p);
                }
            }
        }
        for (sname, fields) in &self.fields {
            eat(sname);
            for (f, ty) in fields {
                eat(f);
                eat(ty);
            }
        }
        h
    }
}

fn split_params(s: &str) -> Vec<String> {
    if s.is_empty() {
        Vec::new()
    } else {
        s.split(',').map(str::to_string).collect()
    }
}

// ---------------------------------------------------------------------------
// Stable dump for golden tests
// ---------------------------------------------------------------------------

impl File {
    /// Renders the AST as stable, indentation-structured text for golden
    /// snapshot tests. One node per line; children indented two spaces.
    #[must_use]
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for item in &self.items {
            dump_item(item, 0, &mut out);
        }
        out
    }
}

fn pad(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn dump_item(item: &Item, depth: usize, out: &mut String) {
    pad(depth, out);
    let test = if item.is_test { " test" } else { "" };
    match &item.kind {
        ItemKind::Fn(f) => {
            let vis = match f.vis {
                Vis::Pub => "pub",
                Vis::Restricted => "pub(restricted)",
                Vis::Priv => "priv",
            };
            out.push_str(&format!(
                "fn {} vis={} line={}{}{}\n",
                f.name,
                vis,
                item.line,
                if f.has_self { " self" } else { "" },
                test
            ));
            for p in &f.params {
                pad(depth + 1, out);
                out.push_str(&format!(
                    "param {}: {} line={}\n",
                    p.name, p.ty.text, p.line
                ));
            }
            if let Some(ret) = &f.ret {
                pad(depth + 1, out);
                out.push_str(&format!("ret {}\n", ret.text));
            }
            if let Some(body) = &f.body {
                dump_block(body, depth + 1, out);
            }
        }
        ItemKind::Mod { name, items } => {
            out.push_str(&format!("mod {} line={}{}\n", name, item.line, test));
            for it in items {
                dump_item(it, depth + 1, out);
            }
        }
        ItemKind::Impl { self_ty, items } => {
            out.push_str(&format!("impl {} line={}{}\n", self_ty, item.line, test));
            for it in items {
                dump_item(it, depth + 1, out);
            }
        }
        ItemKind::Trait { name, items } => {
            out.push_str(&format!("trait {} line={}{}\n", name, item.line, test));
            for it in items {
                dump_item(it, depth + 1, out);
            }
        }
        ItemKind::Struct { name, fields } => {
            out.push_str(&format!("struct {} line={}{}\n", name, item.line, test));
            for (fname, fty) in fields {
                pad(depth + 1, out);
                out.push_str(&format!("field {}: {}\n", fname, fty.text));
            }
        }
        ItemKind::MacroRules { name } => {
            out.push_str(&format!(
                "macro_rules {} line={}{}\n",
                name, item.line, test
            ));
        }
        ItemKind::Other => {
            out.push_str(&format!("other line={}{}\n", item.line, test));
        }
    }
}

fn dump_block(block: &Block, depth: usize, out: &mut String) {
    pad(depth, out);
    out.push_str(&format!("block lines={}..{}\n", block.line, block.end_line));
    for stmt in &block.stmts {
        dump_stmt(stmt, depth + 1, out);
    }
}

fn dump_stmt(stmt: &Stmt, depth: usize, out: &mut String) {
    match stmt {
        Stmt::Let {
            pat,
            ty,
            init,
            els,
            line,
        } => {
            pad(depth, out);
            out.push_str(&format!(
                "let {} ty={} line={}\n",
                dump_pat(pat),
                ty.as_ref().map(|t| t.text.as_str()).unwrap_or("_"),
                line
            ));
            if let Some(e) = init {
                dump_expr(e, depth + 1, out);
            }
            if let Some(b) = els {
                dump_block(b, depth + 1, out);
            }
        }
        Stmt::Expr { expr, semi } => {
            pad(depth, out);
            out.push_str(if *semi { "stmt\n" } else { "tail\n" });
            dump_expr(expr, depth + 1, out);
        }
        Stmt::Item(item) => dump_item(item, depth, out),
    }
}

fn dump_pat(pat: &Pat) -> String {
    match &pat.kind {
        PatKind::Wild => "_".into(),
        PatKind::Ident(name) => name.clone(),
        PatKind::Path(p) => p.join("::"),
        PatKind::TupleStruct { path, elems } => format!(
            "{}({})",
            path.join("::"),
            elems.iter().map(dump_pat).collect::<Vec<_>>().join(", ")
        ),
        PatKind::Struct { path } => format!("{}{{..}}", path.join("::")),
        PatKind::Tuple(elems) => format!(
            "({})",
            elems.iter().map(dump_pat).collect::<Vec<_>>().join(", ")
        ),
        PatKind::Slice(elems) => format!(
            "[{}]",
            elems.iter().map(dump_pat).collect::<Vec<_>>().join(", ")
        ),
        PatKind::Or(alts) => alts.iter().map(dump_pat).collect::<Vec<_>>().join(" | "),
        PatKind::Lit => "<lit>".into(),
        PatKind::Rest => "..".into(),
        PatKind::Other => "<pat>".into(),
    }
}

fn dump_expr(expr: &Expr, depth: usize, out: &mut String) {
    pad(depth, out);
    let line = expr.line;
    match &expr.kind {
        ExprKind::Int(t) => out.push_str(&format!("int {t} line={line}\n")),
        ExprKind::Float(t) => out.push_str(&format!("float {t} line={line}\n")),
        ExprKind::Str => out.push_str(&format!("str line={line}\n")),
        ExprKind::Char => out.push_str(&format!("char line={line}\n")),
        ExprKind::Path(p) => out.push_str(&format!("path {} line={line}\n", p.join("::"))),
        ExprKind::Unary(op, e) => {
            out.push_str(&format!("unary {op} line={line}\n"));
            dump_expr(e, depth + 1, out);
        }
        ExprKind::Binary(op, a, b) => {
            out.push_str(&format!("binary {op} line={line}\n"));
            dump_expr(a, depth + 1, out);
            dump_expr(b, depth + 1, out);
        }
        ExprKind::Call(callee, args) => {
            out.push_str(&format!("call line={line}\n"));
            dump_expr(callee, depth + 1, out);
            for a in args {
                dump_expr(a, depth + 1, out);
            }
        }
        ExprKind::MethodCall { recv, method, args } => {
            out.push_str(&format!("method {method} line={line}\n"));
            dump_expr(recv, depth + 1, out);
            for a in args {
                dump_expr(a, depth + 1, out);
            }
        }
        ExprKind::Field(base, name) => {
            out.push_str(&format!("field {name} line={line}\n"));
            dump_expr(base, depth + 1, out);
        }
        ExprKind::Index(base, idx) => {
            out.push_str(&format!("index line={line}\n"));
            dump_expr(base, depth + 1, out);
            dump_expr(idx, depth + 1, out);
        }
        ExprKind::Closure { params, body } => {
            out.push_str(&format!("closure |{}| line={line}\n", params.join(", ")));
            dump_expr(body, depth + 1, out);
        }
        ExprKind::If { cond, then, els } => {
            out.push_str(&format!("if line={line}\n"));
            dump_expr(cond, depth + 1, out);
            dump_block(then, depth + 1, out);
            if let Some(e) = els {
                dump_expr(e, depth + 1, out);
            }
        }
        ExprKind::IfLet {
            pat,
            scrutinee,
            then,
            els,
        } => {
            out.push_str(&format!("if-let {} line={line}\n", dump_pat(pat)));
            dump_expr(scrutinee, depth + 1, out);
            dump_block(then, depth + 1, out);
            if let Some(e) = els {
                dump_expr(e, depth + 1, out);
            }
        }
        ExprKind::Match { scrutinee, arms } => {
            out.push_str(&format!("match line={line}\n"));
            dump_expr(scrutinee, depth + 1, out);
            for arm in arms {
                pad(depth + 1, out);
                out.push_str(&format!("arm {} line={}\n", dump_pat(&arm.pat), arm.line));
                if let Some(g) = &arm.guard {
                    dump_expr(g, depth + 2, out);
                }
                dump_expr(&arm.body, depth + 2, out);
            }
        }
        ExprKind::While { cond, body } => {
            out.push_str(&format!("while line={line}\n"));
            dump_expr(cond, depth + 1, out);
            dump_block(body, depth + 1, out);
        }
        ExprKind::Loop(body) => {
            out.push_str(&format!("loop line={line}\n"));
            dump_block(body, depth + 1, out);
        }
        ExprKind::For { pat, iter, body } => {
            out.push_str(&format!("for {} line={line}\n", dump_pat(pat)));
            dump_expr(iter, depth + 1, out);
            dump_block(body, depth + 1, out);
        }
        ExprKind::Block(b) => {
            out.push_str(&format!("blockexpr line={line}\n"));
            dump_block(b, depth + 1, out);
        }
        ExprKind::Tuple(elems) => {
            out.push_str(&format!("tuple line={line}\n"));
            for e in elems {
                dump_expr(e, depth + 1, out);
            }
        }
        ExprKind::Array(elems) => {
            out.push_str(&format!("array line={line}\n"));
            for e in elems {
                dump_expr(e, depth + 1, out);
            }
        }
        ExprKind::Ref { mutable, expr } => {
            out.push_str(&format!(
                "ref{} line={line}\n",
                if *mutable { " mut" } else { "" }
            ));
            dump_expr(expr, depth + 1, out);
        }
        ExprKind::Cast(e, ty) => {
            out.push_str(&format!("cast {} line={line}\n", ty.text));
            dump_expr(e, depth + 1, out);
        }
        ExprKind::Range { lo, hi } => {
            out.push_str(&format!("range line={line}\n"));
            if let Some(e) = lo {
                dump_expr(e, depth + 1, out);
            }
            if let Some(e) = hi {
                dump_expr(e, depth + 1, out);
            }
        }
        ExprKind::Return(e) => {
            out.push_str(&format!("return line={line}\n"));
            if let Some(e) = e {
                dump_expr(e, depth + 1, out);
            }
        }
        ExprKind::Break(e) => {
            out.push_str(&format!("break line={line}\n"));
            if let Some(e) = e {
                dump_expr(e, depth + 1, out);
            }
        }
        ExprKind::Continue => out.push_str(&format!("continue line={line}\n")),
        ExprKind::Try(e) => {
            out.push_str(&format!("try line={line}\n"));
            dump_expr(e, depth + 1, out);
        }
        ExprKind::MacroCall { path } => {
            out.push_str(&format!("macro {}! line={line}\n", path.join("::")));
        }
        ExprKind::StructLit { path, fields } => {
            out.push_str(&format!("structlit {} line={line}\n", path.join("::")));
            for (name, e) in fields {
                pad(depth + 1, out);
                out.push_str(&format!("fieldinit {name}\n"));
                dump_expr(e, depth + 2, out);
            }
        }
        ExprKind::Opaque => out.push_str(&format!("opaque line={line}\n")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_name_resolves_through_refs_and_paths() {
        assert_eq!(unit_name("Watts"), Some("Watts"));
        assert_eq!(unit_name("&Price"), Some("Price"));
        assert_eq!(unit_name("&mutCoreHours"), Some("CoreHours"));
        assert_eq!(unit_name("mpr_core::units::Cores"), Some("Cores"));
        assert_eq!(unit_name("f64"), None);
        assert_eq!(unit_name("Vec<Watts>"), None);
    }

    #[test]
    fn fnsig_result_detection() {
        let sig = FnSig {
            name: "sync".into(),
            self_ty: "Wal".into(),
            ret: "Result<(),WalError>".into(),
            params: vec![],
        };
        assert!(sig.returns_result());
        let io = FnSig {
            name: "open".into(),
            self_ty: String::new(),
            ret: "std::io::Result<File>".into(),
            params: vec![],
        };
        assert!(io.returns_result());
    }

    #[test]
    fn symbol_digest_ignores_record_order_but_not_content() {
        let a = FileSymbols {
            records: vec!["fn|f|f64|".into(), "method|W|get|f64|".into()],
        };
        let b = FileSymbols {
            records: vec!["method|W|get|f64|".into(), "fn|f|f64|".into()],
        };
        let ta = SymbolTable::build([&a]);
        let tb = SymbolTable::build([&b]);
        assert_eq!(ta.digest(), tb.digest());
        let c = FileSymbols {
            records: vec!["fn|f|Watts|".into(), "method|W|get|f64|".into()],
        };
        let tc = SymbolTable::build([&c]);
        assert_ne!(ta.digest(), tc.digest());
    }
}
