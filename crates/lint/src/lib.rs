//! `mpr-lint` — the workspace's static-analysis pass.
//!
//! Five rule families keep the paper-reproduction honest at scale:
//!
//! * **L1 `unit-hygiene`** — public signatures in `mpr-core`, `mpr-power`,
//!   and `mpr-sim` may not pass quantities (watts, prices, core-hours,
//!   targets, budgets) as bare `f64`; they must use the newtypes from
//!   `mpr_core::units`. `// lint: raw-f64-ok <why>` grants an audited
//!   exemption.
//! * **L2 `nan-safety`** — no `partial_cmp` on floats (panics or mis-orders
//!   on NaN) and no `==`/`!=` against float literals in library code.
//! * **L3 `panic-freedom`** — no `unwrap`/`expect`/`panic!`-family macros or
//!   unchecked indexing in non-test library code of
//!   `mpr-core`/`mpr-power`/`mpr-sim`, the crates that execute inside every
//!   simulation slot (the chaos campaign's `no-panic` oracle treats an
//!   engine panic as a safety failure).
//! * **L4 `determinism`** — no `HashMap`/`HashSet` in report/CSV modules and
//!   no `Instant`/`SystemTime` inside the simulator.
//! * **L5 `layering`** — `mpr-sim` and `mpr-cli` may not call the solver
//!   modules (`mclr::`, `opt::`, `eql::`, `vcg::`) directly; every clearing
//!   goes through the `mpr_core::mechanism::Mechanism` trait (DESIGN.md
//!   §11). `// lint: allow(layering) <why>` grants an audited exemption.
//!
//! Built without `syn` (the container is offline), on a small exact lexer —
//! see [`lexer`]. Run it with `cargo run -p mpr-lint -- check`.

pub mod lexer;
pub mod rules;

pub use rules::{
    analyze_source, analyze_source_with, FileAnalysis, Rule, RuleSet, UsedExemption, Violation,
};

use std::fs;
use std::path::{Path, PathBuf};

/// Exemption budget enforced across the whole workspace: more than this many
/// suppressions means the allowlist has become a loophole.
pub const MAX_EXEMPTIONS: usize = 10;

/// Aggregated result of linting the workspace.
#[derive(Debug, Default)]
pub struct WorkspaceReport {
    /// All violations, ordered by file then line.
    pub violations: Vec<Violation>,
    /// All exemptions that suppressed a violation.
    pub exemptions_used: Vec<UsedExemption>,
    /// Number of files analyzed.
    pub files_scanned: usize,
}

impl WorkspaceReport {
    /// True when the workspace passes: no violations and the exemption
    /// budget is respected.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.violations.is_empty() && self.exemptions_used.len() <= MAX_EXEMPTIONS
    }
}

/// Locates the workspace root at or above `start` by looking for a
/// `Cargo.toml` containing a `[workspace]` table.
#[must_use]
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

/// Lints every `crates/*/src` tree under `root` (skipping `crates/lint`
/// itself, whose sources quote the forbidden patterns).
///
/// # Errors
///
/// Returns an error when the `crates/` directory cannot be read.
pub fn analyze_workspace(root: &Path) -> std::io::Result<WorkspaceReport> {
    let mut report = WorkspaceReport::default();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        if dir.file_name().is_some_and(|n| n == "lint") {
            continue;
        }
        let src = dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs_files(&src, &mut files)?;
        files.sort();
        for file in files {
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            let Ok(text) = fs::read_to_string(&file) else {
                continue;
            };
            report.files_scanned += 1;
            let analysis = rules::analyze_source(&rel, &text);
            report.violations.extend(analysis.violations);
            report.exemptions_used.extend(analysis.exemptions_used);
        }
    }
    report.violations.sort_by_key(|v| (v.file.clone(), v.line));
    Ok(report)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Escapes a string for inclusion in hand-rolled JSON output.
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the report as a JSON object (no external serializer available
/// offline, so this is written by hand against a fixed schema).
#[must_use]
pub fn to_json(report: &WorkspaceReport) -> String {
    let mut s = String::from("{\n  \"violations\": [");
    for (i, v) in report.violations.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            json_escape(&v.file),
            v.line,
            v.rule,
            json_escape(&v.message)
        ));
    }
    if !report.violations.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("],\n  \"exemptions\": [");
    for (i, e) in report.exemptions_used.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"reason\": \"{}\"}}",
            json_escape(&e.file),
            e.line,
            e.rule,
            json_escape(&e.reason)
        ));
    }
    if !report.exemptions_used.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str(&format!(
        "],\n  \"files_scanned\": {},\n  \"ok\": {}\n}}\n",
        report.files_scanned,
        report.ok()
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping_handles_quotes_and_newlines() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn json_shape_is_stable() {
        let report = WorkspaceReport {
            violations: vec![Violation {
                file: "crates/core/src/x.rs".into(),
                line: 3,
                rule: Rule::NanSafety,
                message: "msg".into(),
            }],
            exemptions_used: vec![],
            files_scanned: 1,
        };
        let j = to_json(&report);
        assert!(j.contains("\"rule\": \"nan-safety\""));
        assert!(j.contains("\"ok\": false"));
    }
}
