//! `mpr-lint` — the workspace's static-analysis pass.
//!
//! Eight rule families keep the paper-reproduction honest at scale:
//!
//! * **L1 `unit-hygiene`** — public signatures in `mpr-core`, `mpr-power`,
//!   and `mpr-sim` may not pass quantities (watts, prices, core-hours,
//!   targets, budgets) as bare `f64`; they must use the newtypes from
//!   `mpr_core::units`. `// lint: raw-f64-ok <why>` grants an audited
//!   exemption.
//! * **L2 `nan-safety`** — no `partial_cmp` on floats (panics or mis-orders
//!   on NaN) and no `==`/`!=` against float literals in library code.
//! * **L3 `panic-freedom`** — no `unwrap`/`expect`/`panic!`-family macros or
//!   unchecked indexing in non-test library code of the crates that execute
//!   inside every simulation slot (the chaos campaign's `no-panic` oracle
//!   treats an engine panic as a safety failure).
//! * **L4 `determinism`** — no `HashMap`/`HashSet` in report/CSV modules and
//!   no `Instant`/`SystemTime` inside the simulator and satellite engines.
//! * **L5 `layering`** — `mpr-sim` and `mpr-cli` may not call the solver
//!   modules (`mclr::`, `opt::`, `eql::`, `vcg::`) directly; every clearing
//!   goes through the `mpr_core::mechanism::Mechanism` trait (DESIGN.md
//!   §11). `// lint: allow(layering) <why>` grants an audited exemption.
//! * **L6 `unit-flow`** — intraprocedural taint tracking: a raw `f64`
//!   obtained from a unit-typed value (`.get()`, `.0`, unit-returning
//!   signatures) carries that unit's provenance through locals and
//!   arithmetic; letting it reach a *different* unit's constructor, or
//!   mixing two provenances with `+`/`-`/comparisons, is an error (see
//!   [`flow`]).
//! * **L7 `error-swallowing`** — no silently discarded fallible results:
//!   `let _ = fallible()`, statement-dropped `.ok()`, and empty `Err(_)`
//!   match arms, resolved against a workspace-wide symbol table of
//!   `Result`-returning functions and methods.
//! * **L8 `parallel-determinism`** — no order-nondeterministic parallelism:
//!   `Ordering::Relaxed` atomics, parallel-iterator float reductions
//!   (`par_iter().sum()` without an intervening `collect`), and
//!   thread-count introspection.
//!
//! The engine is a hand-rolled tolerant recursive-descent parser (see
//! [`parser`]) producing an AST ([`ast`]) — no `syn`, the container is
//! offline. Every token lands either in the AST or in an *opaque region*
//! over which the legacy token-pattern rules still run, so parse failures
//! degrade precision, never recall. Warm runs reuse per-file diagnostics
//! from a content-hash cache ([`cache`]) keyed by
//! [`rules::RULESET_VERSION`] and the workspace symbol-table digest.
//! Reports are deterministic and workspace-relative (byte-identical across
//! runs and checkouts); [`to_sarif`] renders SARIF 2.1.0. Run it with
//! `cargo run -p mpr-lint -- check` or `mpr lint`.

pub mod ast;
pub mod cache;
pub mod flow;
pub mod lexer;
pub mod parser;
pub mod rules;

pub use cache::Cache;
pub use rules::{
    analyze_source, analyze_source_with, FileAnalysis, Rule, RuleSet, UsedExemption, Violation,
    RULESET_VERSION,
};

use std::fs;
use std::path::{Path, PathBuf};

/// Exemption budget enforced across the whole workspace: more than this many
/// suppressions means the allowlist has become a loophole.
pub const MAX_EXEMPTIONS: usize = 10;

/// Aggregated result of linting the workspace.
#[derive(Debug, Default)]
pub struct WorkspaceReport {
    /// All violations, ordered by file then line.
    pub violations: Vec<Violation>,
    /// All exemptions that suppressed a violation.
    pub exemptions_used: Vec<UsedExemption>,
    /// Number of files analyzed.
    pub files_scanned: usize,
}

impl WorkspaceReport {
    /// True when the workspace passes: no violations and the exemption
    /// budget is respected.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.violations.is_empty() && self.exemptions_used.len() <= MAX_EXEMPTIONS
    }
}

/// Locates the workspace root at or above `start` by looking for a
/// `Cargo.toml` containing a `[workspace]` table.
#[must_use]
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

/// Cache effectiveness counters for one workspace run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Files whose diagnostics were served from the cache.
    pub reused: usize,
    /// Files that were parsed and analyzed this run.
    pub analyzed: usize,
}

/// Lints every `crates/*/src` tree under `root` (skipping `crates/lint`
/// itself, whose sources quote the forbidden patterns).
///
/// # Errors
///
/// Returns an error when the `crates/` directory cannot be read.
pub fn analyze_workspace(root: &Path) -> std::io::Result<WorkspaceReport> {
    analyze_workspace_cached(root, None).map(|(report, _)| report)
}

/// Like [`analyze_workspace`], with an optional incremental cache.
///
/// When `cache_path` is given, the cache at that path is consulted
/// (content hash + ruleset version + symbol-table digest must all match
/// for a file's diagnostics to be reused) and rewritten afterwards. The
/// report is bit-identical with and without a cache.
///
/// # Errors
///
/// Returns an error when the `crates/` directory cannot be read. A
/// missing or corrupt cache file is treated as cold, not an error; a
/// failure to *write* the cache back is returned.
pub fn analyze_workspace_cached(
    root: &Path,
    cache_path: Option<&Path>,
) -> std::io::Result<(WorkspaceReport, CacheStats)> {
    struct Slot {
        rel: String,
        text: String,
        hash: u64,
        parsed: Option<parser::Parsed>,
        cached: Option<cache::Entry>,
        symbols: ast::FileSymbols,
    }

    let old = cache_path.map(cache::Cache::load).unwrap_or_default();

    let mut slots: Vec<Slot> = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        if dir.file_name().is_some_and(|n| n == "lint") {
            continue;
        }
        let src = dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs_files(&src, &mut files)?;
        files.sort();
        for file in files {
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            let Ok(text) = fs::read_to_string(&file) else {
                continue;
            };
            // Pass 1: establish each file's exported symbols — from the
            // cache when the content hash matches, by parsing otherwise —
            // so cross-file facts (unit-returning methods, Result-returning
            // fns) are visible to the L6/L7 rules in pass 2.
            let hash = cache::fnv1a(text.as_bytes());
            let cached = old.entries.get(&rel).filter(|e| e.hash == hash).cloned();
            let (parsed, symbols) = match &cached {
                Some(e) => (
                    None,
                    ast::FileSymbols {
                        records: e.symbols.clone(),
                    },
                ),
                None => {
                    let p = parser::parse(&text);
                    let syms = ast::FileSymbols::from_file(&p.file);
                    (Some(p), syms)
                }
            };
            slots.push(Slot {
                rel,
                text,
                hash,
                parsed,
                cached,
                symbols,
            });
        }
    }

    let symtab = ast::SymbolTable::build(slots.iter().map(|s| &s.symbols));
    let digest = symtab.digest();

    let mut report = WorkspaceReport::default();
    let mut stats = CacheStats::default();
    let mut new_cache = cache::Cache {
        symtab_digest: digest,
        entries: std::collections::BTreeMap::new(),
    };
    for slot in &mut slots {
        report.files_scanned += 1;
        let (violations, exemptions_used) = match &slot.cached {
            // Pass 2: a file's diagnostics are reusable only when its own
            // content *and* the workspace-wide symbol table are unchanged.
            Some(e) if old.symtab_digest == digest => {
                stats.reused += 1;
                e.diagnostics(&slot.rel)
            }
            _ => {
                stats.analyzed += 1;
                let p = slot
                    .parsed
                    .take()
                    .unwrap_or_else(|| parser::parse(&slot.text));
                let analysis =
                    rules::analyze_parsed(&slot.rel, &p, RuleSet::for_path(&slot.rel), &symtab);
                (analysis.violations, analysis.exemptions_used)
            }
        };
        new_cache.entries.insert(
            slot.rel.clone(),
            cache::Entry {
                hash: slot.hash,
                symbols: slot.symbols.records.clone(),
                violations: violations
                    .iter()
                    .map(|v| (v.line, v.rule.name().to_owned(), v.message.clone()))
                    .collect(),
                exemptions: exemptions_used
                    .iter()
                    .map(|e| (e.line, e.rule.name().to_owned(), e.reason.clone()))
                    .collect(),
            },
        );
        report.violations.extend(violations);
        report.exemptions_used.extend(exemptions_used);
    }
    report.violations.sort_by_key(|v| (v.file.clone(), v.line));
    if let Some(path) = cache_path {
        new_cache.store(path)?;
    }
    Ok((report, stats))
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Escapes a string for inclusion in hand-rolled JSON output.
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the report as a JSON object (no external serializer available
/// offline, so this is written by hand against a fixed schema).
#[must_use]
pub fn to_json(report: &WorkspaceReport) -> String {
    let mut s = String::from("{\n  \"violations\": [");
    for (i, v) in report.violations.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            json_escape(&v.file),
            v.line,
            v.rule,
            json_escape(&v.message)
        ));
    }
    if !report.violations.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("],\n  \"exemptions\": [");
    for (i, e) in report.exemptions_used.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"reason\": \"{}\"}}",
            json_escape(&e.file),
            e.line,
            e.rule,
            json_escape(&e.reason)
        ));
    }
    if !report.exemptions_used.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str(&format!(
        "],\n  \"files_scanned\": {},\n  \"ok\": {}\n}}\n",
        report.files_scanned,
        report.ok()
    ));
    s
}

/// Renders the report as a SARIF 2.1.0 log (hand-rolled, fixed schema).
///
/// Output is deterministic: results keep the report's (file, line) order,
/// rule metadata is emitted in a fixed order, and every artifact URI is a
/// workspace-relative path — no absolute paths, so two runs from different
/// checkouts produce byte-identical logs.
#[must_use]
pub fn to_sarif(report: &WorkspaceReport) -> String {
    const ALL_RULES: &[Rule] = &[
        Rule::UnitHygiene,
        Rule::NanSafety,
        Rule::PanicFreedom,
        Rule::Determinism,
        Rule::Layering,
        Rule::UnitFlow,
        Rule::ErrorSwallowing,
        Rule::ParallelDeterminism,
        Rule::Exemption,
    ];
    let mut s = String::from(
        "{\n  \"version\": \"2.1.0\",\n  \"$schema\": \
         \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \"runs\": [\n    {\n      \
         \"tool\": {\n        \"driver\": {\n          \"name\": \"mpr-lint\",\n          \
         \"version\": \"",
    );
    s.push_str(&format!("{RULESET_VERSION}"));
    s.push_str("\",\n          \"rules\": [");
    for (i, r) in ALL_RULES.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n            {{\"id\": \"{}\"}}",
            json_escape(r.name())
        ));
    }
    s.push_str("\n          ]\n        }\n      },\n      \"results\": [");
    for (i, v) in report.violations.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n        {{\"ruleId\": \"{}\", \"level\": \"error\", \"message\": {{\"text\": \
             \"{}\"}}, \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": \
             {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": {}}}}}}}]}}",
            v.rule,
            json_escape(&v.message),
            json_escape(&v.file),
            v.line
        ));
    }
    if !report.violations.is_empty() {
        s.push_str("\n      ");
    }
    s.push_str("]\n    }\n  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping_handles_quotes_and_newlines() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn json_shape_is_stable() {
        let report = WorkspaceReport {
            violations: vec![Violation {
                file: "crates/core/src/x.rs".into(),
                line: 3,
                rule: Rule::NanSafety,
                message: "msg".into(),
            }],
            exemptions_used: vec![],
            files_scanned: 1,
        };
        let j = to_json(&report);
        assert!(j.contains("\"rule\": \"nan-safety\""));
        assert!(j.contains("\"ok\": false"));
    }

    #[test]
    fn sarif_shape_is_stable_and_relative() {
        let report = WorkspaceReport {
            violations: vec![Violation {
                file: "crates/core/src/x.rs".into(),
                line: 3,
                rule: Rule::UnitFlow,
                message: "raw f64 crossing units".into(),
            }],
            exemptions_used: vec![],
            files_scanned: 1,
        };
        let s = to_sarif(&report);
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"ruleId\": \"unit-flow\""));
        assert!(s.contains("\"uri\": \"crates/core/src/x.rs\""));
        assert!(s.contains("\"startLine\": 3"));
        assert!(!s.contains("/root/"), "no absolute paths in SARIF output");
    }
}
