//! L6 `unit-flow` — intraprocedural taint tracking of raw `f64` values.
//!
//! A raw `f64` is born whenever a typed quantity is unwrapped: `.get()`,
//! a `.0` projection, or a call whose recorded signature returns a unit
//! newtype followed by an unwrap. The value keeps its *provenance* — the
//! set of unit types it was derived from — while it flows through locals
//! and arithmetic. The rule fires when provenance crosses a unit boundary
//! without an explicit conversion:
//!
//! * `Watts::new(price.get())` — a Price-derived raw lands in a Watts
//!   constructor;
//! * `CoreHours::new(p.get() * w.get())` — a mixed-provenance product is
//!   wrapped without going through the sanctioned `Price * Watts` operator;
//! * `p.get() + w.get()` — addition of raws carrying different units.
//!
//! Division of two raws with the *same* single-unit provenance clears the
//! taint (a ratio is dimensionless); scaling by literals keeps it. The
//! analysis is flow-insensitive within branches and tracks only simple
//! `let`-bound locals — precision degrades gracefully to "no opinion"
//! (`Val::Other`), never to a false alarm on untracked values.

use crate::ast::{
    unit_name, Block, Expr, ExprKind, File, FnItem, Item, ItemKind, Pat, PatKind, Stmt,
    SymbolTable, UNIT_TYPES,
};
use crate::rules::{Rule, Violation};
use std::collections::{BTreeMap, BTreeSet};

/// Abstract value of an expression or local.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Val {
    /// A typed unit newtype (`Watts`, `Price`, ...).
    Unit(&'static str),
    /// A raw `f64` carrying the units it was derived from (empty set =
    /// no unit provenance, e.g. a literal or an untyped parameter).
    Raw(BTreeSet<&'static str>),
    /// Anything else, or unknown.
    Other,
}

impl Val {
    fn raw_units(&self) -> Option<&BTreeSet<&'static str>> {
        match self {
            Val::Raw(s) => Some(s),
            _ => None,
        }
    }
}

/// Runs the L6 analysis over every non-test function in the file.
pub fn unit_flow(relpath: &str, file: &File, symtab: &SymbolTable, out: &mut Vec<Violation>) {
    walk_items(&file.items, relpath, symtab, out);
}

fn walk_items(items: &[Item], relpath: &str, symtab: &SymbolTable, out: &mut Vec<Violation>) {
    for item in items {
        if item.is_test {
            continue;
        }
        match &item.kind {
            ItemKind::Fn(f) => analyze_fn(f, relpath, symtab, out),
            ItemKind::Mod { items, .. }
            | ItemKind::Impl { items, .. }
            | ItemKind::Trait { items, .. } => walk_items(items, relpath, symtab, out),
            _ => {}
        }
    }
}

fn analyze_fn(f: &FnItem, relpath: &str, symtab: &SymbolTable, out: &mut Vec<Violation>) {
    let Some(body) = &f.body else { return };
    let mut ctx = FlowCtx {
        relpath,
        symtab,
        out,
        env: BTreeMap::new(),
    };
    for p in &f.params {
        let v = if let Some(u) = p.ty.unit() {
            Val::Unit(u)
        } else if p.ty.is_bare_f64() {
            Val::Raw(BTreeSet::new())
        } else {
            Val::Other
        };
        ctx.env.insert(p.name.clone(), v);
    }
    ctx.block(body);
}

struct FlowCtx<'a> {
    relpath: &'a str,
    symtab: &'a SymbolTable,
    out: &'a mut Vec<Violation>,
    env: BTreeMap<String, Val>,
}

impl FlowCtx<'_> {
    fn push(&mut self, line: u32, message: String) {
        self.out.push(Violation {
            file: self.relpath.to_string(),
            line,
            rule: Rule::UnitFlow,
            message,
        });
    }

    fn block(&mut self, b: &Block) {
        for stmt in &b.stmts {
            match stmt {
                Stmt::Let {
                    pat, ty, init, els, ..
                } => {
                    let mut val = Val::Other;
                    if let Some(e) = init {
                        val = self.eval(e);
                    }
                    if let Some(t) = ty {
                        // An explicit annotation wins: the compiler enforces
                        // it, so trust it over our inference.
                        if let Some(u) = t.unit() {
                            val = Val::Unit(u);
                        } else if t.is_bare_f64() && matches!(val, Val::Other) {
                            val = Val::Raw(BTreeSet::new());
                        }
                    }
                    if let PatKind::Ident(name) = &pat.kind {
                        self.env.insert(name.clone(), val);
                    } else {
                        self.bind_other(pat);
                    }
                    if let Some(b) = els {
                        self.block(b);
                    }
                }
                Stmt::Expr { expr, .. } => {
                    self.eval(expr);
                }
                Stmt::Item(_) => {}
            }
        }
    }

    /// Binds every name in a destructuring pattern to `Other`.
    fn bind_other(&mut self, pat: &Pat) {
        match &pat.kind {
            PatKind::Ident(name) => {
                self.env.insert(name.clone(), Val::Other);
            }
            PatKind::TupleStruct { elems, .. }
            | PatKind::Tuple(elems)
            | PatKind::Slice(elems)
            | PatKind::Or(elems) => {
                for p in elems {
                    self.bind_other(p);
                }
            }
            _ => {}
        }
    }

    /// Evaluates an expression's abstract value, emitting violations at
    /// unit-boundary sinks along the way. Each expression node is evaluated
    /// exactly once per enclosing statement walk.
    #[allow(clippy::too_many_lines)]
    fn eval(&mut self, e: &Expr) -> Val {
        match &e.kind {
            ExprKind::Float(_) => Val::Raw(BTreeSet::new()),
            ExprKind::Int(_) | ExprKind::Str | ExprKind::Char => Val::Other,
            ExprKind::Path(segs) => self.eval_path(segs),
            ExprKind::Unary(op, x) => {
                let v = self.eval(x);
                if *op == "-" {
                    v
                } else if *op == "*" {
                    // Deref of `&f64`/`&Watts` keeps the value.
                    v
                } else {
                    Val::Other
                }
            }
            ExprKind::Ref { expr, .. } => self.eval(expr),
            ExprKind::Try(x) => {
                self.eval(x);
                Val::Other
            }
            ExprKind::Cast(x, ty) => {
                let v = self.eval(x);
                if ty.text == "f64" {
                    v
                } else {
                    Val::Other
                }
            }
            ExprKind::Field(recv, name) => self.eval_field(recv, name),
            ExprKind::MethodCall { recv, method, args } => self.eval_method(e, recv, method, args),
            ExprKind::Call(callee, args) => self.eval_call(e, callee, args),
            ExprKind::Binary(op, a, b) => self.eval_binary(e, op, a, b),
            ExprKind::Closure { params, body } => {
                // Closure params shadow the environment; evaluate the body
                // with them masked so outer units are not misattributed.
                let saved = self.env.clone();
                for p in params {
                    self.env.insert(p.clone(), Val::Other);
                }
                self.eval(body);
                self.env = saved;
                Val::Other
            }
            ExprKind::If { cond, then, els } => {
                self.eval(cond);
                self.block(then);
                if let Some(x) = els {
                    self.eval(x);
                }
                Val::Other
            }
            ExprKind::IfLet {
                pat,
                scrutinee,
                then,
                els,
            } => {
                self.eval(scrutinee);
                self.bind_other(pat);
                self.block(then);
                if let Some(x) = els {
                    self.eval(x);
                }
                Val::Other
            }
            ExprKind::Match { scrutinee, arms } => {
                self.eval(scrutinee);
                for arm in arms {
                    let saved = self.env.clone();
                    self.bind_other(&arm.pat);
                    if let Some(g) = &arm.guard {
                        self.eval(g);
                    }
                    self.eval(&arm.body);
                    self.env = saved;
                }
                Val::Other
            }
            ExprKind::While { cond, body } => {
                self.eval(cond);
                self.block(body);
                Val::Other
            }
            ExprKind::For { pat, iter, body } => {
                self.eval(iter);
                let saved = self.env.clone();
                self.bind_other(pat);
                self.block(body);
                self.env = saved;
                Val::Other
            }
            ExprKind::Loop(b) | ExprKind::Block(b) => {
                self.block(b);
                Val::Other
            }
            ExprKind::Tuple(xs) | ExprKind::Array(xs) => {
                for x in xs {
                    self.eval(x);
                }
                Val::Other
            }
            ExprKind::StructLit { fields, .. } => {
                for (_, x) in fields {
                    self.eval(x);
                }
                Val::Other
            }
            ExprKind::Range { lo, hi } => {
                if let Some(x) = lo {
                    self.eval(x);
                }
                if let Some(x) = hi {
                    self.eval(x);
                }
                Val::Other
            }
            ExprKind::Return(x) | ExprKind::Break(x) => {
                if let Some(x) = x {
                    self.eval(x);
                }
                Val::Other
            }
            ExprKind::Index(a, b) => {
                self.eval(a);
                self.eval(b);
                Val::Other
            }
            ExprKind::MacroCall { .. } | ExprKind::Continue | ExprKind::Opaque => Val::Other,
        }
    }

    fn eval_path(&mut self, segs: &[String]) -> Val {
        if segs.len() == 1 {
            return self.env.get(&segs[0]).cloned().unwrap_or(Val::Other);
        }
        // `Watts::ZERO`, `Watts::MAX` and friends are unit-typed constants.
        if segs.len() == 2 {
            if let Some(u) = UNIT_TYPES.iter().find(|u| **u == segs[0]) {
                let upper = segs[1].chars().all(|c| c.is_ascii_uppercase() || c == '_');
                if upper {
                    return Val::Unit(u);
                }
            }
        }
        Val::Other
    }

    fn eval_field(&mut self, recv: &Expr, name: &str) -> Val {
        let rv = self.eval(recv);
        // `.0` on a unit newtype is the raw payload.
        if name == "0" {
            if let Val::Unit(u) = rv {
                let mut s = BTreeSet::new();
                s.insert(u);
                return Val::Raw(s);
            }
            return Val::Other;
        }
        // Named field: if exactly one known struct has a field of this name
        // with a unit type, trust it.
        let mut found: Option<&str> = None;
        let mut ambiguous = false;
        for fields in self.symtab.fields.values() {
            if let Some(ty) = fields.get(name) {
                if found.is_some_and(|prev| prev != ty.as_str()) {
                    ambiguous = true;
                }
                found = Some(ty);
            }
        }
        if !ambiguous {
            if let Some(u) = found.and_then(unit_name) {
                return Val::Unit(u);
            }
        }
        Val::Other
    }

    fn eval_method(&mut self, e: &Expr, recv: &Expr, method: &str, args: &[Expr]) -> Val {
        let rv = self.eval(recv);
        let arg_vals: Vec<Val> = args.iter().map(|a| self.eval(a)).collect();

        // Unwrap: `.get()` / `.into_inner()` on a unit-typed receiver.
        if matches!(method, "get" | "into_inner" | "value" | "raw") {
            if let Val::Unit(u) = rv {
                let mut s = BTreeSet::new();
                s.insert(u);
                return Val::Raw(s);
            }
        }
        // Unit-preserving combinators (defined per-unit in the macro body,
        // invisible to the symbol table).
        if matches!(
            method,
            "max" | "min" | "abs" | "clamp" | "saturating_sub" | "saturating_add"
        ) {
            if let Val::Unit(u) = rv {
                return Val::Unit(u);
            }
            // Raw combinators merge provenance: `p.get().max(w.get())`.
            if let Val::Raw(mut s) = rv {
                for av in &arg_vals {
                    if let Some(units) = av.raw_units() {
                        s.extend(units.iter().copied());
                    }
                }
                self.check_mixed(e.line, &s, method);
                return Val::Raw(s);
            }
        }
        // Raw-returning float methods keep provenance.
        if matches!(
            method,
            "sqrt" | "powi" | "powf" | "ln" | "log10" | "exp" | "floor" | "ceil" | "round"
        ) {
            if let Val::Raw(s) = rv {
                return Val::Raw(s);
            }
        }
        // A recorded signature returning a unit newtype.
        if let Some(u) = self.symtab.method_unit_ret(method) {
            return Val::Unit(u);
        }
        Val::Other
    }

    fn eval_call(&mut self, e: &Expr, callee: &Expr, args: &[Expr]) -> Val {
        let arg_vals: Vec<Val> = args.iter().map(|a| self.eval(a)).collect();
        let ExprKind::Path(segs) = &callee.kind else {
            self.eval(callee);
            return Val::Other;
        };
        // `U::new(raw)` — the one sanctioned constructor, checked for
        // cross-unit provenance.
        if segs.len() >= 2 && segs[segs.len() - 1] == "new" {
            let head = &segs[segs.len() - 2];
            if let Some(u) = UNIT_TYPES.iter().find(|u| **u == *head) {
                if let Some(Some(s)) = arg_vals.first().map(Val::raw_units) {
                    let crosses = !s.is_empty() && (s.len() != 1 || !s.contains(u));
                    if crosses {
                        let from = s.iter().copied().collect::<Vec<_>>().join(" and ");
                        self.push(
                            e.line,
                            format!(
                                "raw f64 derived from {from} flows into `{u}::new` without \
                                 an explicit conversion; use the unit conversion API or add \
                                 `// lint: allow(unit-flow) <why>`"
                            ),
                        );
                    }
                }
                return Val::Unit(u);
            }
        }
        // A recorded free-fn signature tells us the produced value's type.
        if let Some(name) = segs.last() {
            if let Some(sigs) = self.symtab.fns.get(name) {
                if sigs.len() == 1 {
                    if let Some(u) = unit_name(&sigs[0].ret) {
                        return Val::Unit(u);
                    }
                    if sigs[0].ret == "f64" {
                        return Val::Raw(BTreeSet::new());
                    }
                }
            }
        }
        Val::Other
    }

    fn eval_binary(&mut self, e: &Expr, op: &str, a: &Expr, b: &Expr) -> Val {
        // Assignment: re-bind simple locals, no value.
        if op == "=" || op.ends_with('=') && matches!(op, "+=" | "-=" | "*=" | "/=") {
            let rv = self.eval(b);
            if let ExprKind::Path(segs) = &a.kind {
                if segs.len() == 1 {
                    if op == "=" {
                        self.env.insert(segs[0].clone(), rv);
                    }
                    return Val::Other;
                }
            }
            self.eval(a);
            return Val::Other;
        }
        let va = self.eval(a);
        let vb = self.eval(b);
        match (op, &va, &vb) {
            // Typed unit arithmetic: the compiler already checks it.
            (_, Val::Unit(u), Val::Unit(v)) => match op {
                "+" | "-" if u == v => Val::Unit(u),
                "/" if u == v => Val::Raw(BTreeSet::new()),
                _ => Val::Other,
            },
            // Unit scaled by a raw (`w * 1.1`): unit-preserving ops only.
            ("*" | "/", Val::Unit(u), Val::Raw(s)) if s.is_empty() => Val::Unit(u),
            ("*", Val::Raw(s), Val::Unit(u)) if s.is_empty() => Val::Unit(u),
            // Raw-raw arithmetic: provenance algebra. Division *cancels* the
            // denominator's dimension rather than acquiring it (`b / price`
            // converts $-weighted sums back to watts in Eqn. (5)-style
            // closed forms), so only the numerator's provenance survives.
            (_, Val::Raw(sa), Val::Raw(sb)) => {
                if op == "/" {
                    if sa.len() == 1 && sa == sb {
                        return Val::Raw(BTreeSet::new());
                    }
                    return Val::Raw(sa.clone());
                }
                let union: BTreeSet<&'static str> = sa.union(sb).copied().collect();
                if matches!(op, "+" | "-") && !sa.is_empty() && !sb.is_empty() && sa != sb {
                    let from = union.iter().copied().collect::<Vec<_>>().join(" and ");
                    self.push(
                        e.line,
                        format!(
                            "`{op}` mixes raw f64 values derived from {from}; convert to a \
                             common unit first or add `// lint: allow(unit-flow) <why>`"
                        ),
                    );
                }
                if matches!(op, "<" | ">" | "<=" | ">=" | "==" | "!=") {
                    if !sa.is_empty() && !sb.is_empty() && sa != sb {
                        let from = union.iter().copied().collect::<Vec<_>>().join(" and ");
                        self.push(
                            e.line,
                            format!(
                                "comparison mixes raw f64 values derived from {from}; \
                                 compare typed units instead or add \
                                 `// lint: allow(unit-flow) <why>`"
                            ),
                        );
                    }
                    return Val::Other;
                }
                Val::Raw(union)
            }
            // One tracked side, one unknown: keep the tracked provenance for
            // taint-acquiring ops (`p.get() * n as f64` stays tainted), but a
            // tainted *denominator* divides its dimension out.
            ("/", Val::Raw(s), _) => Val::Raw(s.clone()),
            ("/", _, Val::Raw(_)) => Val::Raw(BTreeSet::new()),
            ("+" | "-" | "*", Val::Raw(s), _) | ("+" | "-" | "*", _, Val::Raw(s)) => {
                Val::Raw(s.clone())
            }
            _ => Val::Other,
        }
    }

    /// Mixed-provenance check for raw combinators like `.max(..)`.
    fn check_mixed(&mut self, line: u32, units: &BTreeSet<&'static str>, method: &str) {
        if units.len() > 1 {
            let from = units.iter().copied().collect::<Vec<_>>().join(" and ");
            self.push(
                line,
                format!(
                    "`.{method}()` combines raw f64 values derived from {from}; convert \
                     to a common unit first or add `// lint: allow(unit-flow) <why>`"
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::rules::{analyze_source_with, Rule, RuleSet};

    fn run_flow(src: &str) -> Vec<u32> {
        let rules = RuleSet {
            unit_flow: true,
            ..RuleSet::default()
        };
        analyze_source_with("crates/core/src/x.rs", src, rules)
            .violations
            .iter()
            .filter(|v| v.rule == Rule::UnitFlow)
            .map(|v| v.line)
            .collect()
    }

    #[test]
    fn cross_unit_constructor_is_flagged() {
        let lines = run_flow(
            "fn f(p: Price) -> Watts {\n\
                 Watts::new(p.get())\n\
             }\n",
        );
        assert_eq!(lines, vec![2]);
    }

    #[test]
    fn taint_flows_through_locals() {
        let lines = run_flow(
            "fn f(p: Price) -> Watts {\n\
                 let x = p.get();\n\
                 let y = x * 2.0;\n\
                 Watts::new(y)\n\
             }\n",
        );
        assert_eq!(lines, vec![4]);
    }

    #[test]
    fn mixed_addition_is_flagged() {
        let lines = run_flow(
            "fn f(p: Price, w: Watts) -> f64 {\n\
                 p.get() + w.get()\n\
             }\n",
        );
        assert_eq!(lines, vec![2]);
    }

    #[test]
    fn sanctioned_patterns_are_clean() {
        let lines = run_flow(
            "fn f(w: Watts, cap: Watts, x: f64) -> f64 {\n\
                 let rewrap = Watts::new(w.get() * 1.1);\n\
                 let fresh = Watts::new(x);\n\
                 let lit = Watts::new(42.0);\n\
                 let ratio = w.get() / cap.get();\n\
                 let _ = (rewrap, fresh, lit);\n\
                 ratio\n\
             }\n",
        );
        assert_eq!(lines, Vec::<u32>::new());
    }

    #[test]
    fn tuple_projection_carries_provenance() {
        let lines = run_flow(
            "fn f(p: Price) -> Watts {\n\
                 Watts::new(p.0)\n\
             }\n",
        );
        assert_eq!(lines, vec![2]);
    }

    #[test]
    fn derived_product_crossing_units_is_flagged() {
        let lines = run_flow(
            "fn f(p: Price, w: Watts) -> CoreHours {\n\
                 CoreHours::new(p.get() * w.get())\n\
             }\n",
        );
        assert_eq!(lines, vec![2]);
    }
}
