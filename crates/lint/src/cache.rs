//! Incremental lint cache: content-hash → diagnostics.
//!
//! A warm `mpr-lint` run must not re-parse files that have not changed, so
//! the cache persists three things per file:
//!
//! 1. an FNV-1a hash of the file's bytes,
//! 2. the file's exported [`FileSymbols`](crate::ast::FileSymbols) records
//!    (so the workspace [`SymbolTable`](crate::ast::SymbolTable) can be
//!    rebuilt without parsing), and
//! 3. the diagnostics (violations + used exemptions) the engine produced.
//!
//! Two global keys guard reuse:
//!
//! * [`RULESET_VERSION`](crate::rules::RULESET_VERSION) — bumping the rule
//!   engine invalidates the whole cache, and
//! * the workspace symbol-table digest — cross-file rules (L6 unit-flow,
//!   L7 error-swallowing) read other files' signatures, so an export change
//!   anywhere invalidates every file's *diagnostics* (per-file symbols of
//!   unchanged files are still reused to rebuild the table cheaply).
//!
//! The on-disk format is a line-oriented text file (no serde offline);
//! any parse problem is treated as a cold cache, never an error.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

use crate::rules::{Rule, UsedExemption, Violation, RULESET_VERSION};

/// 64-bit FNV-1a over raw bytes — the per-file content key.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Cached state for one workspace file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Entry {
    /// FNV-1a of the file content this entry was computed from.
    pub hash: u64,
    /// The file's exported symbol records (see `FileSymbols::records`).
    pub symbols: Vec<String>,
    /// Violations as `(line, rule-name, message)`.
    pub violations: Vec<(u32, String, String)>,
    /// Used exemptions as `(line, rule-name, reason)`.
    pub exemptions: Vec<(u32, String, String)>,
}

impl Entry {
    /// Reconstructs the diagnostics for `file` from this entry.
    #[must_use]
    pub fn diagnostics(&self, file: &str) -> (Vec<Violation>, Vec<UsedExemption>) {
        let violations = self
            .violations
            .iter()
            .filter_map(|(line, rule, message)| {
                Some(Violation {
                    file: file.to_owned(),
                    line: *line,
                    rule: rule_from_cache(rule)?,
                    message: message.clone(),
                })
            })
            .collect();
        let exemptions = self
            .exemptions
            .iter()
            .filter_map(|(line, rule, reason)| {
                Some(UsedExemption {
                    file: file.to_owned(),
                    line: *line,
                    rule: rule_from_cache(rule)?,
                    reason: reason.clone(),
                })
            })
            .collect();
        (violations, exemptions)
    }
}

fn rule_from_cache(name: &str) -> Option<Rule> {
    if name == "exemption" {
        Some(Rule::Exemption)
    } else {
        Rule::from_name(name)
    }
}

/// The whole persisted cache.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Cache {
    /// Symbol-table digest the diagnostics were computed under.
    pub symtab_digest: u64,
    /// Per-file entries, keyed by workspace-relative path.
    pub entries: BTreeMap<String, Entry>,
}

impl Cache {
    /// Loads a cache from `path`. Returns an empty cache when the file is
    /// missing, unreadable, malformed, or written by a different
    /// `RULESET_VERSION` — a cold cache is always safe.
    #[must_use]
    pub fn load(path: &Path) -> Cache {
        let Ok(text) = fs::read_to_string(path) else {
            return Cache::default();
        };
        parse(&text).unwrap_or_default()
    }

    /// Writes the cache to `path`, creating parent directories as needed.
    ///
    /// # Errors
    ///
    /// Returns an error when the file cannot be written.
    pub fn store(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.render())
    }

    /// Serializes the cache to its line-oriented text format.
    #[must_use]
    pub fn render(&self) -> String {
        let mut s = format!(
            "mpr-lint-cache v{RULESET_VERSION} digest {:016x}\n",
            self.symtab_digest
        );
        for (file, e) in &self.entries {
            s.push_str(&format!("file {:016x} {}\n", e.hash, escape(file)));
            for rec in &e.symbols {
                s.push_str(&format!("sym {}\n", escape(rec)));
            }
            for (line, rule, msg) in &e.violations {
                s.push_str(&format!("viol {line} {rule} {}\n", escape(msg)));
            }
            for (line, rule, reason) in &e.exemptions {
                s.push_str(&format!("exempt {line} {rule} {}\n", escape(reason)));
            }
        }
        s
    }
}

fn parse(text: &str) -> Option<Cache> {
    let mut lines = text.lines();
    let header = lines.next()?;
    let mut hp = header.split(' ');
    if hp.next() != Some("mpr-lint-cache") {
        return None;
    }
    let version = hp.next()?.strip_prefix('v')?;
    if version.parse::<u32>().ok()? != RULESET_VERSION {
        return None;
    }
    if hp.next() != Some("digest") {
        return None;
    }
    let symtab_digest = u64::from_str_radix(hp.next()?, 16).ok()?;

    let mut entries = BTreeMap::new();
    let mut current: Option<(String, Entry)> = None;
    for line in lines {
        let (kind, rest) = line.split_once(' ')?;
        match kind {
            "file" => {
                if let Some((name, e)) = current.take() {
                    entries.insert(name, e);
                }
                let (hash, name) = rest.split_once(' ')?;
                current = Some((
                    unescape(name),
                    Entry {
                        hash: u64::from_str_radix(hash, 16).ok()?,
                        ..Entry::default()
                    },
                ));
            }
            "sym" => current.as_mut()?.1.symbols.push(unescape(rest)),
            "viol" | "exempt" => {
                let (line_no, rest) = rest.split_once(' ')?;
                let (rule, text) = rest.split_once(' ')?;
                let row = (line_no.parse().ok()?, rule.to_owned(), unescape(text));
                let e = &mut current.as_mut()?.1;
                if kind == "viol" {
                    e.violations.push(row);
                } else {
                    e.exemptions.push(row);
                }
            }
            _ => return None,
        }
    }
    if let Some((name, e)) = current.take() {
        entries.insert(name, e);
    }
    Some(Cache {
        symtab_digest,
        entries,
    })
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut it = s.chars();
    while let Some(c) = it.next() {
        if c == '\\' {
            match it.next() {
                Some('n') => out.push('\n'),
                Some(other) => out.push(other),
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Cache {
        let mut entries = BTreeMap::new();
        entries.insert(
            "crates/core/src/x.rs".to_owned(),
            Entry {
                hash: 0xdead_beef,
                symbols: vec!["fn|get|f64|".to_owned()],
                violations: vec![(3, "nan-safety".to_owned(), "msg with\nnewline".to_owned())],
                exemptions: vec![(7, "unit-hygiene".to_owned(), "why \\ back".to_owned())],
            },
        );
        Cache {
            symtab_digest: 42,
            entries,
        }
    }

    #[test]
    fn roundtrips_through_text() {
        let c = sample();
        assert_eq!(parse(&c.render()), Some(c));
    }

    #[test]
    fn rejects_other_ruleset_version() {
        let text = sample()
            .render()
            .replace(&format!("v{RULESET_VERSION}"), "v999");
        assert_eq!(parse(&text), None);
    }

    #[test]
    fn garbage_is_a_cold_cache() {
        assert_eq!(parse("not a cache"), None);
        assert_eq!(parse(""), None);
        assert_eq!(Cache::load(Path::new("/nonexistent/p")), Cache::default());
    }

    #[test]
    fn diagnostics_reconstruct_rules() {
        let c = sample();
        let e = &c.entries["crates/core/src/x.rs"];
        let (v, x) = e.diagnostics("crates/core/src/x.rs");
        assert_eq!(v.len(), 1);
        assert_eq!(v.first().map(|v| v.rule), Some(Rule::NanSafety));
        assert_eq!(x.len(), 1);
        assert_eq!(x.first().map(|x| x.line), Some(7));
    }

    #[test]
    fn fnv_is_stable_and_content_sensitive() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }
}
