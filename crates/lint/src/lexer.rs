//! A small, self-contained Rust lexer.
//!
//! The offline build container cannot fetch `syn`, so the lint carries its
//! own tokenizer. It does not need to *parse* Rust — the rules in
//! [`crate::rules`] work on token patterns — but it must be exact about the
//! things token-pattern rules are easily fooled by: string literals, char
//! literals vs. lifetimes, raw strings, nested block comments, and line
//! numbers. Comments are not emitted as tokens, with one exception: line
//! comments beginning with `lint:` are collected separately so the rules can
//! honor audited exemptions.

/// Token category. String/char literal *contents* are discarded so rule
/// patterns can never match text inside a literal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers, prefix stripped).
    Ident,
    /// Integer literal.
    Int,
    /// Float literal (has a fractional part, exponent, or `f32`/`f64` suffix).
    Float,
    /// Punctuation; multi-char operators like `::`, `->`, `==` are one token.
    Punct,
    /// String literal (plain, raw, or byte); text is not retained.
    Str,
    /// Char or byte literal; text is not retained.
    Char,
    /// Lifetime such as `'a`.
    Lifetime,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Category of the token.
    pub kind: TokKind,
    /// Source text (empty for string/char literals).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// A `// lint: ...` exemption comment found during lexing.
#[derive(Debug, Clone)]
pub struct ExemptionComment {
    /// 1-based line the comment sits on.
    pub line: u32,
    /// Comment body after the `lint:` marker, trimmed.
    pub body: String,
}

/// Result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All tokens in source order.
    pub toks: Vec<Tok>,
    /// All `// lint:` comments, in source order.
    pub exemptions: Vec<ExemptionComment>,
}

/// Multi-character operators emitted as single tokens, longest first.
/// `>>`/`<<` are deliberately absent so `Vec<Vec<f64>>` closes generics with
/// two `>` tokens, which keeps angle-bracket matching simple.
const MULTI_PUNCT: &[&str] = &[
    "..=", "::", "->", "=>", "==", "!=", "<=", ">=", "..", "&&", "||", "+=", "-=", "*=", "/=",
];

/// Lexes `src` into tokens and exemption comments.
#[must_use]
pub fn lex(src: &str) -> Lexed {
    let bytes: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let n = bytes.len();

    let is_ident_start = |c: char| c.is_alphabetic() || c == '_';
    let is_ident_cont = |c: char| c.is_alphanumeric() || c == '_';

    while i < n {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && bytes[i + 1] == '/' => {
                // Line comment (plain or doc). Capture the body to detect
                // `lint:` exemption markers; everything else is discarded.
                let start = i + 2;
                let mut j = start;
                while j < n && bytes[j] != '\n' {
                    j += 1;
                }
                let text: String = bytes[start..j].iter().collect();
                let trimmed = text.trim_start_matches(['/', '!']).trim();
                if let Some(body) = trimmed.strip_prefix("lint:") {
                    out.exemptions.push(ExemptionComment {
                        line,
                        body: body.trim().to_string(),
                    });
                }
                i = j;
            }
            '/' if i + 1 < n && bytes[i + 1] == '*' => {
                // Block comment, possibly nested.
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < n && depth > 0 {
                    if bytes[j] == '\n' {
                        line += 1;
                        j += 1;
                    } else if bytes[j] == '/' && j + 1 < n && bytes[j + 1] == '*' {
                        depth += 1;
                        j += 2;
                    } else if bytes[j] == '*' && j + 1 < n && bytes[j + 1] == '/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                i = j;
            }
            '"' => {
                i = skip_string(&bytes, i, &mut line);
                out.toks.push(Tok {
                    kind: TokKind::Str,
                    text: String::new(),
                    line,
                });
            }
            '\'' => {
                // Lifetime vs. char literal: a lifetime is `'` + ident chars
                // *not* followed by a closing quote.
                let mut j = i + 1;
                if j < n && is_ident_start(bytes[j]) {
                    let mut k = j;
                    while k < n && is_ident_cont(bytes[k]) {
                        k += 1;
                    }
                    if k < n && bytes[k] == '\'' && k == j + 1 {
                        // Single ident char then quote: char literal 'x'.
                        out.toks.push(Tok {
                            kind: TokKind::Char,
                            text: String::new(),
                            line,
                        });
                        i = k + 1;
                    } else {
                        let text: String = bytes[i..k].iter().collect();
                        out.toks.push(Tok {
                            kind: TokKind::Lifetime,
                            text,
                            line,
                        });
                        i = k;
                    }
                } else {
                    // Escaped or symbolic char literal: '\n', '\'', '0'...
                    if j < n && bytes[j] == '\\' {
                        j += 2; // skip the escape lead and the escaped char
                        while j < n && bytes[j] != '\'' {
                            j += 1; // \u{1F600} style escapes
                        }
                    } else if j < n {
                        j += 1;
                    }
                    out.toks.push(Tok {
                        kind: TokKind::Char,
                        text: String::new(),
                        line,
                    });
                    i = (j + 1).min(n);
                }
            }
            'r' | 'b' if starts_raw_or_byte_literal(&bytes, i) => {
                i = skip_prefixed_literal(&bytes, i, &mut line, &mut out.toks);
            }
            c if is_ident_start(c) => {
                let start = i;
                let mut j = i;
                while j < n && is_ident_cont(bytes[j]) {
                    j += 1;
                }
                let text: String = bytes[start..j].iter().collect();
                out.toks.push(Tok {
                    kind: TokKind::Ident,
                    text,
                    line,
                });
                i = j;
            }
            c if c.is_ascii_digit() => {
                let (tok, j) = lex_number(&bytes, i, line);
                out.toks.push(tok);
                i = j;
            }
            '#' if i + 1 < n && bytes[i + 1] == '#' => {
                // `r##"` handled above; stray `##` in macros: two puncts.
                out.toks.push(Tok {
                    kind: TokKind::Punct,
                    text: "#".into(),
                    line,
                });
                i += 1;
            }
            _ => {
                let mut matched = false;
                for op in MULTI_PUNCT {
                    let len = op.chars().count();
                    if i + len <= n && bytes[i..i + len].iter().collect::<String>() == **op {
                        out.toks.push(Tok {
                            kind: TokKind::Punct,
                            text: (*op).to_string(),
                            line,
                        });
                        i += len;
                        matched = true;
                        break;
                    }
                }
                if !matched {
                    out.toks.push(Tok {
                        kind: TokKind::Punct,
                        text: c.to_string(),
                        line,
                    });
                    i += 1;
                }
            }
        }
    }
    out
}

/// True when the `r`/`b` at `i` starts a raw string, byte string, byte char,
/// or raw identifier — anything needing special handling over plain idents.
fn starts_raw_or_byte_literal(bytes: &[char], i: usize) -> bool {
    let n = bytes.len();
    match bytes[i] {
        'r' => {
            // r"..."  r#"..."#  r#ident  br"..." is handled from 'b'.
            i + 1 < n && (bytes[i + 1] == '"' || bytes[i + 1] == '#')
        }
        'b' => {
            if i + 1 >= n {
                return false;
            }
            match bytes[i + 1] {
                '"' | '\'' => true,
                'r' => i + 2 < n && (bytes[i + 2] == '"' || bytes[i + 2] == '#'),
                _ => false,
            }
        }
        _ => false,
    }
}

/// Skips a plain (escaped) string starting at the `"` at `i`; returns the
/// index just past the closing quote and updates `line`.
fn skip_string(bytes: &[char], i: usize, line: &mut u32) -> usize {
    let n = bytes.len();
    let mut j = i + 1;
    while j < n {
        match bytes[j] {
            '\\' => j += 2,
            '\n' => {
                *line += 1;
                j += 1;
            }
            '"' => return j + 1,
            _ => j += 1,
        }
    }
    n
}

/// Handles `r"…"`, `r#…#`, `r#ident`, `b"…"`, `b'…'`, `br#"…"#` starting at
/// index `i`. Pushes the resulting token and returns the index past it.
fn skip_prefixed_literal(bytes: &[char], i: usize, line: &mut u32, toks: &mut Vec<Tok>) -> usize {
    let n = bytes.len();
    let start_line = *line;
    let mut j = i;
    if bytes[j] == 'b' {
        j += 1;
        if j < n && bytes[j] == '\'' {
            // Byte char literal b'x' / b'\n'.
            let mut k = j + 1;
            if k < n && bytes[k] == '\\' {
                k += 2;
            } else if k < n {
                k += 1;
            }
            while k < n && bytes[k] != '\'' {
                k += 1;
            }
            toks.push(Tok {
                kind: TokKind::Char,
                text: String::new(),
                line: start_line,
            });
            return (k + 1).min(n);
        }
        if j < n && bytes[j] == '"' {
            let end = skip_string(bytes, j, line);
            toks.push(Tok {
                kind: TokKind::Str,
                text: String::new(),
                line: start_line,
            });
            return end;
        }
        // br... falls through to the raw-string logic below.
    }
    if j < n && bytes[j] == 'r' {
        j += 1;
    }
    // Count leading hashes of a raw string, or detect a raw identifier.
    let mut hashes = 0usize;
    while j < n && bytes[j] == '#' {
        hashes += 1;
        j += 1;
    }
    if j < n && bytes[j] == '"' {
        // Raw string: scan for `"` followed by `hashes` hashes.
        let mut k = j + 1;
        while k < n {
            if bytes[k] == '\n' {
                *line += 1;
                k += 1;
                continue;
            }
            if bytes[k] == '"' {
                let mut h = 0usize;
                while k + 1 + h < n && h < hashes && bytes[k + 1 + h] == '#' {
                    h += 1;
                }
                if h == hashes {
                    toks.push(Tok {
                        kind: TokKind::Str,
                        text: String::new(),
                        line: start_line,
                    });
                    return k + 1 + hashes;
                }
            }
            k += 1;
        }
        toks.push(Tok {
            kind: TokKind::Str,
            text: String::new(),
            line: start_line,
        });
        return n;
    }
    if hashes == 1 && j < n && (bytes[j].is_alphabetic() || bytes[j] == '_') {
        // Raw identifier r#type — emit as a plain ident.
        let mut k = j;
        while k < n && (bytes[k].is_alphanumeric() || bytes[k] == '_') {
            k += 1;
        }
        let text: String = bytes[j..k].iter().collect();
        toks.push(Tok {
            kind: TokKind::Ident,
            text,
            line: start_line,
        });
        return k;
    }
    // Lone `r` / `b` ident followed by `#` punctuation (macro input, etc.).
    toks.push(Tok {
        kind: TokKind::Ident,
        text: bytes[i].to_string(),
        line: start_line,
    });
    i + 1
}

/// Lexes a numeric literal starting at digit `i`; returns the token and the
/// index just past it.
fn lex_number(bytes: &[char], i: usize, line: u32) -> (Tok, usize) {
    let n = bytes.len();
    let mut j = i;
    let mut float = false;
    if bytes[j] == '0' && j + 1 < n && matches!(bytes[j + 1], 'x' | 'o' | 'b') {
        j += 2;
        while j < n && (bytes[j].is_ascii_hexdigit() || bytes[j] == '_') {
            j += 1;
        }
    } else {
        while j < n && (bytes[j].is_ascii_digit() || bytes[j] == '_') {
            j += 1;
        }
        // Fractional part only when a digit follows the dot, so `0..10`
        // and `1.max(2)` are not misread as floats.
        if j + 1 < n && bytes[j] == '.' && bytes[j + 1].is_ascii_digit() {
            float = true;
            j += 1;
            while j < n && (bytes[j].is_ascii_digit() || bytes[j] == '_') {
                j += 1;
            }
        }
        if j < n && matches!(bytes[j], 'e' | 'E') {
            let mut k = j + 1;
            if k < n && matches!(bytes[k], '+' | '-') {
                k += 1;
            }
            if k < n && bytes[k].is_ascii_digit() {
                float = true;
                j = k;
                while j < n && (bytes[j].is_ascii_digit() || bytes[j] == '_') {
                    j += 1;
                }
            }
        }
    }
    // Type suffix: f64 marks a float even without a dot.
    if j < n && (bytes[j].is_alphabetic()) {
        let start_suffix = j;
        while j < n && (bytes[j].is_alphanumeric() || bytes[j] == '_') {
            j += 1;
        }
        if bytes[start_suffix] == 'f' {
            float = true;
        }
    }
    let text: String = bytes[i..j].iter().collect();
    (
        Tok {
            kind: if float { TokKind::Float } else { TokKind::Int },
            text,
            line,
        },
        j,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .toks
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn strings_and_comments_are_opaque() {
        let toks = kinds(r#"let x = "unwrap() panic!"; // has unwrap() too"#);
        assert!(toks.iter().all(|(_, t)| t != "unwrap" && t != "panic"));
        assert!(toks.iter().any(|(k, _)| *k == TokKind::Str));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Lifetime)
            .collect();
        let chars = toks.iter().filter(|(k, _)| *k == TokKind::Char).count();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let toks = kinds(r##"let s = r#"has "quotes" and unwrap()"#; let r#type = 1;"##);
        assert!(toks.iter().all(|(_, t)| t != "unwrap"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "type"));
    }

    #[test]
    fn floats_vs_ranges() {
        let toks = kinds("let a = 1.5; for i in 0..10 {} let b = 2e-3; let c = 3f64;");
        let floats: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Float)
            .map(|(_, t)| t.clone())
            .collect();
        assert_eq!(floats, vec!["1.5", "2e-3", "3f64"]);
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Punct && t == ".."));
    }

    #[test]
    fn exemption_comments_are_collected() {
        let lexed = lex("let x = 1; // lint: raw-f64-ok legacy interface\nlet y = 2;\n// lint: allow(panic-freedom) — structurally nonempty\n");
        assert_eq!(lexed.exemptions.len(), 2);
        assert_eq!(lexed.exemptions[0].line, 1);
        assert!(lexed.exemptions[0].body.starts_with("raw-f64-ok"));
        assert_eq!(lexed.exemptions[1].line, 3);
    }

    #[test]
    fn nested_block_comments_and_lines() {
        let lexed = lex("/* outer /* inner */ still */ fn\nf() {}");
        assert_eq!(lexed.toks[0].text, "fn");
        assert_eq!(lexed.toks[1].line, 2);
    }

    #[test]
    fn multi_char_puncts() {
        let toks = kinds("a == b; c -> d; e::f; g..=h;");
        let puncts: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Punct)
            .map(|(_, t)| t.as_str().to_string())
            .collect();
        assert!(puncts.contains(&"==".to_string()));
        assert!(puncts.contains(&"->".to_string()));
        assert!(puncts.contains(&"::".to_string()));
        assert!(puncts.contains(&"..=".to_string()));
    }
}
