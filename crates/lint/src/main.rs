//! CLI entry point: `cargo run -p mpr-lint -- check [flags]`.
//!
//! Exit codes: 0 clean, 1 violations (or exemption budget exceeded),
//! 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use mpr_lint::{analyze_workspace_cached, find_workspace_root, to_json, to_sarif, MAX_EXEMPTIONS};

const USAGE: &str = "usage: mpr-lint check [--json] [--sarif] [--root DIR]
                      [--cache-file PATH] [--no-cache]

Rules: unit-hygiene (L1), nan-safety (L2), panic-freedom (L3), determinism (L4),
layering (L5), unit-flow (L6), error-swallowing (L7),
parallel-determinism (L8).
Exemptions: `// lint: raw-f64-ok <why>` or `// lint: allow(<rule>) <why>`
on the violating line or the line above; a reason is required, and an
exemption that no longer suppresses anything is itself an error.
Cache: warm runs reuse diagnostics of unchanged files from
target/mpr-lint.cache (disable with --no-cache).";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json = false;
    let mut sarif = false;
    let mut no_cache = false;
    let mut cache_file: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;
    let mut command = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "check" => command = Some("check"),
            "--json" => json = true,
            "--sarif" => sarif = true,
            "--no-cache" => no_cache = true,
            "--cache-file" => match it.next() {
                Some(p) => cache_file = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--cache-file needs a path\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--root needs a directory\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    if command != Some("check") {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "mpr-lint: no workspace Cargo.toml found above {}",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    let cache_path = if no_cache {
        None
    } else {
        Some(cache_file.unwrap_or_else(|| root.join("target/mpr-lint.cache")))
    };
    let (report, stats) = match analyze_workspace_cached(&root, cache_path.as_deref()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("mpr-lint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if sarif {
        print!("{}", to_sarif(&report));
    } else if json {
        print!("{}", to_json(&report));
    } else {
        for v in &report.violations {
            println!("{}:{}: [{}] {}", v.file, v.line, v.rule, v.message);
        }
        if !report.violations.is_empty() {
            println!();
        }
        println!(
            "mpr-lint: {} file(s) scanned ({} cached, {} analyzed), {} violation(s), \
             {} exemption(s) used (budget {})",
            report.files_scanned,
            stats.reused,
            stats.analyzed,
            report.violations.len(),
            report.exemptions_used.len(),
            MAX_EXEMPTIONS
        );
        for e in &report.exemptions_used {
            println!("  exempt {}:{} [{}] — {}", e.file, e.line, e.rule, e.reason);
        }
        if report.exemptions_used.len() > MAX_EXEMPTIONS {
            println!(
                "mpr-lint: exemption budget exceeded ({} > {}); prune the allowlist",
                report.exemptions_used.len(),
                MAX_EXEMPTIONS
            );
        }
    }
    if report.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
