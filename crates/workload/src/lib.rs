//! # mpr-workload — HPC workload traces for MPR
//!
//! The paper's evaluation is trace-driven: the Gaia cluster log (51,987
//! jobs / 3 months) for the core results and the PIK, RICC and Metacentrum
//! logs from the Parallel Workloads Archive for the cross-trace study
//! (Section V-E). Those logs are distributed in the Standard Workload
//! Format (SWF).
//!
//! This crate provides:
//!
//! * [`Job`] / [`Trace`] — the in-memory workload representation;
//! * [`swf`] — a parser for real SWF logs (drop the archive files in and
//!   load them directly);
//! * [`generator`] — deterministic synthetic generators calibrated to each
//!   cluster's published statistics (job count, span, peak cores,
//!   utilization-CDF shape of Fig. 1(b)) for fully offline reproduction —
//!   see `DESIGN.md`, "Substitutions";
//! * [`stats`] — core-allocation time series and utilization CDFs
//!   (Figs. 1(b), 6, 14).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generator;
pub mod job;
pub mod stats;
pub mod swf;
pub mod trace;

pub use generator::{ClusterSpec, TraceGenerator};
pub use job::Job;
pub use stats::{utilization_cdf, AllocationSeries, JobMix};
pub use trace::Trace;
