//! Allocation time series and utilization statistics (Figs. 1(b), 6).

use crate::job::Job;

/// A core-allocation time series at fixed slot resolution.
#[derive(Debug, Clone, PartialEq)]
pub struct AllocationSeries {
    slot_secs: f64,
    values: Vec<f64>,
}

impl AllocationSeries {
    /// Builds the series by sweeping job start/end events.
    ///
    /// Slot `i` covers `[i·slot, (i+1)·slot)`; a job contributes its cores
    /// to every slot its execution overlaps.
    ///
    /// # Panics
    ///
    /// Panics if `slot_secs` is not positive.
    #[must_use]
    pub fn from_jobs(jobs: &[Job], slot_secs: f64, span_secs: f64) -> Self {
        assert!(
            slot_secs.is_finite() && slot_secs > 0.0,
            "slot_secs must be positive"
        );
        let n = (span_secs / slot_secs).ceil() as usize;
        // Difference array over slots: +cores at start slot, −cores after end.
        let mut diff = vec![0.0f64; n + 1];
        for j in jobs {
            let s = ((j.start_secs / slot_secs).floor() as usize).min(n);
            let e = ((j.end_secs() / slot_secs).ceil() as usize).clamp(s + 1, n.max(s + 1));
            let e = e.min(n);
            if s < n {
                if let Some(d) = diff.get_mut(s) {
                    *d += f64::from(j.cores);
                }
                if let Some(d) = diff.get_mut(e) {
                    *d -= f64::from(j.cores);
                }
            }
        }
        let mut values = Vec::with_capacity(n);
        let mut acc = 0.0;
        for d in diff.iter().take(n) {
            acc += d;
            values.push(acc);
        }
        Self { slot_secs, values }
    }

    /// Slot resolution in seconds.
    #[must_use]
    pub fn slot_secs(&self) -> f64 {
        self.slot_secs
    }

    /// Allocated cores per slot.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Peak allocation across the series.
    #[must_use]
    pub fn peak(&self) -> f64 {
        self.values.iter().copied().fold(0.0, f64::max)
    }

    /// Mean allocation across the series.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }
}

/// Empirical CDF of utilization: for each of `bins` evenly spaced
/// utilization levels `u ∈ (0, 1]`, the fraction of time the utilization is
/// at or below `u` (Fig. 1(b)).
///
/// `capacity` is the normalization base — typically the cluster's installed
/// cores (Fig. 1(b)) or the trace's own peak (for overload analysis).
///
/// Returns `(utilization_level, fraction_of_time_at_or_below)` pairs.
#[must_use]
pub fn utilization_cdf(series: &AllocationSeries, capacity: f64, bins: usize) -> Vec<(f64, f64)> {
    let bins = bins.max(1);
    let n = series.values().len().max(1) as f64;
    let mut sorted: Vec<f64> = series
        .values()
        .iter()
        .map(|v| v / capacity.max(1e-12))
        .collect();
    sorted.sort_by(f64::total_cmp);
    (1..=bins)
        .map(|i| {
            let u = i as f64 / bins as f64;
            let below = sorted.partition_point(|&x| x <= u);
            (u, below as f64 / n)
        })
        .collect()
}

/// Fraction of time the utilization exceeds `threshold` (of `capacity`) —
/// the overload-probability metric of Table I.
#[must_use]
pub fn exceedance(series: &AllocationSeries, capacity: f64, threshold: f64) -> f64 {
    if series.values().is_empty() {
        return 0.0;
    }
    let above = series
        .values()
        .iter()
        .filter(|&&v| v / capacity.max(1e-12) > threshold)
        .count();
    above as f64 / series.values().len() as f64
}

/// Summary statistics of a trace's job mix — widths, runtimes and arrival
/// cadence — used to sanity-check generated traces against the archive
/// logs' published characteristics.
#[derive(Debug, Clone, PartialEq)]
pub struct JobMix {
    /// Number of jobs.
    pub jobs: usize,
    /// Mean job width, cores.
    pub mean_cores: f64,
    /// Median job width, cores.
    pub median_cores: f64,
    /// Largest job width, cores.
    pub max_cores: u32,
    /// Mean runtime, hours.
    pub mean_runtime_hours: f64,
    /// Median runtime, hours.
    pub median_runtime_hours: f64,
    /// Mean core-hours per job.
    pub mean_core_hours: f64,
    /// Mean arrivals per day over the span.
    pub arrivals_per_day: f64,
}

impl JobMix {
    /// Computes the mix over a set of jobs spanning `span_secs`.
    #[must_use]
    pub fn of(jobs: &[Job], span_secs: f64) -> JobMix {
        if jobs.is_empty() {
            return JobMix {
                jobs: 0,
                mean_cores: 0.0,
                median_cores: 0.0,
                max_cores: 0,
                mean_runtime_hours: 0.0,
                median_runtime_hours: 0.0,
                mean_core_hours: 0.0,
                arrivals_per_day: 0.0,
            };
        }
        let n = jobs.len() as f64;
        let mut cores: Vec<f64> = jobs.iter().map(|j| f64::from(j.cores)).collect();
        let mut runtimes: Vec<f64> = jobs.iter().map(|j| j.runtime_secs / 3600.0).collect();
        cores.sort_by(f64::total_cmp);
        runtimes.sort_by(f64::total_cmp);
        let median = |sorted: &[f64]| sorted.get(sorted.len() / 2).copied().unwrap_or(0.0);
        JobMix {
            jobs: jobs.len(),
            mean_cores: cores.iter().sum::<f64>() / n,
            median_cores: median(&cores),
            max_cores: jobs.iter().map(|j| j.cores).max().unwrap_or(0),
            mean_runtime_hours: runtimes.iter().sum::<f64>() / n,
            median_runtime_hours: median(&runtimes),
            mean_core_hours: jobs.iter().map(Job::core_hours).sum::<f64>() / n,
            arrivals_per_day: n / (span_secs / 86_400.0).max(1e-9),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> AllocationSeries {
        let jobs = vec![
            Job::new(1, 0.0, 120.0, 10),
            Job::new(2, 60.0, 60.0, 20),
            Job::new(3, 180.0, 60.0, 40),
        ];
        AllocationSeries::from_jobs(&jobs, 60.0, 240.0)
    }

    #[test]
    fn sweep_counts_overlaps() {
        let s = series();
        assert_eq!(s.values(), &[10.0, 30.0, 0.0, 40.0]);
        assert_eq!(s.peak(), 40.0);
        assert!((s.mean() - 20.0).abs() < 1e-12);
        assert_eq!(s.slot_secs(), 60.0);
    }

    #[test]
    fn partial_slot_overlap_counts_whole_slot() {
        // Job covering [30, 90) touches slots 0 and 1.
        let jobs = vec![Job::new(1, 30.0, 60.0, 5)];
        let s = AllocationSeries::from_jobs(&jobs, 60.0, 120.0);
        assert_eq!(s.values(), &[5.0, 5.0]);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let s = series();
        let cdf = utilization_cdf(&s, 40.0, 4);
        assert_eq!(cdf.len(), 4);
        for w in cdf.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
        // At u = 0.25 (10 cores of 40): slots with alloc <= 10 are 2 of 4.
        let at_quarter = cdf.iter().find(|(u, _)| (*u - 0.25).abs() < 1e-9).unwrap();
        assert!((at_quarter.1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn exceedance_matches_manual_count() {
        let s = series();
        // Above 50 % of 40 cores (20): slots with alloc > 20 → {30, 40} = 2/4.
        assert!((exceedance(&s, 40.0, 0.5) - 0.5).abs() < 1e-12);
        assert_eq!(exceedance(&s, 40.0, 1.0), 0.0);
    }

    #[test]
    fn empty_series_is_safe() {
        let s = AllocationSeries::from_jobs(&[], 60.0, 0.0);
        assert_eq!(s.peak(), 0.0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(exceedance(&s, 10.0, 0.5), 0.0);
    }

    #[test]
    fn job_mix_summary() {
        let jobs = vec![
            Job::new(1, 0.0, 3600.0, 4),
            Job::new(2, 100.0, 7200.0, 8),
            Job::new(3, 200.0, 1800.0, 64),
        ];
        let mix = JobMix::of(&jobs, 86_400.0);
        assert_eq!(mix.jobs, 3);
        assert!((mix.mean_cores - (4.0 + 8.0 + 64.0) / 3.0).abs() < 1e-9);
        assert_eq!(mix.median_cores, 8.0);
        assert_eq!(mix.max_cores, 64);
        assert!((mix.mean_runtime_hours - (1.0 + 2.0 + 0.5) / 3.0).abs() < 1e-9);
        assert_eq!(mix.median_runtime_hours, 1.0);
        assert!((mix.mean_core_hours - (4.0 + 16.0 + 32.0) / 3.0).abs() < 1e-9);
        assert!((mix.arrivals_per_day - 3.0).abs() < 1e-9);
    }

    #[test]
    fn job_mix_of_empty_is_zero() {
        let mix = JobMix::of(&[], 86_400.0);
        assert_eq!(mix.jobs, 0);
        assert_eq!(mix.mean_cores, 0.0);
        assert_eq!(mix.arrivals_per_day, 0.0);
    }

    #[test]
    fn job_past_span_is_clipped() {
        let jobs = vec![Job::new(1, 100.0, 1000.0, 3)];
        let s = AllocationSeries::from_jobs(&jobs, 60.0, 120.0);
        assert_eq!(s.values().len(), 2);
        assert_eq!(s.values()[1], 3.0);
    }
}
