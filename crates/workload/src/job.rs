//! A single HPC job as the simulator sees it.

/// One job of a workload trace.
///
/// Times are in seconds from the trace origin. `start_secs` is when the job
/// begins executing (for SWF logs this is `submit + wait`); `runtime_secs`
/// is its execution time at full speed — resource reduction during
/// overloads stretches the actual completion beyond this.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Job {
    /// Job identifier, unique within its trace.
    pub id: u64,
    /// Start of execution, seconds from trace origin.
    pub start_secs: f64,
    /// Nominal (full-speed) runtime in seconds.
    pub runtime_secs: f64,
    /// Number of cores allocated.
    pub cores: u32,
}

impl Job {
    /// Creates a job, validating its fields.
    ///
    /// # Panics
    ///
    /// Panics if `start_secs` is negative/non-finite, `runtime_secs` is not
    /// positive, or `cores` is zero.
    #[must_use]
    pub fn new(id: u64, start_secs: f64, runtime_secs: f64, cores: u32) -> Self {
        assert!(
            start_secs.is_finite() && start_secs >= 0.0,
            "start_secs must be finite and non-negative"
        );
        assert!(
            runtime_secs.is_finite() && runtime_secs > 0.0,
            "runtime_secs must be positive"
        );
        assert!(cores > 0, "cores must be positive");
        Self {
            id,
            start_secs,
            runtime_secs,
            cores,
        }
    }

    /// Nominal end time (no resource reduction), seconds from origin.
    #[must_use]
    pub fn end_secs(&self) -> f64 {
        self.start_secs + self.runtime_secs
    }

    /// Core-hours of work this job performs at full speed.
    #[must_use]
    pub fn core_hours(&self) -> f64 {
        f64::from(self.cores) * self.runtime_secs / 3600.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        let j = Job::new(1, 100.0, 3600.0, 8);
        assert_eq!(j.end_secs(), 3700.0);
        assert!((j.core_hours() - 8.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "runtime_secs")]
    fn zero_runtime_panics() {
        let _ = Job::new(1, 0.0, 0.0, 1);
    }

    #[test]
    #[should_panic(expected = "cores")]
    fn zero_cores_panics() {
        let _ = Job::new(1, 0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "start_secs")]
    fn negative_start_panics() {
        let _ = Job::new(1, -1.0, 1.0, 1);
    }
}
