//! A workload trace: an ordered collection of jobs plus cluster metadata.

use crate::job::Job;
use crate::stats::AllocationSeries;

/// A cluster workload trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    name: String,
    total_cores: u32,
    jobs: Vec<Job>,
}

impl Trace {
    /// Creates a trace, sorting jobs by start time.
    ///
    /// # Panics
    ///
    /// Panics if `total_cores` is zero.
    #[must_use]
    pub fn new(name: impl Into<String>, total_cores: u32, mut jobs: Vec<Job>) -> Self {
        assert!(total_cores > 0, "total_cores must be positive");
        jobs.sort_by(|a, b| a.start_secs.total_cmp(&b.start_secs));
        Self {
            name: name.into(),
            total_cores,
            jobs,
        }
    }

    /// The cluster/trace name (e.g. `"Gaia"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of cores installed in the cluster.
    #[must_use]
    pub fn total_cores(&self) -> u32 {
        self.total_cores
    }

    /// The jobs, ordered by start time.
    #[must_use]
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Number of jobs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// `true` when the trace has no jobs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Trace span in seconds: from origin to the last nominal job end.
    #[must_use]
    pub fn span_secs(&self) -> f64 {
        self.jobs.iter().map(Job::end_secs).fold(0.0, f64::max)
    }

    /// Core-allocation time series at `slot_secs` resolution (Fig. 6).
    #[must_use]
    pub fn allocation_series(&self, slot_secs: f64) -> AllocationSeries {
        AllocationSeries::from_jobs(&self.jobs, slot_secs, self.span_secs())
    }

    /// Peak simultaneous core allocation (at `slot_secs` resolution).
    #[must_use]
    pub fn peak_allocation(&self, slot_secs: f64) -> f64 {
        self.allocation_series(slot_secs).peak()
    }

    /// Total core-hours of work in the trace.
    #[must_use]
    pub fn total_core_hours(&self) -> f64 {
        self.jobs.iter().map(Job::core_hours).sum()
    }

    /// Keeps only jobs starting within the first `secs` seconds — used to
    /// cut long traces down for bounded-time experiments.
    #[must_use]
    pub fn truncated(&self, secs: f64) -> Trace {
        Trace::new(
            self.name.clone(),
            self.total_cores,
            self.jobs
                .iter()
                .filter(|j| j.start_secs < secs)
                .copied()
                .collect(),
        )
    }

    /// Scales the workload up by `factor >= 1` the way the paper scales it
    /// "proportional to the extra capacity" (Table I): every `1/(factor−1)`-th
    /// job is duplicated (with a fresh id and a small start offset so the
    /// copy does not collide with the original). `factor = 1` returns the
    /// trace unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `factor < 1` or is not finite.
    #[must_use]
    pub fn scaled_workload(&self, factor: f64) -> Trace {
        assert!(
            factor.is_finite() && factor >= 1.0,
            "scale factor must be finite and >= 1, got {factor}"
        );
        let extra = factor - 1.0;
        if extra <= 0.0 {
            return self.clone();
        }
        let mut jobs = self.jobs.clone();
        let max_id = self.jobs.iter().map(|j| j.id).max().unwrap_or(0);
        let mut budget = 0.0f64;
        for j in &self.jobs {
            budget += extra;
            if budget >= 1.0 - 1e-9 {
                budget -= 1.0;
                jobs.push(Job::new(
                    max_id + j.id + 1,
                    j.start_secs + 30.0,
                    j.runtime_secs,
                    j.cores,
                ));
            }
        }
        Trace::new(self.name.clone(), self.total_cores, jobs)
    }

    /// Merges another trace's jobs into this one (multi-tenant or
    /// multi-partition composition). Job ids of `other` are shifted past
    /// this trace's maximum; the installed cores are summed.
    #[must_use]
    pub fn merged(&self, other: &Trace) -> Trace {
        let max_id = self.jobs.iter().map(|j| j.id).max().unwrap_or(0);
        let mut jobs = self.jobs.clone();
        jobs.extend(
            other
                .jobs
                .iter()
                .map(|j| Job::new(max_id + j.id + 1, j.start_secs, j.runtime_secs, j.cores)),
        );
        Trace::new(
            format!("{}+{}", self.name, other.name),
            self.total_cores + other.total_cores,
            jobs,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> Trace {
        Trace::new(
            "test",
            100,
            vec![
                Job::new(2, 3600.0, 3600.0, 20),
                Job::new(1, 0.0, 7200.0, 10),
                Job::new(3, 7200.0, 3600.0, 30),
            ],
        )
    }

    #[test]
    fn jobs_sorted_by_start() {
        let t = trace();
        let ids: Vec<u64> = t.jobs().iter().map(|j| j.id).collect();
        assert_eq!(ids, vec![1, 2, 3]);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.name(), "test");
        assert_eq!(t.total_cores(), 100);
    }

    #[test]
    fn span_and_core_hours() {
        let t = trace();
        assert_eq!(t.span_secs(), 10_800.0);
        // 10 * 2 + 20 * 1 + 30 * 1 = 70 core-hours.
        assert!((t.total_core_hours() - 70.0).abs() < 1e-9);
    }

    #[test]
    fn allocation_series_overlap() {
        let t = trace();
        let series = t.allocation_series(3600.0);
        // Hour 0: job 1 only (10). Hour 1: jobs 1+2 (30). Hour 2: job 3 (30).
        assert_eq!(series.values(), &[10.0, 30.0, 30.0]);
        assert_eq!(t.peak_allocation(3600.0), 30.0);
    }

    #[test]
    fn truncation_drops_late_jobs() {
        let t = trace().truncated(3600.0);
        assert_eq!(t.len(), 1);
        assert_eq!(t.jobs()[0].id, 1);
    }

    #[test]
    fn scaling_adds_the_expected_share_of_jobs() {
        let jobs: Vec<Job> = (0..100)
            .map(|i| Job::new(i + 1, f64::from(i as u32) * 60.0, 600.0, 4))
            .collect();
        let t = Trace::new("s", 100, jobs);
        let scaled = t.scaled_workload(1.2);
        assert_eq!(scaled.len(), 120, "20% more jobs");
        // Work scales with the job count.
        assert!((scaled.total_core_hours() / t.total_core_hours() - 1.2).abs() < 1e-9);
        // Ids remain unique.
        let mut ids: Vec<u64> = scaled.jobs().iter().map(|j| j.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), scaled.len());
        // factor = 1 is the identity.
        assert_eq!(t.scaled_workload(1.0), t);
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn scaling_below_one_panics() {
        let t = Trace::new("s", 10, vec![Job::new(1, 0.0, 60.0, 1)]);
        let _ = t.scaled_workload(0.5);
    }

    #[test]
    fn merging_combines_jobs_and_cores() {
        let a = Trace::new("a", 10, vec![Job::new(1, 0.0, 60.0, 2)]);
        let b = Trace::new("b", 20, vec![Job::new(1, 30.0, 60.0, 4)]);
        let m = a.merged(&b);
        assert_eq!(m.len(), 2);
        assert_eq!(m.total_cores(), 30);
        assert_eq!(m.name(), "a+b");
        let mut ids: Vec<u64> = m.jobs().iter().map(|j| j.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 2, "ids stay unique after merge");
    }

    #[test]
    fn empty_trace_span_zero() {
        let t = Trace::new("empty", 10, Vec::new());
        assert_eq!(t.span_secs(), 0.0);
        assert!(t.is_empty());
    }
}
