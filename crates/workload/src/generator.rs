//! Calibrated synthetic workload generators.
//!
//! The real archive logs cannot be bundled, so each cluster of the paper
//! gets a deterministic generator calibrated to its published statistics
//! (job count, time span, peak cores) and the utilization-CDF shape of
//! Fig. 1(b). The generator tracks a target-utilization process — mean
//! level plus diurnal and weekly cycles plus an Ornstein–Uhlenbeck
//! fluctuation — in closed loop: whenever current allocation falls below
//! the target, new jobs (log-normal widths and runtimes) are started. This
//! is the standard workload-model family of the JSSPP literature and
//! preserves what matters for oversubscription studies: how often, and for
//! how long, demand approaches the trace's own peak.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::job::Job;
use crate::trace::Trace;

const SECS_PER_DAY: f64 = 86_400.0;
const STEP_SECS: f64 = 60.0;

/// Statistical description of a cluster workload.
///
/// All fields are public — this is passive configuration data. Use the
/// presets ([`ClusterSpec::gaia`] etc.) as starting points.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    /// Cluster/trace name.
    pub name: String,
    /// Installed cores.
    pub total_cores: u32,
    /// Trace span in days.
    pub span_days: f64,
    /// Mean target utilization in `[0, 1]`.
    pub mean_util: f64,
    /// Amplitude of the diurnal utilization cycle.
    pub diurnal_amp: f64,
    /// Amplitude of the weekly utilization cycle.
    pub weekly_amp: f64,
    /// Stationary standard deviation of the OU fluctuation.
    pub noise_std: f64,
    /// Correlation time of the OU fluctuation, hours.
    pub noise_corr_hours: f64,
    /// Mean job width in cores (log-normal).
    pub mean_job_cores: f64,
    /// Mean job runtime in hours (log-normal).
    pub mean_job_runtime_hours: f64,
    /// Log-space sigma of both job distributions.
    pub sigma: f64,
    /// Expected number of large "burst" jobs per day (capability jobs of a
    /// sizable fraction of the machine — present in every real HPC log and
    /// the source of the deep, sudden overloads of Table I). Zero disables.
    pub burst_rate_per_day: f64,
    /// Width of a burst job as a fraction of the installed cores.
    pub burst_width_frac: f64,
}

impl ClusterSpec {
    /// The Gaia cluster (Univ. of Luxembourg): 2012 peak cores, 51,987 jobs
    /// over 3 months, high utilization (≈5 % of capacity rarely used).
    #[must_use]
    pub fn gaia() -> Self {
        Self {
            name: "Gaia".into(),
            total_cores: 2012,
            span_days: 92.0,
            mean_util: 0.66,
            diurnal_amp: 0.10,
            weekly_amp: 0.04,
            noise_std: 0.08,
            noise_corr_hours: 1.5,
            mean_job_cores: 14.0,
            mean_job_runtime_hours: 4.0,
            sigma: 1.1,
            burst_rate_per_day: 1.5,
            burst_width_frac: 0.15,
        }
    }

    /// The PIK IBM iDataPlex cluster: 742,964 jobs over ~3 years, low
    /// utilization (≈65 % of capacity rarely used). Peak allocation 6,963
    /// cores per the paper.
    #[must_use]
    pub fn pik() -> Self {
        Self {
            name: "PIK".into(),
            total_cores: 6963,
            span_days: 1188.0,
            mean_util: 0.30,
            diurnal_amp: 0.06,
            weekly_amp: 0.03,
            noise_std: 0.08,
            noise_corr_hours: 3.0,
            mean_job_cores: 16.0,
            mean_job_runtime_hours: 5.0,
            sigma: 1.1,
            burst_rate_per_day: 1.0,
            burst_width_frac: 0.12,
        }
    }

    /// The RIKEN RICC cluster: 447,794 jobs over 5 months, ≈55 % of
    /// capacity rarely used. We use the archive's documented 8,192 cores
    /// (the paper's "20,4156 cores" appears to be a typesetting artifact).
    #[must_use]
    pub fn ricc() -> Self {
        Self {
            name: "RICC".into(),
            total_cores: 8192,
            span_days: 153.0,
            mean_util: 0.38,
            diurnal_amp: 0.08,
            weekly_amp: 0.03,
            noise_std: 0.09,
            noise_corr_hours: 2.0,
            mean_job_cores: 8.0,
            mean_job_runtime_hours: 3.2,
            sigma: 1.0,
            burst_rate_per_day: 1.2,
            burst_width_frac: 0.12,
        }
    }

    /// The Metacentrum grid: 103,656 jobs over ~5 months on a small
    /// (528-core) system, ≈20 % of capacity rarely used.
    #[must_use]
    pub fn metacentrum() -> Self {
        Self {
            name: "Metacentrum".into(),
            total_cores: 528,
            span_days: 150.0,
            mean_util: 0.50,
            diurnal_amp: 0.12,
            weekly_amp: 0.05,
            noise_std: 0.10,
            noise_corr_hours: 2.0,
            mean_job_cores: 4.0,
            mean_job_runtime_hours: 2.3,
            sigma: 1.0,
            burst_rate_per_day: 1.5,
            burst_width_frac: 0.18,
        }
    }

    /// Returns a copy with a different span — the knob used to cut long
    /// traces (PIK's 3 years) down for bounded-time experiments.
    #[must_use]
    pub fn with_span_days(mut self, days: f64) -> Self {
        self.span_days = days;
        self
    }
}

/// Deterministic trace generator for a [`ClusterSpec`].
///
/// ```
/// use mpr_workload::{ClusterSpec, TraceGenerator};
///
/// let trace = TraceGenerator::new(ClusterSpec::gaia().with_span_days(1.0))
///     .with_seed(7)
///     .generate();
/// assert!(!trace.is_empty());
/// assert_eq!(trace.total_cores(), 2012);
/// // Same seed, same trace — everything downstream is reproducible.
/// let again = TraceGenerator::new(ClusterSpec::gaia().with_span_days(1.0))
///     .with_seed(7)
///     .generate();
/// assert_eq!(trace, again);
/// ```
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    spec: ClusterSpec,
    seed: u64,
}

impl TraceGenerator {
    /// Creates a generator with the default seed.
    #[must_use]
    pub fn new(spec: ClusterSpec) -> Self {
        Self {
            spec,
            seed: 0x4d50_5221,
        }
    }

    /// Sets the RNG seed; the same seed always yields the same trace.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The spec being generated from.
    #[must_use]
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// Generates the trace.
    #[must_use]
    pub fn generate(&self) -> Trace {
        let spec = &self.spec;
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let total = f64::from(spec.total_cores);
        let span_secs = spec.span_days * SECS_PER_DAY;
        let steps = (span_secs / STEP_SECS).ceil() as usize;

        // OU process parameters: stationary std = noise_std.
        let tau = spec.noise_corr_hours * 3600.0;
        let drive = spec.noise_std * (2.0 * STEP_SECS / tau).sqrt();
        let mut ou = 0.0f64;

        // Log-normal parameters: mean m, log-sigma s → mu = ln m − s²/2.
        let s = spec.sigma;
        let mu_cores = spec.mean_job_cores.ln() - s * s / 2.0;
        let mu_runtime = (spec.mean_job_runtime_hours * 3600.0).ln() - s * s / 2.0;

        // Min-heap of (end_secs, cores) for active jobs.
        let mut active: std::collections::BinaryHeap<std::cmp::Reverse<(u64, u32)>> =
            std::collections::BinaryHeap::new();
        let mut alloc = 0.0f64;
        let mut jobs: Vec<Job> = Vec::new();
        let mut next_id = 1u64;
        let phase: f64 = rng.gen_range(0.0..std::f64::consts::TAU);

        for step in 0..steps {
            let t = step as f64 * STEP_SECS;
            ou += -ou * (STEP_SECS / tau) + drive * normal(&mut rng);
            let diurnal =
                spec.diurnal_amp * (std::f64::consts::TAU * t / SECS_PER_DAY + phase).sin();
            let weekly = spec.weekly_amp * (std::f64::consts::TAU * t / (7.0 * SECS_PER_DAY)).sin();
            let target = (spec.mean_util + diurnal + weekly + ou).clamp(0.02, 1.0) * total;

            // Retire finished jobs.
            while let Some(&std::cmp::Reverse((end, cores))) = active.peek() {
                if (end as f64) <= t {
                    active.pop();
                    alloc -= f64::from(cores);
                } else {
                    break;
                }
            }

            // Capability bursts: a large job arrives with Poisson rate
            // `burst_rate_per_day`, jumping demand by a sizable fraction of
            // the machine in a single step — the source of the deep, sudden
            // overloads real logs exhibit (Table I's overloaded capacity).
            if spec.burst_rate_per_day > 0.0
                && rng.gen_bool((spec.burst_rate_per_day * STEP_SECS / SECS_PER_DAY).min(1.0))
            {
                let frac = spec.burst_width_frac * rng.gen_range(0.5..=1.0);
                let width = (frac * total).min(total - alloc).floor().max(0.0) as u32;
                if width > 0 {
                    let runtime = (mu_runtime + s * normal(&mut rng))
                        .exp()
                        .clamp(1800.0, 14.0 * SECS_PER_DAY);
                    jobs.push(Job::new(next_id, t, runtime, width));
                    next_id += 1;
                    alloc += f64::from(width);
                    active.push(std::cmp::Reverse(((t + runtime).ceil() as u64, width)));
                }
            }

            // Start new jobs until the target allocation is reached; never
            // allocate past the installed cores.
            while alloc < target {
                let headroom = total - alloc;
                if headroom < 1.0 {
                    break;
                }
                let cores = (mu_cores + s * normal(&mut rng))
                    .exp()
                    .round()
                    .clamp(1.0, (total / 4.0).max(1.0).min(headroom.floor()))
                    as u32;
                let runtime = (mu_runtime + s * normal(&mut rng))
                    .exp()
                    .clamp(300.0, 14.0 * SECS_PER_DAY);
                jobs.push(Job::new(next_id, t, runtime, cores));
                next_id += 1;
                alloc += f64::from(cores);
                active.push(std::cmp::Reverse(((t + runtime).ceil() as u64, cores)));
            }
        }
        Trace::new(spec.name.clone(), spec.total_cores, jobs)
    }
}

/// Standard normal via Box–Muller.
fn normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
    (-2.0 * u1.ln()).sqrt() * u2.cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{exceedance, utilization_cdf};

    #[test]
    fn generation_is_deterministic() {
        let spec = ClusterSpec::gaia().with_span_days(3.0);
        let a = TraceGenerator::new(spec.clone()).with_seed(1).generate();
        let b = TraceGenerator::new(spec).with_seed(1).generate();
        assert_eq!(a.len(), b.len());
        assert_eq!(a.jobs()[0], b.jobs()[0]);
    }

    #[test]
    fn different_seeds_differ() {
        let spec = ClusterSpec::gaia().with_span_days(3.0);
        let a = TraceGenerator::new(spec.clone()).with_seed(1).generate();
        let b = TraceGenerator::new(spec).with_seed(2).generate();
        assert_ne!(a.len(), b.len());
    }

    #[test]
    fn gaia_job_count_near_paper() {
        let t = TraceGenerator::new(ClusterSpec::gaia()).generate();
        // Paper: 51,987 jobs over 3 months. Accept ±50 %.
        assert!(
            t.len() > 26_000 && t.len() < 78_000,
            "Gaia generated {} jobs",
            t.len()
        );
    }

    #[test]
    fn gaia_utilization_matches_target_shape() {
        let t = TraceGenerator::new(ClusterSpec::gaia()).generate();
        let series = t.allocation_series(600.0);
        let total = f64::from(t.total_cores());
        let mean_util = series.mean() / total;
        assert!(
            (mean_util - 0.66).abs() < 0.08,
            "mean utilization {mean_util}"
        );
        // High utilization: demand regularly within 20 % of capacity,
        // but the top few % of capacity are rarely used (Fig. 1(b)).
        assert!(exceedance(&series, total, 0.8) > 0.02);
        assert!(exceedance(&series, total, 0.97) < 0.05);
    }

    #[test]
    fn pik_is_underutilized() {
        let t = TraceGenerator::new(ClusterSpec::pik().with_span_days(30.0)).generate();
        let series = t.allocation_series(600.0);
        let total = f64::from(t.total_cores());
        let mean_util = series.mean() / total;
        assert!(mean_util < 0.45, "PIK mean utilization {mean_util}");
        // ~65 % of capacity rarely used.
        assert!(exceedance(&series, total, 0.55) < 0.05);
    }

    #[test]
    fn cluster_ordering_of_utilization() {
        // Fig. 1(b): Gaia most utilized, then Metacentrum, RICC, PIK.
        let mean_util = |spec: ClusterSpec| {
            let t = TraceGenerator::new(spec.with_span_days(20.0)).generate();
            let s = t.allocation_series(600.0);
            s.mean() / f64::from(t.total_cores())
        };
        let gaia = mean_util(ClusterSpec::gaia());
        let meta = mean_util(ClusterSpec::metacentrum());
        let ricc = mean_util(ClusterSpec::ricc());
        let pik = mean_util(ClusterSpec::pik());
        assert!(
            gaia > meta && meta > ricc && ricc > pik,
            "expected gaia > metacentrum > ricc > pik, got {gaia:.2} {meta:.2} {ricc:.2} {pik:.2}"
        );
    }

    #[test]
    fn cdf_reaches_one_at_observed_peak() {
        let t = TraceGenerator::new(ClusterSpec::metacentrum().with_span_days(10.0)).generate();
        let series = t.allocation_series(600.0);
        let cdf = utilization_cdf(&series, series.peak(), 20);
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-9);
        // Slot-granularity overlap can nudge instantaneous allocation past
        // the installed cores, but never by more than a handful of jobs.
        assert!(series.peak() <= f64::from(t.total_cores()) * 1.10);
    }

    #[test]
    fn jobs_respect_width_clamp() {
        let t = TraceGenerator::new(ClusterSpec::gaia().with_span_days(5.0)).generate();
        let max_width = t.total_cores() / 4;
        for j in t.jobs() {
            assert!(j.cores >= 1 && j.cores <= max_width);
            assert!(j.runtime_secs >= 300.0);
        }
    }

    #[test]
    fn spec_accessor_roundtrip() {
        let spec = ClusterSpec::ricc();
        let g = TraceGenerator::new(spec.clone());
        assert_eq!(g.spec(), &spec);
    }
}
