//! Parser for the Standard Workload Format (SWF) used by the Parallel
//! Workloads Archive.
//!
//! The paper's four traces (Gaia, PIK, RICC, Metacentrum) are all SWF logs.
//! SWF is line-oriented: `;`-prefixed header comments followed by records of
//! 18 whitespace-separated integer fields. We use fields 1 (job id),
//! 2 (submit), 3 (wait), 4 (runtime) and 5 (allocated processors, falling
//! back to field 8, requested processors). Jobs with unknown (-1 / 0)
//! runtime or width are skipped, as is conventional.

use std::fmt;
use std::path::Path;

use crate::job::Job;
use crate::trace::Trace;

/// Errors raised while parsing an SWF log.
#[derive(Debug)]
#[non_exhaustive]
pub enum SwfError {
    /// The underlying file could not be read.
    Io(std::io::Error),
    /// A record line had fewer than the 18 SWF fields.
    ShortRecord {
        /// 1-based line number.
        line: usize,
        /// Number of fields found.
        fields: usize,
    },
    /// A field failed to parse as a number.
    BadField {
        /// 1-based line number.
        line: usize,
        /// 0-based field index.
        field: usize,
    },
    /// The log contained no usable jobs.
    Empty,
}

impl fmt::Display for SwfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwfError::Io(e) => write!(f, "i/o error reading swf log: {e}"),
            SwfError::ShortRecord { line, fields } => {
                write!(f, "line {line}: expected 18 swf fields, found {fields}")
            }
            SwfError::BadField { line, field } => {
                write!(f, "line {line}: field {field} is not a number")
            }
            SwfError::Empty => write!(f, "swf log contains no usable jobs"),
        }
    }
}

impl std::error::Error for SwfError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SwfError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SwfError {
    fn from(e: std::io::Error) -> Self {
        SwfError::Io(e)
    }
}

/// Header metadata extracted from `;`-comments.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SwfHeader {
    /// `; MaxProcs:` if present.
    pub max_procs: Option<u32>,
    /// `; MaxNodes:` if present.
    pub max_nodes: Option<u32>,
    /// `; Computer:` if present.
    pub computer: Option<String>,
}

/// Parses SWF text into a [`Trace`].
///
/// `name` labels the trace; `total_cores` overrides the header's
/// `MaxProcs` when given (`None` falls back to the header, then to the
/// observed maximum job width).
///
/// # Errors
///
/// Returns [`SwfError`] on malformed records or an empty log.
pub fn parse_swf(text: &str, name: &str, total_cores: Option<u32>) -> Result<Trace, SwfError> {
    let mut header = SwfHeader::default();
    let mut jobs = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix(';') {
            parse_header_line(comment, &mut header);
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() < 18 {
            return Err(SwfError::ShortRecord {
                line: lineno + 1,
                fields: fields.len(),
            });
        }
        let num = |idx: usize| -> Result<f64, SwfError> {
            fields
                .get(idx)
                .and_then(|f| f.parse::<f64>().ok())
                .ok_or(SwfError::BadField {
                    line: lineno + 1,
                    field: idx,
                })
        };
        let id = num(0)? as u64;
        let submit = num(1)?;
        let wait = num(2)?.max(0.0);
        let runtime = num(3)?;
        let mut procs = num(4)?;
        if procs <= 0.0 {
            procs = num(7)?; // requested processors fallback
        }
        if runtime <= 0.0 || procs <= 0.0 || submit < 0.0 {
            continue; // unknown/cancelled job
        }
        jobs.push(Job::new(id, submit + wait, runtime, procs as u32));
    }
    if jobs.is_empty() {
        return Err(SwfError::Empty);
    }
    // Re-origin: the archive logs use absolute UNIX submit times.
    let t0 = jobs
        .iter()
        .map(|j| j.start_secs)
        .fold(f64::INFINITY, f64::min);
    let jobs: Vec<Job> = jobs
        .into_iter()
        .map(|j| Job::new(j.id, j.start_secs - t0, j.runtime_secs, j.cores))
        .collect();
    let observed_peak = jobs.iter().map(|j| j.cores).max().unwrap_or(1);
    let cores = total_cores
        .or(header.max_procs)
        .unwrap_or(observed_peak)
        .max(1);
    Ok(Trace::new(name, cores, jobs))
}

/// Loads and parses an SWF file from disk.
///
/// # Errors
///
/// Returns [`SwfError::Io`] on read failure, plus any parse error.
pub fn load_swf(
    path: impl AsRef<Path>,
    name: &str,
    total_cores: Option<u32>,
) -> Result<Trace, SwfError> {
    let text = std::fs::read_to_string(path)?;
    parse_swf(&text, name, total_cores)
}

/// Serializes a trace to SWF text (the inverse of [`parse_swf`]).
///
/// Start times are written as submit times with zero wait; unknown fields
/// take the SWF convention of `-1`. Note SWF stores integer seconds, so
/// sub-second timing is truncated.
#[must_use]
pub fn write_swf(trace: &Trace) -> String {
    let mut out = String::new();
    out.push_str(&format!("; Computer: {}\n", trace.name()));
    out.push_str(&format!("; MaxProcs: {}\n", trace.total_cores()));
    for j in trace.jobs() {
        out.push_str(&format!(
            "{} {} 0 {} {} -1 -1 {} {} -1 1 1 1 1 1 -1 -1 -1\n",
            j.id,
            j.start_secs as i64,
            j.runtime_secs as i64,
            j.cores,
            j.cores,
            j.runtime_secs as i64,
        ));
    }
    out
}

fn parse_header_line(comment: &str, header: &mut SwfHeader) {
    let comment = comment.trim();
    if let Some(v) = comment.strip_prefix("MaxProcs:") {
        header.max_procs = v.trim().parse().ok();
    } else if let Some(v) = comment.strip_prefix("MaxNodes:") {
        header.max_nodes = v.trim().parse().ok();
    } else if let Some(v) = comment.strip_prefix("Computer:") {
        header.computer = Some(v.trim().to_owned());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
; Computer: Test Cluster
; MaxProcs: 64
; MaxNodes: 8
1 1000 10 3600 8 -1 -1 8 7200 -1 1 1 1 1 1 -1 -1 -1
2 1060 0 1800 -1 -1 -1 16 3600 -1 1 2 1 2 1 -1 -1 -1
3 1120 5 -1 4 -1 -1 4 3600 -1 0 3 1 3 1 -1 -1 -1
4 1180 0 600 0 -1 -1 0 600 -1 1 4 1 4 1 -1 -1 -1
";

    #[test]
    fn parses_records_and_header() {
        let t = parse_swf(SAMPLE, "test", None).unwrap();
        // Jobs 3 (runtime −1) and 4 (0 procs) are skipped.
        assert_eq!(t.len(), 2);
        assert_eq!(t.total_cores(), 64);
        assert_eq!(t.name(), "test");
        // Job 1 starts at submit+wait = 1010, re-originated to 0 (earliest).
        let j1 = t.jobs().iter().find(|j| j.id == 1).unwrap();
        assert_eq!(j1.start_secs, 0.0);
        assert_eq!(j1.cores, 8);
        assert_eq!(j1.runtime_secs, 3600.0);
        // Job 2 uses requested procs (field 8 = 16) since allocated is −1.
        let j2 = t.jobs().iter().find(|j| j.id == 2).unwrap();
        assert_eq!(j2.cores, 16);
        assert_eq!(j2.start_secs, 50.0);
    }

    #[test]
    fn total_cores_override_wins() {
        let t = parse_swf(SAMPLE, "test", Some(128)).unwrap();
        assert_eq!(t.total_cores(), 128);
    }

    #[test]
    fn falls_back_to_observed_peak_without_header() {
        let log = "1 0 0 100 8 -1 -1 8 100 -1 1 1 1 1 1 -1 -1 -1\n";
        let t = parse_swf(log, "x", None).unwrap();
        assert_eq!(t.total_cores(), 8);
    }

    #[test]
    fn short_record_is_an_error() {
        let err = parse_swf("1 2 3\n", "x", None).unwrap_err();
        assert!(matches!(err, SwfError::ShortRecord { line: 1, fields: 3 }));
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn bad_field_is_an_error() {
        let log = "1 xyz 0 100 8 -1 -1 8 100 -1 1 1 1 1 1 -1 -1 -1\n";
        let err = parse_swf(log, "x", None).unwrap_err();
        assert!(matches!(err, SwfError::BadField { line: 1, field: 1 }));
    }

    #[test]
    fn empty_log_is_an_error() {
        assert!(matches!(
            parse_swf("; nothing here\n", "x", None),
            Err(SwfError::Empty)
        ));
    }

    #[test]
    fn write_then_parse_roundtrip() {
        use crate::job::Job;
        let original = Trace::new(
            "rt",
            64,
            vec![Job::new(1, 0.0, 3600.0, 8), Job::new(2, 120.0, 60.0, 16)],
        );
        let text = write_swf(&original);
        let parsed = parse_swf(&text, "rt", None).unwrap();
        assert_eq!(parsed.total_cores(), 64);
        assert_eq!(parsed.len(), 2);
        for (a, b) in original.jobs().iter().zip(parsed.jobs()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.cores, b.cores);
            assert!((a.start_secs - b.start_secs).abs() < 1.0);
            assert!((a.runtime_secs - b.runtime_secs).abs() < 1.0);
        }
    }

    #[test]
    fn io_error_is_wrapped() {
        let err = load_swf("/nonexistent/path/to.swf", "x", None).unwrap_err();
        assert!(matches!(err, SwfError::Io(_)));
        assert!(err.to_string().contains("i/o error"));
        use std::error::Error;
        assert!(err.source().is_some());
    }
}
