//! `mpr` — the command-line interface to the MPR library.
//!
//! ```text
//! mpr simulate --trace gaia --alg mpr-int --oversub 15 --days 30
//! mpr market --jobs 1000 --target-watts 50000 --interactive
//! mpr traces
//! mpr apps
//! mpr prototype
//! ```

mod args;
mod commands;

use args::{parse, Command, USAGE};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let command = match parse(&argv) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let result = match &command {
        Command::Simulate(a) => commands::simulate(a, &mut out),
        Command::Market(a) => commands::market(a, &mut out),
        Command::Traces => commands::traces(&mut out).map_err(Into::into),
        Command::Apps => commands::apps(&mut out).map_err(Into::into),
        Command::Prototype { with_mpr } => {
            commands::prototype(*with_mpr, &mut out).map_err(Into::into)
        }
        Command::Swf(a) => commands::swf(a, &mut out),
        Command::Chaos(a) => commands::chaos(a, &mut out),
        Command::Ledger(a) => commands::ledger(a, &mut out),
        Command::Lint(a) => commands::lint(a, &mut out).and_then(|clean| {
            if clean {
                Ok(())
            } else {
                Err("lint violations (or exemption budget exceeded)".into())
            }
        }),
        Command::Calibrate => {
            let stdin = std::io::stdin();
            let mut input = stdin.lock();
            commands::calibrate(&mut input, &mut out)
        }
        Command::Help => {
            println!("{USAGE}");
            Ok(())
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
