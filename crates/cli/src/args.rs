//! Hand-rolled argument parsing for the `mpr` CLI (no external parser — the
//! interface is small and the workspace stays within its approved
//! dependency set).

use std::fmt;

use mpr_sim::{Algorithm, FsyncPolicy};
use mpr_workload::ClusterSpec;

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `mpr simulate …` — run a trace-driven simulation. (Boxed: the
    /// argument struct dwarfs every other variant.)
    Simulate(Box<SimulateArgs>),
    /// `mpr market …` — clear one ad-hoc market.
    Market(MarketArgs),
    /// `mpr traces` — list the built-in cluster workloads.
    Traces,
    /// `mpr apps` — list the application profiles.
    Apps,
    /// `mpr prototype [--without-mpr]` — run the prototype experiment.
    Prototype {
        /// Disable MPR to show the uncontrolled baseline.
        with_mpr: bool,
    },
    /// `mpr swf …` — emit a generated trace as SWF text on stdout.
    Swf(SwfArgs),
    /// `mpr calibrate` — build a profile from `allocation,performance` CSV
    /// lines on stdin.
    Calibrate,
    /// `mpr chaos …` — run a fuzzing campaign or replay a repro artifact.
    Chaos(ChaosArgs),
    /// `mpr ledger …` — inspect or repair a write-ahead ledger file.
    Ledger(LedgerArgs),
    /// `mpr lint …` — run the workspace static-analysis pass.
    Lint(LintArgs),
    /// `mpr help` or `--help`.
    Help,
}

/// Arguments of `mpr lint`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LintArgs {
    /// Emit the hand-rolled JSON report instead of human-readable text.
    pub json: bool,
    /// Emit a SARIF 2.1.0 log instead of human-readable text.
    pub sarif: bool,
    /// Skip the incremental cache (always re-parse and re-analyze).
    pub no_cache: bool,
    /// Workspace root to lint (defaults to the root above the cwd).
    pub root: Option<String>,
}

/// Action of `mpr ledger`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LedgerAction {
    /// Decode and print every intact record.
    Dump,
    /// Check framing integrity; nonzero exit on a corrupt tail.
    Verify,
    /// Rewrite the file keeping only records below a sequence number
    /// (also discards any corrupt tail).
    Truncate,
}

/// Arguments of `mpr ledger`.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerArgs {
    /// What to do with the ledger file.
    pub action: LedgerAction,
    /// Path to the WAL image (e.g. written by `mpr simulate --wal`).
    pub path: String,
    /// `truncate` only: first sequence number to drop.
    pub at: Option<u64>,
    /// Emit JSON instead of the human-readable listing.
    pub json: bool,
}

/// Arguments of `mpr chaos`.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosArgs {
    /// Number of campaign runs.
    pub runs: usize,
    /// Campaign seed.
    pub seed: u64,
    /// Trace span per run, days.
    pub days: f64,
    /// Plant the test-only emergency-FSM-disabled knob into every scenario
    /// (proves the oracles catch a real safety failure).
    pub disable_emergency: bool,
    /// Skip counterexample shrinking.
    pub no_shrink: bool,
    /// Directory for repro artifacts (one JSON per failing run).
    pub artifact_dir: Option<String>,
    /// Plant the test-only unsound `fsync=never` journaling policy (plus a
    /// mid-run kill) into every scenario (proves the `durability-commit`
    /// oracle catches acknowledgement loss).
    pub wal_fsync_never: bool,
    /// Plant a permanent UPS failure with subtree fencing disabled into
    /// every scenario (proves the `grid-fencing` oracle catches power
    /// flowing through dead infrastructure).
    pub tree_fault_ups: bool,
    /// Replay a repro artifact instead of running a campaign.
    pub replay: Option<String>,
    /// Emit the per-run CSV instead of the human summary.
    pub csv: bool,
    /// Emit the JSON campaign summary instead of the human summary.
    pub json: bool,
}

/// Arguments of `mpr simulate`.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulateArgs {
    /// Cluster preset name (`gaia`, `pik`, `ricc`, `metacentrum`).
    pub trace: String,
    /// Overload-handling algorithm.
    pub algorithm: Algorithm,
    /// Oversubscription percentage.
    pub oversub_pct: f64,
    /// Simulated span in days.
    pub days: f64,
    /// Trace seed.
    pub seed: u64,
    /// Market participation fraction.
    pub participation: f64,
    /// Fraction of bidders that stop responding during MPR-INT clearings.
    pub fault_unresponsive: f64,
    /// Fraction of bidders that crash permanently during MPR-INT clearings.
    pub fault_crash: f64,
    /// Fraction of bidders that replay stale bids during MPR-INT clearings.
    pub fault_stale: f64,
    /// Fraction of bidders that bid adversarially during MPR-INT clearings.
    pub fault_byzantine: f64,
    /// Probability a bid-transport message is dropped (MPR-INT only).
    pub net_drop: f64,
    /// Probability a delivered transport message is duplicated.
    pub net_duplicate: f64,
    /// Maximum in-flight message latency, virtual ticks.
    pub net_delay: u64,
    /// Per-announcement probability an agent is partitioned away.
    pub net_partition: f64,
    /// Per-round bid-collection deadline, virtual ticks (0 keeps default).
    pub net_deadline: u64,
    /// Per-agent per-round announcement attempts (0 keeps default).
    pub net_retries: usize,
    /// Gaussian sensor noise as a fraction of the true reading (σ/P).
    pub sensor_noise: f64,
    /// Probability that a sensor poll returns no reading.
    pub sensor_dropout: f64,
    /// Sensor reporting delay in polls (stale readings).
    pub sensor_stale: usize,
    /// Checkpoint cadence in slots (0 disables checkpointing).
    pub checkpoint_every: usize,
    /// Checkpoint file path (required when `checkpoint_every > 0`).
    pub checkpoint_path: Option<String>,
    /// Resume the run from this checkpoint file instead of starting fresh.
    pub resume_from: Option<String>,
    /// Journal every market event to a write-ahead ledger and write the
    /// final WAL image to this file (inspect it with `mpr ledger`).
    pub wal: Option<String>,
    /// WAL fsync policy; `None` (flag absent) means [`FsyncPolicy::Always`].
    pub wal_fsync: Option<FsyncPolicy>,
    /// Path to a power-topology spec (JSON) for federated clearing.
    pub topology: Option<String>,
    /// Clear overloads through the hierarchical federated market.
    pub federated: bool,
    /// Per-UPS outage probability for the infrastructure fault plan.
    pub tree_fault_ups: f64,
    /// Per-ATS degraded-transfer probability.
    pub tree_fault_ats: f64,
    /// Per-PDU breaker-trip probability.
    pub tree_fault_pdu: f64,
    /// Per-node gradual-derate probability.
    pub tree_fault_derate: f64,
    /// Infrastructure fault-plan RNG seed (0 keeps the plan default).
    pub tree_fault_seed: u64,
    /// Repair time after a fault window, seconds (0 keeps the plan default).
    pub tree_fault_repair_secs: f64,
    /// Emit CSV instead of a human-readable summary.
    pub csv: bool,
}

/// Arguments of `mpr swf`.
#[derive(Debug, Clone, PartialEq)]
pub struct SwfArgs {
    /// Cluster preset name.
    pub trace: String,
    /// Span in days.
    pub days: f64,
    /// Generator seed.
    pub seed: u64,
}

/// The clearing mechanism of `mpr market`. A superset of the simulator's
/// [`Algorithm`] choices: the ad-hoc market can also demonstrate the
/// degradation chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MarketMechanism {
    /// MPR-STAT: one MClr solve over cooperative standing bids.
    #[default]
    MprStat,
    /// MPR-INT: the iterative price/bid exchange.
    MprInt,
    /// The centralized OPT benchmark.
    Opt,
    /// The performance-oblivious EQL benchmark.
    Eql,
    /// The truthful VCG pivot auction.
    Vcg,
    /// The MPR-INT → MPR-STAT → EQL-capping degradation chain.
    Chain,
}

/// Arguments of `mpr market`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarketArgs {
    /// Number of synthetic jobs.
    pub jobs: usize,
    /// Power-reduction target, watts.
    pub target_watts: f64,
    /// The clearing mechanism to run.
    pub mechanism: MarketMechanism,
}

/// A CLI usage error with a user-facing message.
#[derive(Debug, Clone, PartialEq)]
pub struct UsageError(pub String);

impl fmt::Display for UsageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for UsageError {}

/// The help text.
pub const USAGE: &str = "\
mpr — market-based power reduction for oversubscribed HPC systems

USAGE:
    mpr simulate  [--trace gaia|pik|ricc|metacentrum]
                  [--mechanism opt|eql|mpr-stat|mpr-int|vcg]  (--alg is a synonym)
                  [--oversub PCT] [--days N] [--seed N] [--participation F] [--csv]
                  [--fault-unresponsive F] [--fault-crash F]
                  [--fault-stale F] [--fault-byzantine F]   (MPR-INT fault injection)
                  [--net-drop F] [--net-duplicate F] [--net-delay TICKS]
                  [--net-partition F] [--net-deadline TICKS]
                  [--net-retries N]                         (MPR-INT lossy bid transport)
                  [--sensor-noise F] [--sensor-dropout F]
                  [--sensor-stale POLLS]                    (telemetry fault injection)
                  [--checkpoint-every SLOTS --checkpoint-path FILE]
                  [--resume-from FILE]                      (crash-safe checkpointing)
                  [--wal FILE] [--wal-fsync always|every=<n>|never]
                                                            (write-ahead market ledger)
                  [--topology FILE --federated]             (hierarchical power-tree markets;
                                                             FILE is a JSON topology spec)
                  [--tree-fault-ups F] [--tree-fault-ats F]
                  [--tree-fault-pdu F] [--tree-fault-derate F]
                  [--tree-fault-seed N] [--tree-fault-repair-secs S]
                                                            (infrastructure fault injection
                                                             over the federated power tree)
    mpr market    [--jobs N] [--target-watts W]
                  [--mechanism mpr-stat|mpr-int|opt|eql|vcg|chain]
                  [--interactive]                  (synonym for --mechanism mpr-int)
    mpr chaos     [--runs N] [--seed N] [--days N]
                  [--artifact-dir DIR] [--no-shrink]
                  [--disable-emergency]        (seeded-violation self-test)
                  [--wal-fsync-never]          (seeded durability-bug self-test)
                  [--tree-fault-ups]           (seeded grid-fencing-bug self-test)
                  [--csv | --json]
    mpr chaos     --replay FILE               (re-run a repro artifact)
    mpr ledger    dump FILE [--json]          (decode a WAL written by --wal)
    mpr ledger    verify FILE [--json]        (framing check; nonzero exit if corrupt)
    mpr ledger    truncate FILE --at SEQ      (drop records from SEQ on, atomically)
    mpr lint      [--json | --sarif] [--no-cache] [--root DIR]
                  (static analysis: L1 unit-hygiene … L8 parallel-determinism;
                   warm runs reuse target/mpr-lint.cache)
    mpr prototype [--without-mpr]
    mpr swf       [--trace NAME] [--days N] [--seed N]   (SWF text on stdout)
    mpr calibrate                                        (CSV samples on stdin)
    mpr traces
    mpr apps
    mpr help
";

/// Parses a full argument list (excluding the program name).
///
/// # Errors
///
/// Returns [`UsageError`] on unknown subcommands, unknown flags or
/// malformed values.
pub fn parse(args: &[String]) -> Result<Command, UsageError> {
    let Some((cmd, rest)) = args.split_first() else {
        return Ok(Command::Help);
    };
    match cmd.as_str() {
        "simulate" => parse_simulate(rest).map(|a| Command::Simulate(Box::new(a))),
        "market" => parse_market(rest).map(Command::Market),
        "swf" => parse_swf_args(rest).map(Command::Swf),
        "calibrate" => expect_no_args(rest, Command::Calibrate),
        "chaos" => parse_chaos(rest).map(Command::Chaos),
        "ledger" => parse_ledger(rest).map(Command::Ledger),
        "lint" => parse_lint(rest).map(Command::Lint),
        "traces" => expect_no_args(rest, Command::Traces),
        "apps" => expect_no_args(rest, Command::Apps),
        "prototype" => match rest {
            [] => Ok(Command::Prototype { with_mpr: true }),
            [flag] if flag == "--without-mpr" => Ok(Command::Prototype { with_mpr: false }),
            _ => Err(UsageError(format!("unexpected arguments: {rest:?}"))),
        },
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(UsageError(format!("unknown command `{other}`"))),
    }
}

fn parse_lint(rest: &[String]) -> Result<LintArgs, UsageError> {
    let mut out = LintArgs::default();
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--json" => out.json = true,
            "--sarif" => out.sarif = true,
            "--no-cache" => out.no_cache = true,
            "--root" => out.root = Some(take_value(flag, &mut it)?.to_owned()),
            other => return Err(UsageError(format!("unknown lint flag `{other}`"))),
        }
    }
    Ok(out)
}

fn expect_no_args(rest: &[String], ok: Command) -> Result<Command, UsageError> {
    if rest.is_empty() {
        Ok(ok)
    } else {
        Err(UsageError(format!("unexpected arguments: {rest:?}")))
    }
}

fn take_value<'a>(
    flag: &str,
    it: &mut std::slice::Iter<'a, String>,
) -> Result<&'a str, UsageError> {
    it.next()
        .map(String::as_str)
        .ok_or_else(|| UsageError(format!("{flag} needs a value")))
}

fn parse_num<T: std::str::FromStr>(flag: &str, v: &str) -> Result<T, UsageError> {
    v.parse()
        .map_err(|_| UsageError(format!("{flag}: `{v}` is not a valid number")))
}

fn parse_fraction(flag: &str, v: &str) -> Result<f64, UsageError> {
    let f: f64 = parse_num(flag, v)?;
    if (0.0..=1.0).contains(&f) {
        Ok(f)
    } else {
        Err(UsageError(format!("{flag}: `{v}` is not in 0..=1")))
    }
}

fn parse_algorithm(flag: &str, v: &str) -> Result<Algorithm, UsageError> {
    match v {
        "opt" => Ok(Algorithm::Opt),
        "eql" => Ok(Algorithm::Eql),
        "mpr-stat" => Ok(Algorithm::MprStat),
        "mpr-int" => Ok(Algorithm::MprInt),
        "vcg" => Ok(Algorithm::Vcg),
        other => Err(UsageError(format!(
            "{flag}: `{other}` is not one of opt|eql|mpr-stat|mpr-int|vcg"
        ))),
    }
}

fn parse_simulate(rest: &[String]) -> Result<SimulateArgs, UsageError> {
    let mut out = SimulateArgs {
        trace: "gaia".into(),
        algorithm: Algorithm::MprStat,
        oversub_pct: 15.0,
        days: 30.0,
        seed: 0x4d50_5221,
        participation: 1.0,
        fault_unresponsive: 0.0,
        fault_crash: 0.0,
        fault_stale: 0.0,
        fault_byzantine: 0.0,
        net_drop: 0.0,
        net_duplicate: 0.0,
        net_delay: 0,
        net_partition: 0.0,
        net_deadline: 0,
        net_retries: 0,
        sensor_noise: 0.0,
        sensor_dropout: 0.0,
        sensor_stale: 0,
        checkpoint_every: 0,
        checkpoint_path: None,
        resume_from: None,
        wal: None,
        wal_fsync: None,
        topology: None,
        federated: false,
        tree_fault_ups: 0.0,
        tree_fault_ats: 0.0,
        tree_fault_pdu: 0.0,
        tree_fault_derate: 0.0,
        tree_fault_seed: 0,
        tree_fault_repair_secs: 0.0,
        csv: false,
    };
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--trace" => {
                let v = take_value(flag, &mut it)?;
                spec_by_name(v)?; // validate early
                out.trace = v.to_owned();
            }
            "--alg" | "--mechanism" => {
                out.algorithm = parse_algorithm(flag, take_value(flag, &mut it)?)?;
            }
            "--oversub" => out.oversub_pct = parse_num(flag, take_value(flag, &mut it)?)?,
            "--days" => out.days = parse_num(flag, take_value(flag, &mut it)?)?,
            "--seed" => out.seed = parse_num(flag, take_value(flag, &mut it)?)?,
            "--participation" => {
                out.participation = parse_num(flag, take_value(flag, &mut it)?)?;
            }
            "--fault-unresponsive" => {
                out.fault_unresponsive = parse_fraction(flag, take_value(flag, &mut it)?)?;
            }
            "--fault-crash" => out.fault_crash = parse_fraction(flag, take_value(flag, &mut it)?)?,
            "--fault-stale" => out.fault_stale = parse_fraction(flag, take_value(flag, &mut it)?)?,
            "--fault-byzantine" => {
                out.fault_byzantine = parse_fraction(flag, take_value(flag, &mut it)?)?;
            }
            "--net-drop" => out.net_drop = parse_fraction(flag, take_value(flag, &mut it)?)?,
            "--net-duplicate" => {
                out.net_duplicate = parse_fraction(flag, take_value(flag, &mut it)?)?;
            }
            "--net-delay" => out.net_delay = parse_num(flag, take_value(flag, &mut it)?)?,
            "--net-partition" => {
                out.net_partition = parse_fraction(flag, take_value(flag, &mut it)?)?;
            }
            "--net-deadline" => out.net_deadline = parse_num(flag, take_value(flag, &mut it)?)?,
            "--net-retries" => out.net_retries = parse_num(flag, take_value(flag, &mut it)?)?,
            "--sensor-noise" => {
                out.sensor_noise = parse_fraction(flag, take_value(flag, &mut it)?)?;
            }
            "--sensor-dropout" => {
                out.sensor_dropout = parse_fraction(flag, take_value(flag, &mut it)?)?;
            }
            "--sensor-stale" => out.sensor_stale = parse_num(flag, take_value(flag, &mut it)?)?,
            "--checkpoint-every" => {
                out.checkpoint_every = parse_num(flag, take_value(flag, &mut it)?)?;
            }
            "--checkpoint-path" => {
                out.checkpoint_path = Some(take_value(flag, &mut it)?.to_owned());
            }
            "--resume-from" => out.resume_from = Some(take_value(flag, &mut it)?.to_owned()),
            "--topology" => out.topology = Some(take_value(flag, &mut it)?.to_owned()),
            "--federated" => out.federated = true,
            "--tree-fault-ups" => {
                out.tree_fault_ups = parse_fraction(flag, take_value(flag, &mut it)?)?;
            }
            "--tree-fault-ats" => {
                out.tree_fault_ats = parse_fraction(flag, take_value(flag, &mut it)?)?;
            }
            "--tree-fault-pdu" => {
                out.tree_fault_pdu = parse_fraction(flag, take_value(flag, &mut it)?)?;
            }
            "--tree-fault-derate" => {
                out.tree_fault_derate = parse_fraction(flag, take_value(flag, &mut it)?)?;
            }
            "--tree-fault-seed" => {
                out.tree_fault_seed = parse_num(flag, take_value(flag, &mut it)?)?;
            }
            "--tree-fault-repair-secs" => {
                out.tree_fault_repair_secs = parse_num(flag, take_value(flag, &mut it)?)?;
            }
            "--wal" => out.wal = Some(take_value(flag, &mut it)?.to_owned()),
            "--wal-fsync" => {
                let v = take_value(flag, &mut it)?;
                out.wal_fsync =
                    Some(FsyncPolicy::parse(v).map_err(|e| UsageError(format!("{flag}: {e}")))?);
            }
            "--csv" => out.csv = true,
            other => return Err(UsageError(format!("unknown flag `{other}`"))),
        }
    }
    if out.checkpoint_every > 0 && out.checkpoint_path.is_none() {
        return Err(UsageError(
            "--checkpoint-every needs --checkpoint-path FILE".into(),
        ));
    }
    if out.checkpoint_every == 0 && out.checkpoint_path.is_some() {
        return Err(UsageError(
            "--checkpoint-path needs --checkpoint-every SLOTS".into(),
        ));
    }
    if out.wal_fsync.is_some() && out.wal.is_none() {
        return Err(UsageError("--wal-fsync needs --wal FILE".into()));
    }
    if out.federated && out.topology.is_none() {
        return Err(UsageError("--federated needs --topology FILE".into()));
    }
    if out.topology.is_some() && !out.federated {
        return Err(UsageError("--topology needs --federated".into()));
    }
    let tree_faults = out.tree_fault_ups > 0.0
        || out.tree_fault_ats > 0.0
        || out.tree_fault_pdu > 0.0
        || out.tree_fault_derate > 0.0
        || out.tree_fault_seed != 0
        || out.tree_fault_repair_secs != 0.0;
    if tree_faults && out.topology.is_none() {
        return Err(UsageError(
            "--tree-fault-* needs --topology FILE --federated".into(),
        ));
    }
    if !out.tree_fault_repair_secs.is_finite() || out.tree_fault_repair_secs < 0.0 {
        return Err(UsageError(
            "--tree-fault-repair-secs must be finite and non-negative".into(),
        ));
    }
    if out.wal.is_some() && (out.checkpoint_path.is_some() || out.resume_from.is_some()) {
        return Err(UsageError(
            "--wal excludes --checkpoint-path/--resume-from \
             (the durable run checkpoints in memory)"
                .into(),
        ));
    }
    Ok(out)
}

fn parse_ledger(rest: &[String]) -> Result<LedgerArgs, UsageError> {
    let mut it = rest.iter();
    let action = match it.next().map(String::as_str) {
        Some("dump") => LedgerAction::Dump,
        Some("verify") => LedgerAction::Verify,
        Some("truncate") => LedgerAction::Truncate,
        Some(other) => {
            return Err(UsageError(format!(
                "unknown ledger action `{other}` (expected dump|verify|truncate)"
            )))
        }
        None => {
            return Err(UsageError(
                "ledger needs an action: dump|verify|truncate".into(),
            ))
        }
    };
    let mut path: Option<String> = None;
    let mut at: Option<u64> = None;
    let mut json = false;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--at" => at = Some(parse_num(arg, take_value(arg, &mut it)?)?),
            "--json" => json = true,
            flag if flag.starts_with("--") => {
                return Err(UsageError(format!("unknown flag `{flag}`")))
            }
            file => {
                if path.replace(file.to_owned()).is_some() {
                    return Err(UsageError("ledger takes exactly one WAL file".into()));
                }
            }
        }
    }
    let Some(path) = path else {
        return Err(UsageError("ledger needs a WAL file".into()));
    };
    match action {
        LedgerAction::Truncate => {
            if at.is_none() {
                return Err(UsageError("ledger truncate needs --at SEQ".into()));
            }
            if json {
                return Err(UsageError("ledger truncate takes no --json".into()));
            }
        }
        LedgerAction::Dump | LedgerAction::Verify => {
            if at.is_some() {
                return Err(UsageError("--at only applies to ledger truncate".into()));
            }
        }
    }
    Ok(LedgerArgs {
        action,
        path,
        at,
        json,
    })
}

fn parse_chaos(rest: &[String]) -> Result<ChaosArgs, UsageError> {
    let mut out = ChaosArgs {
        runs: 100,
        seed: 0x4d50_5221,
        days: 1.0,
        disable_emergency: false,
        wal_fsync_never: false,
        tree_fault_ups: false,
        no_shrink: false,
        artifact_dir: None,
        replay: None,
        csv: false,
        json: false,
    };
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--runs" => out.runs = parse_num(flag, take_value(flag, &mut it)?)?,
            "--seed" => out.seed = parse_num(flag, take_value(flag, &mut it)?)?,
            "--days" => out.days = parse_num(flag, take_value(flag, &mut it)?)?,
            "--disable-emergency" => out.disable_emergency = true,
            "--wal-fsync-never" => out.wal_fsync_never = true,
            "--tree-fault-ups" => out.tree_fault_ups = true,
            "--no-shrink" => out.no_shrink = true,
            "--artifact-dir" => out.artifact_dir = Some(take_value(flag, &mut it)?.to_owned()),
            "--replay" => out.replay = Some(take_value(flag, &mut it)?.to_owned()),
            "--csv" => out.csv = true,
            "--json" => out.json = true,
            other => return Err(UsageError(format!("unknown flag `{other}`"))),
        }
    }
    if out.csv && out.json {
        return Err(UsageError("--csv and --json are mutually exclusive".into()));
    }
    if out.replay.is_some()
        && (out.disable_emergency
            || out.wal_fsync_never
            || out.tree_fault_ups
            || out.csv
            || out.json)
    {
        return Err(UsageError(
            "--replay takes no campaign flags (only the artifact file)".into(),
        ));
    }
    if out.runs == 0 {
        return Err(UsageError("--runs must be at least 1".into()));
    }
    if !out.days.is_finite() || out.days <= 0.0 {
        return Err(UsageError("--days must be positive".into()));
    }
    Ok(out)
}

fn parse_swf_args(rest: &[String]) -> Result<SwfArgs, UsageError> {
    let mut out = SwfArgs {
        trace: "gaia".into(),
        days: 7.0,
        seed: 0x4d50_5221,
    };
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--trace" => {
                let v = take_value(flag, &mut it)?;
                spec_by_name(v)?;
                out.trace = v.to_owned();
            }
            "--days" => out.days = parse_num(flag, take_value(flag, &mut it)?)?,
            "--seed" => out.seed = parse_num(flag, take_value(flag, &mut it)?)?,
            other => return Err(UsageError(format!("unknown flag `{other}`"))),
        }
    }
    Ok(out)
}

fn parse_market(rest: &[String]) -> Result<MarketArgs, UsageError> {
    let mut out = MarketArgs {
        jobs: 100,
        target_watts: 10_000.0,
        mechanism: MarketMechanism::MprStat,
    };
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--jobs" => out.jobs = parse_num(flag, take_value(flag, &mut it)?)?,
            "--target-watts" => out.target_watts = parse_num(flag, take_value(flag, &mut it)?)?,
            "--mechanism" => {
                out.mechanism = match take_value(flag, &mut it)? {
                    "mpr-stat" => MarketMechanism::MprStat,
                    "mpr-int" => MarketMechanism::MprInt,
                    "opt" => MarketMechanism::Opt,
                    "eql" => MarketMechanism::Eql,
                    "vcg" => MarketMechanism::Vcg,
                    "chain" => MarketMechanism::Chain,
                    other => {
                        return Err(UsageError(format!(
                            "--mechanism: `{other}` is not one of \
                             mpr-stat|mpr-int|opt|eql|vcg|chain"
                        )))
                    }
                };
            }
            "--interactive" => out.mechanism = MarketMechanism::MprInt,
            other => return Err(UsageError(format!("unknown flag `{other}`"))),
        }
    }
    Ok(out)
}

/// Resolves a cluster preset by name.
///
/// # Errors
///
/// Returns [`UsageError`] for unknown names.
pub fn spec_by_name(name: &str) -> Result<ClusterSpec, UsageError> {
    match name {
        "gaia" => Ok(ClusterSpec::gaia()),
        "pik" => Ok(ClusterSpec::pik()),
        "ricc" => Ok(ClusterSpec::ricc()),
        "metacentrum" => Ok(ClusterSpec::metacentrum()),
        other => Err(UsageError(format!(
            "unknown trace `{other}` (expected gaia|pik|ricc|metacentrum)"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn empty_args_show_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&argv("help")).unwrap(), Command::Help);
        assert_eq!(parse(&argv("--help")).unwrap(), Command::Help);
    }

    #[test]
    fn simulate_defaults() {
        let Command::Simulate(a) = parse(&argv("simulate")).unwrap() else {
            panic!("expected simulate");
        };
        assert_eq!(a.trace, "gaia");
        assert_eq!(a.algorithm, Algorithm::MprStat);
        assert_eq!(a.oversub_pct, 15.0);
        assert_eq!(a.fault_unresponsive, 0.0);
        assert_eq!(a.fault_crash, 0.0);
        assert!(!a.csv);
    }

    #[test]
    fn simulate_full_flags() {
        let Command::Simulate(a) = parse(&argv(
            "simulate --trace ricc --alg mpr-int --oversub 20 --days 7 --seed 9 --participation 0.5 --csv",
        ))
        .unwrap() else {
            panic!("expected simulate");
        };
        assert_eq!(a.trace, "ricc");
        assert_eq!(a.algorithm, Algorithm::MprInt);
        assert_eq!(a.oversub_pct, 20.0);
        assert_eq!(a.days, 7.0);
        assert_eq!(a.seed, 9);
        assert_eq!(a.participation, 0.5);
        assert!(a.csv);
    }

    #[test]
    fn simulate_fault_flags() {
        let Command::Simulate(a) = parse(&argv(
            "simulate --alg mpr-int --fault-unresponsive 0.3 --fault-crash 0.1 \
             --fault-stale 0.05 --fault-byzantine 0.02",
        ))
        .unwrap() else {
            panic!("expected simulate");
        };
        assert_eq!(a.fault_unresponsive, 0.3);
        assert_eq!(a.fault_crash, 0.1);
        assert_eq!(a.fault_stale, 0.05);
        assert_eq!(a.fault_byzantine, 0.02);
    }

    #[test]
    fn simulate_net_flags() {
        let Command::Simulate(a) = parse(&argv(
            "simulate --alg mpr-int --net-drop 0.3 --net-duplicate 0.1 --net-delay 4 \
             --net-partition 0.05 --net-deadline 32 --net-retries 5",
        ))
        .unwrap() else {
            panic!("expected simulate");
        };
        assert_eq!(a.net_drop, 0.3);
        assert_eq!(a.net_duplicate, 0.1);
        assert_eq!(a.net_delay, 4);
        assert_eq!(a.net_partition, 0.05);
        assert_eq!(a.net_deadline, 32);
        assert_eq!(a.net_retries, 5);
        // Defaults leave the plan idle.
        let Command::Simulate(b) = parse(&argv("simulate")).unwrap() else {
            panic!("expected simulate");
        };
        assert_eq!(b.net_drop, 0.0);
        assert_eq!(b.net_delay, 0);
        // Probabilities are fractions; ticks are integers.
        assert!(parse(&argv("simulate --net-drop 1.5")).is_err());
        assert!(parse(&argv("simulate --net-partition -0.1")).is_err());
        assert!(parse(&argv("simulate --net-delay soon")).is_err());
    }

    #[test]
    fn simulate_telemetry_and_checkpoint_flags() {
        let Command::Simulate(a) = parse(&argv(
            "simulate --sensor-noise 0.02 --sensor-dropout 0.3 --sensor-stale 2 \
             --checkpoint-every 500 --checkpoint-path run.ckpt",
        ))
        .unwrap() else {
            panic!("expected simulate");
        };
        assert_eq!(a.sensor_noise, 0.02);
        assert_eq!(a.sensor_dropout, 0.3);
        assert_eq!(a.sensor_stale, 2);
        assert_eq!(a.checkpoint_every, 500);
        assert_eq!(a.checkpoint_path.as_deref(), Some("run.ckpt"));
        assert_eq!(a.resume_from, None);

        let Command::Simulate(b) = parse(&argv("simulate --resume-from run.ckpt")).unwrap() else {
            panic!("expected simulate");
        };
        assert_eq!(b.resume_from.as_deref(), Some("run.ckpt"));
    }

    #[test]
    fn simulate_rejects_inconsistent_checkpoint_flags() {
        assert!(parse(&argv("simulate --checkpoint-every 500")).is_err());
        assert!(parse(&argv("simulate --checkpoint-path run.ckpt")).is_err());
        assert!(parse(&argv("simulate --sensor-noise 1.5")).is_err());
        assert!(parse(&argv("simulate --sensor-dropout -0.1")).is_err());
        assert!(parse(&argv("simulate --sensor-stale often")).is_err());
        assert!(parse(&argv("simulate --resume-from")).is_err());
    }

    #[test]
    fn simulate_rejects_bad_values() {
        assert!(parse(&argv("simulate --alg magic")).is_err());
        assert!(parse(&argv("simulate --trace nowhere")).is_err());
        assert!(parse(&argv("simulate --days soon")).is_err());
        assert!(parse(&argv("simulate --oversub")).is_err());
        assert!(parse(&argv("simulate --frobnicate")).is_err());
        assert!(parse(&argv("simulate --fault-crash 1.5")).is_err());
        assert!(parse(&argv("simulate --fault-unresponsive -0.1")).is_err());
    }

    #[test]
    fn market_parsing() {
        let Command::Market(m) =
            parse(&argv("market --jobs 500 --target-watts 2500 --interactive")).unwrap()
        else {
            panic!("expected market");
        };
        assert_eq!(m.jobs, 500);
        assert_eq!(m.target_watts, 2500.0);
        assert_eq!(m.mechanism, MarketMechanism::MprInt);
    }

    #[test]
    fn market_mechanism_flag() {
        for (name, want) in [
            ("mpr-stat", MarketMechanism::MprStat),
            ("mpr-int", MarketMechanism::MprInt),
            ("opt", MarketMechanism::Opt),
            ("eql", MarketMechanism::Eql),
            ("vcg", MarketMechanism::Vcg),
            ("chain", MarketMechanism::Chain),
        ] {
            let Command::Market(m) = parse(&argv(&format!("market --mechanism {name}"))).unwrap()
            else {
                panic!("expected market");
            };
            assert_eq!(m.mechanism, want, "--mechanism {name}");
        }
        assert_eq!(
            parse(&argv("market")).map(|c| match c {
                Command::Market(m) => m.mechanism,
                _ => panic!("expected market"),
            }),
            Ok(MarketMechanism::MprStat),
            "default stays MPR-STAT"
        );
        assert!(parse(&argv("market --mechanism magic")).is_err());
    }

    #[test]
    fn simulate_mechanism_flag_is_an_alg_synonym() {
        for (name, want) in [
            ("opt", Algorithm::Opt),
            ("eql", Algorithm::Eql),
            ("mpr-stat", Algorithm::MprStat),
            ("mpr-int", Algorithm::MprInt),
            ("vcg", Algorithm::Vcg),
        ] {
            for flag in ["--alg", "--mechanism"] {
                let Command::Simulate(a) =
                    parse(&argv(&format!("simulate {flag} {name}"))).unwrap()
                else {
                    panic!("expected simulate");
                };
                assert_eq!(a.algorithm, want, "{flag} {name}");
            }
        }
        assert!(parse(&argv("simulate --mechanism chain")).is_err());
    }

    #[test]
    fn prototype_flag() {
        assert_eq!(
            parse(&argv("prototype")).unwrap(),
            Command::Prototype { with_mpr: true }
        );
        assert_eq!(
            parse(&argv("prototype --without-mpr")).unwrap(),
            Command::Prototype { with_mpr: false }
        );
        assert!(parse(&argv("prototype --bogus")).is_err());
    }

    #[test]
    fn swf_parsing() {
        let Command::Swf(a) = parse(&argv("swf --trace ricc --days 3 --seed 5")).unwrap() else {
            panic!("expected swf");
        };
        assert_eq!(a.trace, "ricc");
        assert_eq!(a.days, 3.0);
        assert_eq!(a.seed, 5);
        assert!(parse(&argv("swf --trace mars")).is_err());
    }

    #[test]
    fn bare_subcommands() {
        assert_eq!(parse(&argv("calibrate")).unwrap(), Command::Calibrate);
        assert_eq!(parse(&argv("traces")).unwrap(), Command::Traces);
        assert_eq!(parse(&argv("apps")).unwrap(), Command::Apps);
        assert!(parse(&argv("traces extra")).is_err());
        assert!(parse(&argv("frobnicate")).is_err());
    }

    #[test]
    fn chaos_parsing() {
        let Command::Chaos(a) = parse(&argv("chaos")).unwrap() else {
            panic!("expected chaos");
        };
        assert_eq!(a.runs, 100);
        assert_eq!(a.seed, 0x4d50_5221);
        assert_eq!(a.days, 1.0);
        assert!(!a.disable_emergency && !a.wal_fsync_never && !a.tree_fault_ups);
        assert!(!a.no_shrink && !a.csv && !a.json);
        assert_eq!(a.artifact_dir, None);
        assert_eq!(a.replay, None);

        let Command::Chaos(a) = parse(&argv("chaos --wal-fsync-never")).unwrap() else {
            panic!("expected chaos");
        };
        assert!(a.wal_fsync_never);

        let Command::Chaos(a) = parse(&argv("chaos --tree-fault-ups")).unwrap() else {
            panic!("expected chaos");
        };
        assert!(a.tree_fault_ups);
        assert!(parse(&argv("chaos --replay r.json --tree-fault-ups")).is_err());

        let Command::Chaos(a) = parse(&argv(
            "chaos --runs 1000 --seed 42 --days 0.5 --disable-emergency \
             --no-shrink --artifact-dir out --csv",
        ))
        .unwrap() else {
            panic!("expected chaos");
        };
        assert_eq!(a.runs, 1000);
        assert_eq!(a.seed, 42);
        assert_eq!(a.days, 0.5);
        assert!(a.disable_emergency && a.no_shrink && a.csv);
        assert_eq!(a.artifact_dir.as_deref(), Some("out"));

        let Command::Chaos(a) = parse(&argv("chaos --replay repro.json")).unwrap() else {
            panic!("expected chaos");
        };
        assert_eq!(a.replay.as_deref(), Some("repro.json"));
    }

    #[test]
    fn simulate_wal_flags() {
        let Command::Simulate(a) =
            parse(&argv("simulate --wal run.wal --wal-fsync every=8")).unwrap()
        else {
            panic!("expected simulate");
        };
        assert_eq!(a.wal.as_deref(), Some("run.wal"));
        assert_eq!(a.wal_fsync, Some(FsyncPolicy::EveryRecords(8)));
        for policy in [
            ("always", FsyncPolicy::Always),
            ("never", FsyncPolicy::Never),
        ] {
            let Command::Simulate(a) =
                parse(&argv(&format!("simulate --wal w --wal-fsync {}", policy.0))).unwrap()
            else {
                panic!("expected simulate");
            };
            assert_eq!(a.wal_fsync, Some(policy.1));
        }
        // The policy defaults (to always) only when --wal is present.
        let Command::Simulate(a) = parse(&argv("simulate --wal run.wal")).unwrap() else {
            panic!("expected simulate");
        };
        assert_eq!(a.wal_fsync, None);

        assert!(parse(&argv("simulate --wal-fsync always")).is_err());
        assert!(parse(&argv("simulate --wal w --wal-fsync sometimes")).is_err());
        assert!(parse(&argv("simulate --wal w --wal-fsync every=0")).is_err());
        assert!(parse(&argv("simulate --wal w --resume-from c.ckpt")).is_err());
        assert!(parse(&argv(
            "simulate --wal w --checkpoint-every 10 --checkpoint-path c.ckpt"
        ))
        .is_err());
    }

    #[test]
    fn simulate_federated_flags() {
        let Command::Simulate(a) =
            parse(&argv("simulate --topology tree.json --federated")).unwrap()
        else {
            panic!("expected simulate");
        };
        assert_eq!(a.topology.as_deref(), Some("tree.json"));
        assert!(a.federated);
        // Defaults leave federated clearing off.
        let Command::Simulate(b) = parse(&argv("simulate")).unwrap() else {
            panic!("expected simulate");
        };
        assert_eq!(b.topology, None);
        assert!(!b.federated);
        // The flags come as a pair.
        assert!(parse(&argv("simulate --federated")).is_err());
        assert!(parse(&argv("simulate --topology tree.json")).is_err());
        assert!(parse(&argv("simulate --topology")).is_err());
    }

    #[test]
    fn simulate_tree_fault_flags() {
        let Command::Simulate(a) = parse(&argv(
            "simulate --topology tree.json --federated --tree-fault-ups 0.4 \
             --tree-fault-ats 0.3 --tree-fault-pdu 0.2 --tree-fault-derate 0.1 \
             --tree-fault-seed 7 --tree-fault-repair-secs 900",
        ))
        .unwrap() else {
            panic!("expected simulate");
        };
        assert_eq!(a.tree_fault_ups, 0.4);
        assert_eq!(a.tree_fault_ats, 0.3);
        assert_eq!(a.tree_fault_pdu, 0.2);
        assert_eq!(a.tree_fault_derate, 0.1);
        assert_eq!(a.tree_fault_seed, 7);
        assert_eq!(a.tree_fault_repair_secs, 900.0);
        // Defaults leave the plan idle.
        let Command::Simulate(b) = parse(&argv("simulate")).unwrap() else {
            panic!("expected simulate");
        };
        assert_eq!(b.tree_fault_ups, 0.0);
        assert_eq!(b.tree_fault_seed, 0);
        // Fault probabilities are fractions.
        assert!(parse(&argv(
            "simulate --topology t.json --federated --tree-fault-ups 1.5"
        ))
        .is_err());
        // Every tree-fault flag needs the federated power tree.
        for flag in [
            "--tree-fault-ups 0.5",
            "--tree-fault-ats 0.5",
            "--tree-fault-pdu 0.5",
            "--tree-fault-derate 0.5",
            "--tree-fault-seed 9",
            "--tree-fault-repair-secs 60",
        ] {
            assert!(parse(&argv(&format!("simulate {flag}"))).is_err(), "{flag}");
        }
        // Repair times are finite and non-negative.
        assert!(parse(&argv(
            "simulate --topology t.json --federated --tree-fault-repair-secs -5"
        ))
        .is_err());
        assert!(parse(&argv(
            "simulate --topology t.json --federated --tree-fault-repair-secs inf"
        ))
        .is_err());
    }

    #[test]
    fn ledger_parsing() {
        let Command::Ledger(a) = parse(&argv("ledger dump run.wal")).unwrap() else {
            panic!("expected ledger");
        };
        assert_eq!(a.action, LedgerAction::Dump);
        assert_eq!(a.path, "run.wal");
        assert!(!a.json && a.at.is_none());

        let Command::Ledger(a) = parse(&argv("ledger verify run.wal --json")).unwrap() else {
            panic!("expected ledger");
        };
        assert_eq!(a.action, LedgerAction::Verify);
        assert!(a.json);

        let Command::Ledger(a) = parse(&argv("ledger truncate run.wal --at 42")).unwrap() else {
            panic!("expected ledger");
        };
        assert_eq!(a.action, LedgerAction::Truncate);
        assert_eq!(a.at, Some(42));
    }

    #[test]
    fn ledger_rejects_bad_combinations() {
        assert!(parse(&argv("ledger")).is_err());
        assert!(parse(&argv("ledger dump")).is_err());
        assert!(parse(&argv("ledger frobnicate run.wal")).is_err());
        assert!(parse(&argv("ledger dump a.wal b.wal")).is_err());
        assert!(parse(&argv("ledger dump run.wal --at 5")).is_err());
        assert!(parse(&argv("ledger truncate run.wal")).is_err());
        assert!(parse(&argv("ledger truncate run.wal --at 5 --json")).is_err());
        assert!(parse(&argv("ledger truncate run.wal --at soon")).is_err());
        assert!(parse(&argv("ledger dump run.wal --frobnicate")).is_err());
    }

    #[test]
    fn chaos_rejects_bad_combinations() {
        assert!(parse(&argv("chaos --csv --json")).is_err());
        assert!(parse(&argv("chaos --replay r.json --csv")).is_err());
        assert!(parse(&argv("chaos --replay r.json --disable-emergency")).is_err());
        assert!(parse(&argv("chaos --replay r.json --wal-fsync-never")).is_err());
        assert!(parse(&argv("chaos --runs 0")).is_err());
        assert!(parse(&argv("chaos --days 0")).is_err());
        assert!(parse(&argv("chaos --days -1")).is_err());
        assert!(parse(&argv("chaos --runs many")).is_err());
        assert!(parse(&argv("chaos --frobnicate")).is_err());
    }

    #[test]
    fn spec_lookup() {
        assert_eq!(spec_by_name("gaia").unwrap().name, "Gaia");
        assert_eq!(spec_by_name("pik").unwrap().name, "PIK");
        assert!(spec_by_name("x").is_err());
    }
}
